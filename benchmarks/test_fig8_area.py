"""Figure 8: synthesis results (LUT / register area) of BCJR, SOVA and Viterbi.

The paper synthesises its decoders for a Virtex-5 LX330T at 60 MHz with all
storage forced to registers and reports the area of each decoder and its
sub-blocks.  This repository has no synthesis tool; the calibrated
analytical area model (see ``repro.hwmodel.area``) regenerates the same
table and preserves the headline comparisons: BCJR is about twice the size
of SOVA, SOVA about twice the size of Viterbi, and the SoftPHY addition
costs roughly 10 % of a transceiver.
"""

from repro.analysis.reporting import Table, format_ratio
from repro.hwmodel.area import AreaModel, PAPER_FIGURE8
from repro.hwmodel.synthesis import synthesize

from _bench_utils import emit


def test_fig8_synthesis_table(benchmark):
    report = benchmark.pedantic(synthesize, rounds=1, iterations=1)

    comparison = Table(
        ["Module", "LUTs (model)", "LUTs (paper)", "Registers (model)", "Registers (paper)"],
        title="Figure 8: area model vs paper synthesis results",
    )
    model = AreaModel(report.model.params)
    for block, (paper_luts, paper_regs) in PAPER_FIGURE8.items():
        estimate = model.estimate(block)
        comparison.add_row(block, estimate.luts, paper_luts,
                           estimate.registers, paper_regs)

    summary = "\n".join([
        "BCJR / SOVA area ratio:    %s (paper: about 2x)"
        % format_ratio(report.bcjr_to_sova_ratio),
        "SOVA / Viterbi area ratio: %s (paper: about 2x)"
        % format_ratio(report.sova_to_viterbi_ratio),
        "SoftPHY cost over a transceiver (BCJR): %.1f%%"
        % (100 * model.transceiver_overhead("bcjr")),
        "SoftPHY cost over a transceiver (SOVA): %.1f%%"
        % (100 * model.transceiver_overhead("sova")),
    ])
    emit(
        "fig8_area",
        "Figure 8 reproduction",
        report.table().render() + "\n\n" + comparison.render() + "\n\n" + summary,
    )

    totals = report.totals()
    assert totals["bcjr"].luts == PAPER_FIGURE8["bcjr"][0]
    assert totals["sova"].registers == PAPER_FIGURE8["sova"][1]
    assert totals["viterbi"].luts == PAPER_FIGURE8["viterbi"][0]
    assert 1.8 < report.bcjr_to_sova_ratio < 2.6
    assert 1.7 < report.sova_to_viterbi_ratio < 2.3
