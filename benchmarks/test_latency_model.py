"""Section 4.3: decoder pipeline latency versus the 802.11 budget.

The paper derives SOVA latency ``l + k + 12`` cycles (140 at l = k = 64,
about 2.3 us at 60 MHz) and BCJR latency ``2n + 7`` (135 at n = 64, about
2.2 us), both far inside the roughly 25 us turnaround budget of 802.11a/g.
This benchmark sweeps the window/block lengths, regenerates those numbers
and checks the bound.
"""

from repro.analysis.reporting import Table
from repro.hwmodel.latency import (
    IEEE80211_LATENCY_BOUND_US,
    bcjr_latency_cycles,
    cycles_to_microseconds,
    meets_latency_bound,
    sova_latency_cycles,
    viterbi_latency_cycles,
)

from _bench_utils import emit

WINDOW_LENGTHS = (16, 32, 64, 128, 256)


def _sweep():
    rows = []
    for length in WINDOW_LENGTHS:
        sova = sova_latency_cycles(length, length)
        bcjr = bcjr_latency_cycles(length)
        viterbi = viterbi_latency_cycles(length)
        rows.append({
            "length": length,
            "sova_cycles": sova,
            "sova_us": cycles_to_microseconds(sova),
            "bcjr_cycles": bcjr,
            "bcjr_us": cycles_to_microseconds(bcjr),
            "viterbi_cycles": viterbi,
            "viterbi_us": cycles_to_microseconds(viterbi),
        })
    return rows


def test_latency_model_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    table = Table(
        ["Window/block", "SOVA cycles", "SOVA us", "BCJR cycles", "BCJR us",
         "Viterbi cycles", "Viterbi us"],
        title="Decoder latency at 60 MHz (802.11 budget: %.0f us)"
        % IEEE80211_LATENCY_BOUND_US,
    )
    for row in rows:
        table.add_row(row["length"], row["sova_cycles"], row["sova_us"],
                      row["bcjr_cycles"], row["bcjr_us"],
                      row["viterbi_cycles"], row["viterbi_us"])
    emit("latency_model", "Section 4.3 latency model", table.render())

    paper_row = next(row for row in rows if row["length"] == 64)
    assert paper_row["sova_cycles"] == 140
    assert paper_row["bcjr_cycles"] == 135
    assert paper_row["sova_us"] <= 2.35
    assert paper_row["bcjr_us"] <= 2.3
    # Every configuration evaluated in the paper meets the 802.11 bound.
    for row in rows:
        if row["length"] <= 128:
            assert meets_latency_bound(row["sova_us"])
            assert meets_latency_bound(row["bcjr_us"])
