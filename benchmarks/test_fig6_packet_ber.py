"""Figure 6: predicted versus actual per-packet BER.

The paper transmits 1704-bit QAM16 1/2 packets over AWGN at varying SNR,
predicts each packet's BER from the SoftPHY hints (constant-SNR lookup) and
plots the prediction against the ground truth.  The points cluster around
the ideal line with a slight underestimation at high BER (a consequence of
the constant-SNR simplification).

This benchmark reproduces the scatter through the declarative front door:
the link is a :class:`~repro.analysis.scenario.Scenario`, the SNR axis a
:class:`~repro.analysis.sweep.SweepSpec` grid, and an
:class:`~repro.analysis.scenario.Experiment` drives the adaptive scheduler
under a global packet budget.  Low-SNR points (whose BER settles within a
batch or two) stop early, and the scheduler reallocates their unspent
traffic to the clean high-SNR tail — so the scatter covers many more
low-PBER packets than the old fixed grid did for the same budget.  Set
``REPRO_SWEEP_WORKERS`` to spread each round's batches across processes;
rows are bit-for-bit identical either way.

Packets from every point are pooled, binned by their predicted PBER (decade
bins), and the mean and standard deviation of the actual PBER in each bin
are reported, together with the rank correlation between prediction and
truth.
"""

import numpy as np

from repro.analysis.adaptive import StopRule
from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps
from repro.softphy.ber_estimator import BerEstimator
from repro.softphy.packet_ber import ground_truth_packet_ber

from _bench_utils import emit_with_rows

#: SNR axis of the varying-SNR experiment, in dB.  Plain Python floats: the
#: seed derivation hashes the repr of axis values, and np.float64's repr
#: differs across numpy major versions.
SNRS_DB = tuple(float(snr) for snr in np.linspace(4.0, 9.0, 11))

#: Packets per adaptive batch (the chunk-invariance unit).
BATCH_PACKETS = 4

#: Global traffic budget in packets at scale 1 (multiplied by the
#: ``REPRO_BENCH_SCALE`` fixture below).
BUDGET_PACKETS = 64

#: Per-point stopping: a point is settled once its bit-level Wilson
#: interval is within ±15% relative and 100 errors were seen; the rest of
#: the budget flows to the points still loose (the high-SNR tail).
STOP = StopRule(rel_half_width=0.15, min_errors=100, ber_floor=1e-5)


def _run_batch(batch):
    """Picklable chunk-runner: one batch of packets at one SNR point."""
    rate = rate_by_mbps(batch["rate_mbps"])
    simulator = LinkSimulator(
        rate,
        snr_db=batch["snr_db"],
        decoder=batch["decoder"],
        packet_bits=batch["packet_bits"],
        seed=batch.seed,
    )
    result = simulator.run(batch.num_packets, batch_size=batch.num_packets)
    predicted = BerEstimator(batch["decoder"]).packet_ber(result.hints,
                                                          rate.modulation)
    actual = ground_truth_packet_ber(result.tx_bits, result.rx_bits)
    return {
        "errors": int(result.bit_errors.sum()),
        "trials": int(result.num_bits),
        "predicted": predicted,
        "actual": actual,
    }


def _simulate(budget_packets):
    experiment = Experiment(
        scenario=Scenario(decoder="bcjr", packet_bits=1704),
        sweep=SweepSpec({"rate_mbps": [24], "snr_db": list(SNRS_DB)}, seed=23),
        stop=STOP,
        runner=_run_batch,
        batch_packets=BATCH_PACKETS,
        budget=budget_packets,
    )
    rows = experiment.run(executor_from_env())
    predicted = np.concatenate([row["predicted"] for row in rows])
    actual = np.concatenate([row["actual"] for row in rows])
    return rows, predicted, actual


def test_fig6_predicted_vs_actual_pber(benchmark, scale):
    rows, predicted, actual = benchmark.pedantic(
        _simulate, args=(BUDGET_PACKETS * scale,), rounds=1, iterations=1
    )

    edges = 10.0 ** np.arange(-9, 1)
    table = Table(
        ["Predicted PBER bin", "packets", "mean actual PBER", "std actual PBER"],
        title="Figure 6: actual vs predicted per-packet BER (QAM16 1/2, AWGN)",
    )
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (predicted >= low) & (predicted < high)
        if not mask.any():
            continue
        table.add_row(
            "[%.0e, %.0e)" % (low, high),
            int(mask.sum()),
            float(actual[mask].mean()),
            float(actual[mask].std()),
        )

    order_pred = np.argsort(np.argsort(predicted))
    order_true = np.argsort(np.argsort(actual))
    correlation = float(np.corrcoef(order_pred, order_true)[0, 1])
    spend = ", ".join(
        "%.1f dB: %d pkts (%s)" % (row["snr_db"], row["packets"], row["stop_reason"])
        for row in rows
    )
    body = (
        table.render()
        + "\n\nSpearman rank correlation (predicted vs actual): %.3f" % correlation
        + "\nAdaptive spend per point: %s" % spend
    )
    json_rows = [
        {key: value for key, value in row.items()
         if key not in ("predicted", "actual")}
        for row in rows
    ]
    emit_with_rows("fig6_packet_ber", "Figure 6 reproduction", body, json_rows)

    # Every point received traffic, and the budget was respected.
    assert all(row["packets"] >= BATCH_PACKETS for row in rows)
    assert sum(row["packets"] for row in rows) <= BUDGET_PACKETS * scale

    # The predictions must track reality: strong rank correlation, and
    # packets predicted to be clean really are cleaner than packets
    # predicted to be bad.
    assert correlation > 0.5
    clean = predicted < 1e-4
    dirty = predicted > 1e-2
    if clean.any() and dirty.any():
        assert actual[clean].mean() < actual[dirty].mean()
