"""Ablation: constant-SNR lookup versus exact-SNR scaling in the BER estimator.

Section 4.2 argues that a per-modulation constant SNR is good enough for the
BER lookup tables because each modulation's useful SNR range is only a few
dB wide; the predictable cost is underestimation of the BER when the actual
SNR is below the chosen constant and overestimation when it is above.  This
ablation runs the same packets through (a) the constant-SNR estimator and
(b) an oracle estimator that scales each packet's hints by its true SNR, and
compares the per-packet predictions against ground truth.

The SNR axis is a :class:`~repro.analysis.sweep.SweepSpec` grid measured
adaptively through the :class:`~repro.analysis.scenario.Experiment` front
door: each point runs fixed-size batches until its bit-level Wilson
interval settles or the traffic cap hits, so the low-SNR points stop
early while the 8 dB point (whose errors are rare) runs several times
deeper than the old fixed depth for the same wall-clock ballpark.  Per-batch
per-packet prediction arrays are concatenated by the extras merger and
summarised per row afterwards, in the parent.  Set
``REPRO_SWEEP_WORKERS`` to shard each round's batches across processes.
"""

import numpy as np

from repro.analysis.adaptive import StopRule
from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps
from repro.softphy.ber_estimator import BerEstimator, llr_to_ber
from repro.softphy.packet_ber import ground_truth_packet_ber
from repro.softphy.scaling import ScalingFactors

from _bench_utils import emit_with_rows

SNRS_DB = (5.0, 6.0, 7.0, 8.0)

#: Packets per adaptive batch (the chunk-invariance unit).
BATCH_PACKETS = 5


def _prediction_error(predicted, actual):
    """Mean absolute error of log10 predictions on packets with errors."""
    mask = actual > 0
    if not mask.any():
        return float("nan")
    return float(
        np.mean(np.abs(np.log10(predicted[mask]) - np.log10(actual[mask])))
    )


def _run_batch(batch):
    """Picklable chunk-runner: one batch of packets at one SNR point."""
    rate = rate_by_mbps(batch["rate_mbps"])
    snr_db = batch["snr_db"]
    simulator = LinkSimulator(rate, snr_db=snr_db, decoder=batch["decoder"],
                              packet_bits=batch["packet_bits"],
                              seed=batch.seed)
    result = simulator.run(batch.num_packets, batch_size=batch.num_packets)
    exact_scaling = ScalingFactors(snr_db, rate.modulation, "bcjr")
    return {
        "errors": int(result.bit_errors.sum()),
        "trials": int(result.num_bits),
        "actual": ground_truth_packet_ber(result.tx_bits, result.rx_bits),
        "constant": BerEstimator("bcjr").packet_ber(result.hints, rate.modulation),
        "exact": llr_to_ber(exact_scaling.true_llr(result.hints)).mean(axis=1),
    }


def _summarise(row):
    """Post-process one Experiment row: per-point prediction quality."""
    actual, constant, exact = row["actual"], row["constant"], row["exact"]
    return {
        "snr_db": row["snr_db"],
        "packets": row["packets"],
        "stop_reason": row["stop_reason"],
        "actual_mean": float(actual.mean()),
        "constant_mean": float(constant.mean()),
        "exact_mean": float(exact.mean()),
        "constant_log_error": _prediction_error(constant, actual),
        "exact_log_error": _prediction_error(exact, actual),
    }


def _run(num_packets):
    experiment = Experiment(
        scenario=Scenario(rate_mbps=24, decoder="bcjr", packet_bits=1704),
        sweep=SweepSpec({"snr_db": list(SNRS_DB)}, seed=59),
        # num_packets is the old fixed depth; adaptively it becomes a
        # per-point cap of four times that, funded by the easy points
        # stopping after a batch or two.
        stop=StopRule(rel_half_width=0.2, min_errors=50,
                      max_packets=4 * num_packets),
        runner=_run_batch,
        batch_packets=BATCH_PACKETS,
    )
    return [_summarise(row) for row in experiment.run(executor_from_env())]


def test_ablation_constant_snr_lookup(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(10 * scale,), rounds=1, iterations=1)

    table = Table(
        ["SNR (dB)", "packets (stop)", "actual PBER", "constant-SNR prediction",
         "exact-SNR prediction", "|log10 err| constant", "|log10 err| exact"],
        title="Ablation: constant-SNR lookup vs exact-SNR scaling (QAM16 1/2)",
    )
    for row in rows:
        table.add_row(row["snr_db"], "%d (%s)" % (row["packets"], row["stop_reason"]),
                      row["actual_mean"], row["constant_mean"],
                      row["exact_mean"], row["constant_log_error"],
                      row["exact_log_error"])
    emit_with_rows("ablation_snr_constant", "Constant-SNR ablation",
                   table.render(), rows)

    # Both estimators track the actual PBER trend (lower SNR, higher PBER).
    actual_means = [row["actual_mean"] for row in rows]
    constant_means = [row["constant_mean"] for row in rows]
    assert actual_means[0] > actual_means[-1]
    assert constant_means[0] > constant_means[-1]
    # The constant-SNR simplification under-estimates the BER at the low end
    # of the range (actual SNR below the table's constant), as the paper
    # predicts.
    low_snr = rows[0]
    assert low_snr["constant_mean"] < low_snr["actual_mean"] * 2.0
    # Adaptivity: the noisy 5 dB point must not out-spend the clean 8 dB one.
    assert rows[0]["packets"] <= rows[-1]["packets"]
