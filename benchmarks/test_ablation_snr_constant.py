"""Ablation: constant-SNR lookup versus exact-SNR scaling in the BER estimator.

Section 4.2 argues that a per-modulation constant SNR is good enough for the
BER lookup tables because each modulation's useful SNR range is only a few
dB wide; the predictable cost is underestimation of the BER when the actual
SNR is below the chosen constant and overestimation when it is above.  This
ablation runs the same packets through (a) the constant-SNR estimator and
(b) an oracle estimator that scales each packet's hints by its true SNR, and
compares the per-packet predictions against ground truth.

The SNR axis is a :class:`~repro.analysis.sweep.SweepSpec` grid; set
``REPRO_SWEEP_WORKERS`` to shard the points across processes.
"""

import numpy as np

from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps
from repro.softphy.ber_estimator import BerEstimator, llr_to_ber
from repro.softphy.packet_ber import ground_truth_packet_ber
from repro.softphy.scaling import ScalingFactors

from _bench_utils import emit_with_rows

SNRS_DB = (5.0, 6.0, 7.0, 8.0)


def _prediction_error(predicted, actual):
    """Mean absolute error of log10 predictions on packets with errors."""
    mask = actual > 0
    if not mask.any():
        return float("nan")
    return float(
        np.mean(np.abs(np.log10(predicted[mask]) - np.log10(actual[mask])))
    )


def _run_point(point):
    """Picklable point-runner: one operating point of the SNR axis."""
    rate = rate_by_mbps(24)
    snr_db = point["snr_db"]
    simulator = LinkSimulator(rate, snr_db=snr_db, decoder="bcjr",
                              packet_bits=1704, seed=59)
    result = simulator.run(point["num_packets"], batch_size=8)
    actual = ground_truth_packet_ber(result.tx_bits, result.rx_bits)
    constant_prediction = BerEstimator("bcjr").packet_ber(
        result.hints, rate.modulation
    )
    exact_scaling = ScalingFactors(snr_db, rate.modulation, "bcjr")
    exact_prediction = llr_to_ber(exact_scaling.true_llr(result.hints)).mean(axis=1)
    return {
        "actual_mean": float(actual.mean()),
        "constant_mean": float(constant_prediction.mean()),
        "exact_mean": float(exact_prediction.mean()),
        "constant_log_error": _prediction_error(constant_prediction, actual),
        "exact_log_error": _prediction_error(exact_prediction, actual),
    }


def _run(num_packets):
    spec = SweepSpec({"snr_db": list(SNRS_DB)},
                     constants={"num_packets": num_packets}, seed=59)
    return executor_from_env().run(spec, _run_point)


def test_ablation_constant_snr_lookup(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(10 * scale,), rounds=1, iterations=1)

    table = Table(
        ["SNR (dB)", "actual PBER", "constant-SNR prediction", "exact-SNR prediction",
         "|log10 err| constant", "|log10 err| exact"],
        title="Ablation: constant-SNR lookup vs exact-SNR scaling (QAM16 1/2)",
    )
    for row in rows:
        table.add_row(row["snr_db"], row["actual_mean"], row["constant_mean"],
                      row["exact_mean"], row["constant_log_error"],
                      row["exact_log_error"])
    emit_with_rows("ablation_snr_constant", "Constant-SNR ablation",
                   table.render(), rows)

    # Both estimators track the actual PBER trend (lower SNR, higher PBER).
    actual_means = [row["actual_mean"] for row in rows]
    constant_means = [row["constant_mean"] for row in rows]
    assert actual_means[0] > actual_means[-1]
    assert constant_means[0] > constant_means[-1]
    # The constant-SNR simplification under-estimates the BER at the low end
    # of the range (actual SNR below the table's constant), as the paper
    # predicts.
    low_snr = rows[0]
    assert low_snr["constant_mean"] < low_snr["actual_mean"] * 2.0
