"""Ablation: decoupled latency-insensitive scheduling versus lock-step emulation.

Section 2 credits the decoupled, latency-insensitive execution (large
pipelined transfers, no per-cycle synchronisation) with roughly an order of
magnitude of throughput, and Section 5 argues that SCE-MI-style lock-step
emulation wastes the time a slow module spends processing because other
modules cannot use it.  This ablation runs the same pipeline under the
decoupled WiLIS scheduler and under the lock-step scheduler and compares
scheduler passes and wall-clock throughput.

The scheduler policy is a one-axis :class:`~repro.analysis.sweep.SweepSpec`
grid run through the :class:`~repro.analysis.scenario.Experiment` front
door, but the executor is pinned to the serial backend and the depth stays
*fixed* rather than adaptive: the wall-time comparison between the two
policies is the headline number, so the two points must execute identical
work without CPU contention (the same reason the throughput benchmarks in
``test_perf_link_throughput.py`` keep the fixed-depth ``stop=None`` path).
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment
from repro.analysis.sweep import SweepExecutor, SweepSpec
from repro.phy.params import rate_by_mbps
from repro.system.pipelines import build_cosimulation

from _bench_utils import emit_with_rows

SCHEDULERS = ("decoupled", "lockstep")


def _simulate_once(point):
    """One pass of ``point``'s scheduling policy over a fresh model."""
    rng = np.random.default_rng(5)
    payloads = [rng.integers(0, 2, point["packet_bits"], dtype=np.uint8)
                for _ in range(point["num_packets"])]
    model = build_cosimulation(rate_by_mbps(24),
                               packet_bits=point["packet_bits"],
                               decoder="viterbi", snr_db=18.0, seed=13,
                               lockstep=point["scheduler"] == "lockstep")
    outputs, report = model.run_packets(payloads)
    assert len(outputs) == point["num_packets"]
    return report


def _run_point(point):
    """Picklable point-runner: one scheduling policy over the same packets."""
    report = _simulate_once(point)
    return {
        "steps": report.scheduler_stats.steps,
        "total_firings": report.scheduler_stats.total_firings,
        "wall_seconds": report.wall_seconds,
        "speed_bps": report.simulation_speed_bps,
    }


def _run(num_packets, packet_bits, repeats=5):
    """Best-of-``repeats`` rows with the two policies *interleaved*.

    The scheduler-pass counts are deterministic and carry the robust
    quantitative claim (the decoupled scheduler needs strictly fewer
    passes for the same firings); the wall-clock comparison is
    indicative only at this sub-second scale.  Repeating the whole
    two-point sweep and keeping each policy's fastest pass — rather
    than repeating each policy back to back — means a slow host window
    hits adjacent passes of *both* policies, so it cancels out of the
    reported ratio instead of landing on whichever policy ran during
    it.
    """
    experiment = Experiment(
        sweep=SweepSpec(
            {"scheduler": list(SCHEDULERS)},
            constants={"num_packets": num_packets, "packet_bits": packet_bits},
            seed=13,
        ),
        runner=_run_point,
    )
    # Always serial: each point times itself, so points must not contend.
    best = None
    for _ in range(max(1, repeats)):
        rows = experiment.run(SweepExecutor("serial"))
        if best is None:
            best = rows
        else:
            best = [b if b["wall_seconds"] <= r["wall_seconds"] else r
                    for b, r in zip(best, rows)]
    return best


def test_ablation_scheduling_policy(benchmark, scale):
    rows = benchmark.pedantic(_run, args=(6 * scale, 600), rounds=1, iterations=1)

    table = Table(
        ["Scheduler", "Scheduler passes", "Total firings", "Wall time (s)",
         "Simulation speed (kb/s)"],
        title="Ablation: decoupled (WiLIS) vs lock-step (SCE-MI style) scheduling",
    )
    for row in rows:
        table.add_row(
            row["scheduler"],
            row["steps"],
            row["total_firings"],
            row["wall_seconds"],
            row["speed_bps"] / 1e3,
        )
    emit_with_rows("ablation_scheduling", "Scheduling ablation",
                   table.render(), rows)

    by_scheduler = {row["scheduler"]: row for row in rows}
    decoupled = by_scheduler["decoupled"]
    lockstep = by_scheduler["lockstep"]
    # Both execute the same work (same firings), but the decoupled scheduler
    # needs far fewer passes over the module graph -- the scheduling overhead
    # the paper's latency-insensitive design avoids.
    assert decoupled["total_firings"] == lockstep["total_firings"]
    assert decoupled["steps"] < lockstep["steps"]
