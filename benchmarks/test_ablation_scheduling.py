"""Ablation: decoupled latency-insensitive scheduling versus lock-step emulation.

Section 2 credits the decoupled, latency-insensitive execution (large
pipelined transfers, no per-cycle synchronisation) with roughly an order of
magnitude of throughput, and Section 5 argues that SCE-MI-style lock-step
emulation wastes the time a slow module spends processing because other
modules cannot use it.  This ablation runs the same pipeline under the
decoupled WiLIS scheduler and under the lock-step scheduler and compares
scheduler passes and wall-clock throughput.
"""

import numpy as np

from repro.analysis.reporting import Table
from repro.phy.params import rate_by_mbps
from repro.system.pipelines import build_cosimulation

from _bench_utils import emit


def _run(num_packets, packet_bits):
    results = {}
    rng = np.random.default_rng(5)
    payloads = [rng.integers(0, 2, packet_bits, dtype=np.uint8)
                for _ in range(num_packets)]
    for label, lockstep in (("decoupled", False), ("lockstep", True)):
        model = build_cosimulation(rate_by_mbps(24), packet_bits=packet_bits,
                                   decoder="viterbi", snr_db=18.0, seed=13,
                                   lockstep=lockstep)
        outputs, report = model.run_packets(list(payloads))
        assert len(outputs) == num_packets
        results[label] = report
    return results


def test_ablation_scheduling_policy(benchmark, scale):
    results = benchmark.pedantic(_run, args=(6 * scale, 600), rounds=1, iterations=1)

    table = Table(
        ["Scheduler", "Scheduler passes", "Total firings", "Wall time (s)",
         "Simulation speed (kb/s)"],
        title="Ablation: decoupled (WiLIS) vs lock-step (SCE-MI style) scheduling",
    )
    for label, report in results.items():
        table.add_row(
            label,
            report.scheduler_stats.steps,
            report.scheduler_stats.total_firings,
            report.wall_seconds,
            report.simulation_speed_bps / 1e3,
        )
    emit("ablation_scheduling", "Scheduling ablation", table.render())

    decoupled = results["decoupled"]
    lockstep = results["lockstep"]
    # Both execute the same work (same firings), but the decoupled scheduler
    # needs far fewer passes over the module graph -- the scheduling overhead
    # the paper's latency-insensitive design avoids.
    assert decoupled.scheduler_stats.total_firings == lockstep.scheduler_stats.total_firings
    assert decoupled.scheduler_stats.steps < lockstep.scheduler_stats.steps
