"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure from the paper, prints the
corresponding rows and also writes them to ``benchmarks/results/<name>.txt``
so the output survives pytest's capture.  Set ``REPRO_BENCH_SCALE`` to an
integer larger than 1 to multiply the simulated traffic (lower BER floors,
proportionally longer runs).
"""

import json
import os
import time

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINES_PATH = os.path.join(os.path.dirname(__file__), "baselines.json")


def best_of(fn, repeats=3):
    """Best-of-``repeats`` ``(elapsed_seconds, first_result)`` for ``fn``.

    The best-of estimator is the standard defence against host scheduling
    noise (CPU steal on shared VMs, the first timed pass in a process
    running tens of percent slower than steady state): the minimum over a
    few repeats converges on the code's actual cost, where a single
    sample records whatever the host happened to be doing.  The returned
    result is always the *first* run's, so any simulation output embedded
    in it (BERs, row contents) is independent of ``repeats``.

    Use this when ``fn``'s result is deterministic and only the wall
    clock varies; use :func:`fastest_result` when the runner times itself
    and its reported numbers must come from one coherent run.
    """
    best, result = None, None
    for index in range(max(1, repeats)):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        if index == 0:
            result = out
    return best, result


def fastest_result(fn, repeats=3, *, elapsed):
    """The result of the fastest of ``repeats`` runs of ``fn``.

    For runners that time themselves: ``elapsed`` extracts each run's
    wall-clock seconds from its result, and the whole result of the
    fastest run is kept, so every timing-derived number in it (speeds,
    projections, utilisations) describes one coherent execution instead
    of a min/first mixture.
    """
    best = None
    for _ in range(max(1, repeats)):
        out = fn()
        if best is None or elapsed(out) < elapsed(best):
            best = out
    return best


def host_metadata():
    """Host facts stamped into every perf JSON row.

    Absolute throughput numbers are only comparable on the same machine;
    carrying the host alongside each row lets the trajectory tooling
    partition rows by host instead of comparing apples to oranges.
    """
    import platform

    import numpy

    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
    }


def reference_baseline(name):
    """The recorded reference row for benchmark ``name``, or ``None``.

    Baselines live in ``benchmarks/baselines.json`` as data — one
    measured row per benchmark, each carrying the host it was measured
    on — rather than as constants hardcoded into benchmark code, so a
    baseline can be re-recorded (or a per-host one added) without
    touching the benchmarks.
    """
    try:
        with open(BASELINES_PATH, "r", encoding="utf-8") as handle:
            baselines = json.load(handle)
    except (OSError, ValueError):
        return None
    row = baselines.get(name)
    return row if isinstance(row, dict) else None


def bench_scale():
    """Workload multiplier taken from ``REPRO_BENCH_SCALE`` (default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


def emit(name, title, body):
    """Print a benchmark's output and persist it under ``benchmarks/results``."""
    text = "\n".join(["=" * 72, title, "=" * 72, str(body), ""])
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def emit_with_rows(name, title, body, rows):
    """Like :func:`emit`, with machine-readable JSON sweep rows appended.

    The rows come out of the sweep subsystem (`repro.analysis.sweep`), one
    JSON object per line, so the trajectory tooling can parse a benchmark's
    numbers without scraping its table.
    """
    from repro.analysis.sweep import rows_to_json

    return emit(name, title, str(body) + "\n\nJSON rows:\n" + rows_to_json(rows))
