"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure from the paper, prints the
corresponding rows and also writes them to ``benchmarks/results/<name>.txt``
so the output survives pytest's capture.  Set ``REPRO_BENCH_SCALE`` to an
integer larger than 1 to multiply the simulated traffic (lower BER floors,
proportionally longer runs).
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BASELINES_PATH = os.path.join(os.path.dirname(__file__), "baselines.json")


def host_metadata():
    """Host facts stamped into every perf JSON row.

    Absolute throughput numbers are only comparable on the same machine;
    carrying the host alongside each row lets the trajectory tooling
    partition rows by host instead of comparing apples to oranges.
    """
    import platform

    import numpy

    return {
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
    }


def reference_baseline(name):
    """The recorded reference row for benchmark ``name``, or ``None``.

    Baselines live in ``benchmarks/baselines.json`` as data — one
    measured row per benchmark, each carrying the host it was measured
    on — rather than as constants hardcoded into benchmark code, so a
    baseline can be re-recorded (or a per-host one added) without
    touching the benchmarks.
    """
    try:
        with open(BASELINES_PATH, "r", encoding="utf-8") as handle:
            baselines = json.load(handle)
    except (OSError, ValueError):
        return None
    row = baselines.get(name)
    return row if isinstance(row, dict) else None


def bench_scale():
    """Workload multiplier taken from ``REPRO_BENCH_SCALE`` (default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))
    except ValueError:
        return 1


def emit(name, title, body):
    """Print a benchmark's output and persist it under ``benchmarks/results``."""
    text = "\n".join(["=" * 72, title, "=" * 72, str(body), ""])
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


def emit_with_rows(name, title, body, rows):
    """Like :func:`emit`, with machine-readable JSON sweep rows appended.

    The rows come out of the sweep subsystem (`repro.analysis.sweep`), one
    JSON object per line, so the trajectory tooling can parse a benchmark's
    numbers without scraping its table.
    """
    from repro.analysis.sweep import rows_to_json

    return emit(name, title, str(body) + "\n\nJSON rows:\n" + rows_to_json(rows))
