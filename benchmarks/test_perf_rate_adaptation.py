"""Closed-loop rate adaptation: controllers vs the per-packet oracle.

The closed-loop subsystem's scoreboard is achieved airtime throughput —
payload bits delivered over 802.11a airtime consumed — measured for each
controller (SoftRate, SampleRate, Minstrel) against the oracle that knows
every packet's optimal rate in advance.  This benchmark runs the
comparison at two Doppler rates through the declarative
:class:`~repro.mac.rateadapt.RateAdaptExperiment` front door and records
one JSON row per (Doppler, controller), so controller quality and the
decode cost are both tracked across PRs:

1. Cold store-backed run (timed, best-of-three with a fresh store per
   trial): pays the full decode — every packet at every rate — and files
   the outcome matrices as content-addressed batches.
2. Warm re-run against the kept store (timed): every batch must be served
   from the store (``misses == 0``) and the rows must match bit for bit —
   controllers are replay-layer, so a warm rerun simulates zero packets.

Set ``REPRO_BENCH_SCALE`` to lengthen the trajectories; the rows remain
deterministic at any scale.  Run with ``-m "not slow"`` to skip during
quick test cycles.
"""

import itertools
import json
import time

import pytest

from repro.analysis.store import ResultStore
from repro.analysis.sweep import executor_from_env
from repro.mac.rateadapt import RateAdaptExperiment, RateAdaptScenario

from _bench_utils import best_of, emit_with_rows, host_metadata

#: Figure 7 operating point (10 dB AWGN, 1704-bit packets, BCJR) swept
#: over a slow and a fast fade.
WORKLOAD = {
    "snr_db": 10.0,
    "dopplers_hz": [10.0, 40.0],
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_packets": 16,
    "seed": 11,
}


def _experiment(num_packets, store):
    scenario = RateAdaptScenario(
        decoder=WORKLOAD["decoder"],
        packet_bits=WORKLOAD["packet_bits"],
        snr_db=WORKLOAD["snr_db"],
        doppler_hz=None,
    )
    return RateAdaptExperiment(
        scenario,
        axes={"doppler_hz": WORKLOAD["dopplers_hz"]},
        num_packets=num_packets,
        batch_packets=WORKLOAD["batch_packets"],
        seed=WORKLOAD["seed"],
        store=store,
    )


@pytest.mark.slow
def test_perf_rate_adaptation(scale, tmp_path):
    num_packets = 32 * scale
    store_ids = itertools.count()

    def _cold_trial():
        store = ResultStore(str(tmp_path / ("ratestore-%d" % next(store_ids))))
        experiment = _experiment(num_packets, store)
        start = time.perf_counter()
        rows = experiment.run(executor_from_env())
        return {"elapsed": time.perf_counter() - start, "rows": rows,
                "experiment": experiment, "store": store}

    trials = [_cold_trial() for _ in range(3)]
    for trial in trials[1:]:
        assert trial["rows"] == trials[0]["rows"]
    cold_trial = min(trials, key=lambda t: t["elapsed"])
    rows, cold_elapsed = cold_trial["rows"], cold_trial["elapsed"]
    cold_stats = cold_trial["experiment"].last_store_stats

    # Warm re-run: the decode is served from the store, the controllers
    # replay over it — zero packets simulated, rows identical bit for bit.
    warm_experiment = _experiment(num_packets, cold_trial["store"])
    warm_elapsed, warm_rows = best_of(
        lambda: warm_experiment.run(executor_from_env()))
    assert warm_rows == rows
    assert warm_experiment.last_store_stats["misses"] == 0
    assert warm_experiment.last_store_stats["hits"] == cold_stats["misses"]

    by_point = {}
    for row in rows:
        by_point.setdefault(row["doppler_hz"], {})[row["controller"]] = row
    for doppler, controllers in by_point.items():
        oracle = controllers["oracle"]
        assert oracle["accurate"] == 1.0
        assert oracle["achieved_mbps"] > 0.0
        for name, row in controllers.items():
            assert row["packets"] == num_packets
            assert 0.0 <= row["achieved_mbps"] <= 54.0

    summary = {
        "benchmark": "rate_adaptation",
        "workload": WORKLOAD,
        "num_packets": num_packets,
        "controllers": {
            "%g" % doppler: {
                name: {
                    "achieved_mbps": round(row["achieved_mbps"], 3),
                    "oracle_mbps": round(row["oracle_mbps"], 3),
                    "accurate": round(row["accurate"], 3),
                    "underselect": round(row["underselect"], 3),
                    "overselect": round(row["overselect"], 3),
                    "delivered_packets": row["delivered_packets"],
                }
                for name, row in sorted(controllers.items())
            }
            for doppler, controllers in sorted(by_point.items())
        },
        "outage_packets": {
            "%g" % doppler: controllers["oracle"]["outage_packets"]
            for doppler, controllers in sorted(by_point.items())
        },
        "store_cold_elapsed_sec": round(cold_elapsed, 4),
        "store_warm_elapsed_sec": round(warm_elapsed, 4),
        "store_warm_speedup": round(cold_elapsed / warm_elapsed, 2),
        "store_warm_batches_simulated":
            warm_experiment.last_store_stats["misses"],
        "store_warm_batches_served": warm_experiment.last_store_stats["hits"],
        "host": host_metadata(),
    }
    emit_with_rows(
        "perf_rate_adaptation",
        "Closed-loop rate adaptation: achieved vs oracle airtime throughput",
        json.dumps(summary),
        rows,
    )
