"""Section 3 / Figure 1: the modelled baseband sustains every 802.11g rate.

The paper clocks the bulk of its baseband at 35 MHz and the per-bit BER unit
at 60 MHz and states that this configuration keeps up with the fastest
802.11g rate (54 Mb/s).  This benchmark evaluates the pipeline throughput
model at those clocks for all eight rates, checks that every line rate is
sustained, and also exercises the latency-insensitive pipeline under the
multi-clock scheduler to confirm the clock-domain structure (baseband plus
the faster BER-unit domain, with automatic crossings).
"""

import numpy as np

from repro.analysis.reporting import Table, format_percentage
from repro.core.scheduler import MultiClockScheduler
from repro.hwmodel.throughput import meets_line_rate, sustainable_rate_mbps
from repro.phy.params import RATE_TABLE, rate_by_mbps
from repro.system.pipelines import build_cosimulation

from _bench_utils import emit


def _evaluate_model():
    rows = []
    for rate in RATE_TABLE:
        sustainable = sustainable_rate_mbps(rate)
        rows.append({
            "rate": rate,
            "sustainable_mbps": sustainable,
            "headroom": sustainable / rate.data_rate_mbps,
            "meets": meets_line_rate(rate),
        })
    return rows


def test_fig1_pipeline_throughput_model(benchmark):
    rows = benchmark.pedantic(_evaluate_model, rounds=1, iterations=1)

    table = Table(
        ["Rate", "Line rate (Mb/s)", "Modelled sustainable (Mb/s)", "Headroom"],
        title="Baseband throughput model at 35 MHz (BER unit at 60 MHz)",
    )
    for row in rows:
        table.add_row(
            row["rate"].name,
            row["rate"].data_rate_mbps,
            row["sustainable_mbps"],
            format_percentage(row["headroom"] - 1.0),
        )
    emit("fig1_pipeline_throughput", "Pipeline throughput model", table.render())

    assert all(row["meets"] for row in rows)


def test_fig1_clock_domain_structure(benchmark):
    def build_and_run():
        model = build_cosimulation(rate_by_mbps(24), packet_bits=240,
                                   decoder="bcjr", snr_db=18.0, seed=3)
        rng = np.random.default_rng(1)
        payloads = [rng.integers(0, 2, 240, dtype=np.uint8) for _ in range(2)]
        _, report = model.run_packets(
            payloads, scheduler=MultiClockScheduler(model.network)
        )
        return model, report

    model, report = benchmark.pedantic(build_and_run, rounds=1, iterations=1)
    # Network.clock_domains() returns a set; sort both mappings by domain
    # name so the emitted artifact is identical across runs and its diffs
    # only ever reflect real changes.
    domains = {d.name: d.frequency_mhz
               for d in sorted(model.network.clock_domains(),
                               key=lambda d: d.name)}
    crossings = len(model.network.clock_crossings())
    body = "\n".join([
        "Clock domains: %s" % domains,
        "Automatic clock-domain crossings inserted: %d" % crossings,
        "Simulated hardware time for 2 packets: %.1f us" % report.simulated_time_us,
        "Cycles per domain: %s"
        % dict(sorted(report.scheduler_stats.cycles_per_domain.items())),
    ])
    emit("fig1_clock_domains", "Multi-clock pipeline structure", body)

    assert domains == {"baseband": 35.0, "ber_unit": 60.0}
    assert crossings >= 1
    assert report.simulated_time_us > 0
