"""Scale-out benchmark for the cluster subsystem (ISSUE 8).

Two questions, one JSON row:

1. **Remote workers** (timed, fastest-of-N): the same cold workload runs
   through a one-worker service twice — alone, then with one
   :class:`~repro.service.worker.WorkerAgent` attached over the real
   HTTP boundary (capacity 1 vs 1+1).  Rows are asserted bit-for-bit
   against the serial ``Experiment.run`` on every trial: attaching a
   host may only move wall-clock, never bytes.  The row reports both
   elapsed times, the speedup, and how many items the remote actually
   executed.
2. **Cross-replica dedup** (deterministic, untimed): two lease-enabled
   services share one store and characterise overlapping windows
   concurrently.  The row reports total batches simulated across the
   pair against the two-independent-replicas cost — the lease saving —
   and asserts the dedup contract: the pair simulates exactly the
   one-service union, strictly fewer than two unshared runs.

Run with ``-m "not slow"`` to skip during quick test cycles.
"""

import json
import threading
import time

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service, serve
from repro.service.requests import CharacterisationRequest
from repro.service.worker import WorkerAgent

from _bench_utils import emit_with_rows, fastest_result, host_metadata

WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 600,
    "batch_packets": 8,
    "seed": 23,
}

REL_HALF_WIDTH = 0.3
MIN_ERRORS = 20

#: The remote-worker phase characterises one six-point window cold.
THROUGHPUT_SNRS = (4.0, 5.0, 6.0, 7.0, 8.0, 9.0)

#: The dedup phase overlaps two windows on one shared store.
WINDOW_A = (4.0, 5.5, 7.0, 8.5)
WINDOW_B = (5.5, 7.0, 8.5, 9.5)


def _request(snrs, scale):
    return CharacterisationRequest(
        scenario=Scenario(decoder=WORKLOAD["decoder"],
                          packet_bits=WORKLOAD["packet_bits"]),
        axes={"rate_mbps": [WORKLOAD["rate_mbps"]], "snr_db": list(snrs)},
        stop=StopRule(rel_half_width=REL_HALF_WIDTH, min_errors=MIN_ERRORS,
                      max_packets=32 * scale),
        constants={"batch_size": WORKLOAD["batch_packets"]},
        seed=WORKLOAD["seed"],
        batch_packets=WORKLOAD["batch_packets"],
    )


def _run_replica(store_root, request, serial, *, attach_agent):
    """One cold run through a one-worker service; its timing facts.

    With ``attach_agent`` a WorkerAgent joins over real HTTP before the
    request is submitted, so the fleet schedules across 1+1 workers.
    """
    agent = agent_thread = None
    with Service(ResultStore(store_root), workers=1, poll_s=0.02) as service:
        server = serve(service, port=0, heartbeat_s=5.0, worker_ping_s=0.2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            if attach_agent:
                agent = WorkerAgent("http://%s:%d" % (host, port),
                                    name="bench-agent", heartbeat_s=0.5)
                agent_thread = threading.Thread(
                    target=agent.run, kwargs={"retries": 3,
                                              "backoff_s": 0.1},
                    daemon=True)
                agent_thread.start()
                deadline = time.time() + 30.0
                while service.fleet.remote_handle("bench-agent") is None:
                    assert time.time() < deadline, "agent never attached"
                    time.sleep(0.02)
            start = time.perf_counter()
            rows = service.submit(request).result(timeout=600)
            elapsed = time.perf_counter() - start
            assert rows == serial  # scheduling may never change bytes
            return {
                "elapsed": elapsed,
                "batches": service.broker.total_simulated_batches,
                "remote_completed": service.fleet.remote_completed,
            }
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
    # Leaving the Service context stopped the fleet: the agent saw the
    # bye and exited; joining here keeps trials from leaking threads.


def _dedup_probe(tmp_path, scale):
    """Two lease-enabled replicas, one store, overlapping windows."""
    request_a, request_b = (_request(WINDOW_A, scale),
                            _request(WINDOW_B, scale))
    serial_a = request_a.experiment().run(SweepExecutor("serial"))
    serial_b = request_b.experiment().run(SweepExecutor("serial"))

    def alone(root, request):
        with Service(str(root), workers=2) as service:
            service.submit(request).result(timeout=600)
            return service.broker.total_simulated_batches

    alone_a = alone(tmp_path / "dedup-alone-a", request_a)
    alone_b = alone(tmp_path / "dedup-alone-b", request_b)
    with Service(str(tmp_path / "dedup-union"), workers=2) as reference:
        reference.submit(request_a).result(timeout=600)
        reference.submit(request_b).result(timeout=600)
        union = reference.broker.total_simulated_batches

    shared = str(tmp_path / "dedup-shared")
    with Service(shared, workers=2, lease_ttl_s=10.0,
                 replica_id="bench-r1", poll_s=0.02) as r1, \
            Service(shared, workers=2, lease_ttl_s=10.0,
                    replica_id="bench-r2", poll_s=0.02) as r2:
        r1.broker.lease_poll_s = r2.broker.lease_poll_s = 0.05
        ticket_a = r1.submit(request_a)
        ticket_b = r2.submit(request_b)
        assert ticket_a.result(timeout=600) == serial_a
        assert ticket_b.result(timeout=600) == serial_b
        simulated = (r1.broker.total_simulated_batches
                     + r2.broker.total_simulated_batches)
        waited = (r1.broker.lease_waited_batches
                  + r2.broker.lease_waited_batches)
    # The dedup contract: exactly the union, strictly under 2x serial.
    assert simulated == union
    assert simulated < alone_a + alone_b
    return {
        "replicas": 2,
        "batches_two_independent": alone_a + alone_b,
        "batches_union": union,
        "batches_simulated": simulated,
        "batches_saved": alone_a + alone_b - simulated,
        "lease_waited_batches": waited,
        "saving_ratio": round(1.0 - simulated / (alone_a + alone_b), 4),
    }, serial_a + serial_b


@pytest.mark.slow
def test_perf_cluster_throughput(scale, tmp_path):
    request = _request(THROUGHPUT_SNRS, scale)
    serial = request.experiment().run(SweepExecutor("serial"))

    trial_seq = iter(range(1000))

    def local_trial():
        return _run_replica(str(tmp_path / ("local-%d" % next(trial_seq))),
                            request, serial, attach_agent=False)

    def remote_trial():
        return _run_replica(str(tmp_path / ("remote-%d" % next(trial_seq))),
                            request, serial, attach_agent=True)

    local = fastest_result(local_trial, elapsed=lambda t: t["elapsed"])
    remote = fastest_result(remote_trial, elapsed=lambda t: t["elapsed"])
    assert remote["remote_completed"] > 0, remote

    dedup, dedup_rows = _dedup_probe(tmp_path, scale)

    summary = {
        "benchmark": "cluster_throughput",
        "workload": WORKLOAD,
        "rel_half_width": REL_HALF_WIDTH,
        "min_errors": MIN_ERRORS,
        "max_packets_per_point": 32 * scale,
        "points": len(THROUGHPUT_SNRS),
        "local_fleet": {
            "workers": 1,
            "elapsed_sec": round(local["elapsed"], 4),
            "batches_simulated": local["batches"],
            "batches_per_sec": round(local["batches"] / local["elapsed"], 3),
        },
        "remote_attached": {
            "workers": "1+1",
            "elapsed_sec": round(remote["elapsed"], 4),
            "batches_simulated": remote["batches"],
            "batches_per_sec": round(remote["batches"] / remote["elapsed"],
                                     3),
            "remote_completed": remote["remote_completed"],
        },
        "speedup": round(local["elapsed"] / remote["elapsed"], 3),
        "dedup": dedup,
        "host": host_metadata(),
    }
    emit_with_rows(
        "perf_cluster_throughput",
        "Cluster scale-out: remote workers and cross-replica dedup",
        json.dumps(summary),
        serial + dedup_rows,
    )

    # The committed artifact's invariants, independent of host speed.
    assert local["batches"] == remote["batches"] == \
        summary["remote_attached"]["batches_simulated"]
    assert dedup["batches_saved"] > 0, summary
    assert dedup["saving_ratio"] > 0.0, summary
