"""Pytest fixtures for the benchmark harness."""

import pytest

from _bench_utils import bench_scale


@pytest.fixture(scope="session")
def scale():
    """Workload multiplier (see ``REPRO_BENCH_SCALE``)."""
    return bench_scale()
