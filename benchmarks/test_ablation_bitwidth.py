"""Ablation: demapper soft-output bit-width.

Section 4.1 explains that dropping the SNR/modulation scaling lets the
hardware demapper emit 3-8 bit soft values instead of 23-28 bits, shrinking
the decoder.  The flip side (Section 4.2) is that the magnitude information
matters for BER estimation.  This ablation quantises the demapper output to
3-8 bits (and compares against the unquantised reference), measuring decode
BER, the quality of the hint/error separation and the modelled decoder area.
"""

import numpy as np

from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.fixedpoint.fixed import llr_quantizer
from repro.hwmodel.area import AreaModel, DecoderAreaParameters
from repro.phy.params import rate_by_mbps

from _bench_utils import emit

BIT_WIDTHS = (3, 4, 6, 8)


def _hint_separation(result):
    """Mean hint of correct bits divided by mean hint of erroneous bits."""
    errors = result.bit_errors
    if not errors.any() or errors.all():
        return float("nan")
    return float(result.hints[~errors].mean() / max(result.hints[errors].mean(), 1e-9))


def _sweep(num_packets):
    rate = rate_by_mbps(24)
    rows = []
    configurations = [("float", None)] + [
        ("%d-bit" % bits, llr_quantizer(bits, max_abs=8.0)) for bits in BIT_WIDTHS
    ]
    for label, fmt in configurations:
        simulator = LinkSimulator(rate, snr_db=6.0, decoder="bcjr",
                                  packet_bits=1704, seed=47, llr_format=fmt)
        result = simulator.run(num_packets, batch_size=8)
        soft_bits = fmt.total_bits if fmt is not None else 8
        area = AreaModel(
            DecoderAreaParameters(soft_input_bits=soft_bits)
        ).decoder_total("bcjr")
        rows.append({
            "label": label,
            "ber": result.bit_error_rate,
            "separation": _hint_separation(result),
            "luts": area.luts,
        })
    return rows


def test_ablation_demapper_bitwidth(benchmark, scale):
    rows = benchmark.pedantic(_sweep, args=(8 * scale,), rounds=1, iterations=1)

    table = Table(
        ["Demapper output", "BER @ 6 dB", "hint separation (correct/error)", "BCJR LUTs"],
        title="Ablation: demapper bit-width vs decode quality, hints and area",
    )
    for row in rows:
        table.add_row(row["label"], row["ber"], row["separation"], row["luts"])
    emit("ablation_bitwidth", "Demapper bit-width ablation", table.render())

    reference = next(row for row in rows if row["label"] == "float")
    eight_bit = next(row for row in rows if row["label"] == "8-bit")
    three_bit = next(row for row in rows if row["label"] == "3-bit")
    # 8-bit quantisation is essentially free for decoding (the paper's point
    # about hard decisions depending only on relative ordering).
    assert eight_bit["ber"] <= reference["ber"] * 2 + 1e-4
    # The hints still separate good bits from bad bits even at 3 bits, but
    # less sharply than with full precision.
    if not np.isnan(three_bit["separation"]) and not np.isnan(reference["separation"]):
        assert three_bit["separation"] > 1.0
    # Narrower datapaths shrink the modelled decoder.
    assert three_bit["luts"] < eight_bit["luts"]
