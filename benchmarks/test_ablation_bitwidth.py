"""Ablation: demapper soft-output bit-width.

Section 4.1 explains that dropping the SNR/modulation scaling lets the
hardware demapper emit 3-8 bit soft values instead of 23-28 bits, shrinking
the decoder.  The flip side (Section 4.2) is that the magnitude information
matters for BER estimation.  This ablation quantises the demapper output to
3-8 bits (and compares against the unquantised reference), measuring decode
BER, the quality of the hint/error separation and the modelled decoder area.

The bit-width axis is a :class:`~repro.analysis.sweep.SweepSpec` grid
(``soft_bits=0`` is the unquantised float reference); set
``REPRO_SWEEP_WORKERS`` to shard the points across processes.
"""

import numpy as np

from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.fixedpoint.fixed import llr_quantizer
from repro.hwmodel.area import AreaModel, DecoderAreaParameters
from repro.phy.params import rate_by_mbps

from _bench_utils import emit_with_rows

BIT_WIDTHS = (3, 4, 6, 8)


def _hint_separation(result):
    """Mean hint of correct bits divided by mean hint of erroneous bits."""
    errors = result.bit_errors
    if not errors.any() or errors.all():
        return float("nan")
    return float(result.hints[~errors].mean() / max(result.hints[errors].mean(), 1e-9))


def _run_point(point):
    """Picklable point-runner: one demapper bit-width configuration."""
    bits = point["soft_bits"]
    fmt = None if bits == 0 else llr_quantizer(bits, max_abs=8.0)
    simulator = LinkSimulator(rate_by_mbps(24), snr_db=6.0, decoder="bcjr",
                              packet_bits=1704, seed=47, llr_format=fmt)
    result = simulator.run(point["num_packets"], batch_size=8)
    soft_bits = fmt.total_bits if fmt is not None else 8
    area = AreaModel(
        DecoderAreaParameters(soft_input_bits=soft_bits)
    ).decoder_total("bcjr")
    return {
        "label": "float" if bits == 0 else "%d-bit" % bits,
        "ber": result.bit_error_rate,
        "separation": _hint_separation(result),
        "luts": area.luts,
    }


def _sweep(num_packets):
    spec = SweepSpec({"soft_bits": [0] + list(BIT_WIDTHS)},
                     constants={"num_packets": num_packets}, seed=47)
    return executor_from_env().run(spec, _run_point)


def test_ablation_demapper_bitwidth(benchmark, scale):
    rows = benchmark.pedantic(_sweep, args=(8 * scale,), rounds=1, iterations=1)

    table = Table(
        ["Demapper output", "BER @ 6 dB", "hint separation (correct/error)", "BCJR LUTs"],
        title="Ablation: demapper bit-width vs decode quality, hints and area",
    )
    for row in rows:
        table.add_row(row["label"], row["ber"], row["separation"], row["luts"])
    emit_with_rows("ablation_bitwidth", "Demapper bit-width ablation",
                   table.render(), rows)

    reference = next(row for row in rows if row["label"] == "float")
    eight_bit = next(row for row in rows if row["label"] == "8-bit")
    three_bit = next(row for row in rows if row["label"] == "3-bit")
    # 8-bit quantisation is essentially free for decoding (the paper's point
    # about hard decisions depending only on relative ordering).
    assert eight_bit["ber"] <= reference["ber"] * 2 + 1e-4
    # The hints still separate good bits from bad bits even at 3 bits, but
    # less sharply than with full precision.
    if not np.isnan(three_bit["separation"]) and not np.isnan(reference["separation"]):
        assert three_bit["separation"] > 1.0
    # Narrower datapaths shrink the modelled decoder.
    assert three_bit["luts"] < eight_bit["luts"]
