"""Ablation: demapper soft-output bit-width.

Section 4.1 explains that dropping the SNR/modulation scaling lets the
hardware demapper emit 3-8 bit soft values instead of 23-28 bits, shrinking
the decoder.  The flip side (Section 4.2) is that the magnitude information
matters for BER estimation.  This ablation quantises the demapper output to
3-8 bits (and compares against the unquantised reference), measuring decode
BER, the quality of the hint/error separation and the modelled decoder area.

The bit-width axis is a :class:`~repro.analysis.sweep.SweepSpec` grid
(``soft_bits=0`` is the unquantised float reference) measured adaptively
through the :class:`~repro.analysis.scenario.Experiment` front door: each
configuration runs fixed-size batches until its Wilson interval settles or
the traffic cap hits.  Hint-separation statistics accumulate as summed
scalars across batches (the extras merger's number-summing rule); the
separation ratio and the area model are evaluated per row afterwards,
since they depend only on pooled sums and the configuration.  Set
``REPRO_SWEEP_WORKERS`` to shard each round's batches across processes.
"""

import numpy as np

from repro.analysis.adaptive import StopRule
from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.fixedpoint.fixed import llr_quantizer
from repro.hwmodel.area import AreaModel, DecoderAreaParameters
from repro.phy.params import rate_by_mbps

from _bench_utils import emit_with_rows

BIT_WIDTHS = (3, 4, 6, 8)

#: Packets per adaptive batch (the chunk-invariance unit).
BATCH_PACKETS = 4


def _run_batch(batch):
    """Picklable chunk-runner: one batch at one demapper bit-width."""
    bits = batch["soft_bits"]
    fmt = None if bits == 0 else llr_quantizer(bits, max_abs=8.0)
    simulator = LinkSimulator(rate_by_mbps(batch["rate_mbps"]),
                              snr_db=batch["snr_db"],
                              decoder=batch["decoder"],
                              packet_bits=batch["packet_bits"],
                              seed=batch.seed, llr_format=fmt)
    result = simulator.run(batch.num_packets, batch_size=batch.num_packets)
    errors = result.bit_errors
    return {
        "errors": int(errors.sum()),
        "trials": int(result.num_bits),
        # Summed across batches by the extras merger; the benchmark forms
        # the correct/error mean-hint ratio from the pooled sums.
        "hint_sum_correct": float(result.hints[~errors].sum()),
        "hint_sum_error": float(result.hints[errors].sum()),
    }


def _summarise(row):
    """Post-process one Experiment row: separation from the pooled sums."""
    errors, trials = row["errors"], row["trials"]
    if errors in (0, trials):
        separation = float("nan")
    else:
        mean_correct = row["hint_sum_correct"] / (trials - errors)
        mean_error = row["hint_sum_error"] / errors
        separation = mean_correct / max(mean_error, 1e-9)
    return {
        "soft_bits": row["soft_bits"],
        "label": "float" if row["soft_bits"] == 0 else "%d-bit" % row["soft_bits"],
        "ber": row["ber"],
        "separation": separation,
        "packets": row["packets"],
        "stop_reason": row["stop_reason"],
    }


def _sweep(num_packets):
    experiment = Experiment(
        scenario=Scenario(rate_mbps=24, snr_db=6.0, decoder="bcjr",
                          packet_bits=1704),
        sweep=SweepSpec({"soft_bits": [0] + list(BIT_WIDTHS)}, seed=47),
        stop=StopRule(rel_half_width=0.15, min_errors=100,
                      max_packets=4 * num_packets),
        runner=_run_batch,
        batch_packets=BATCH_PACKETS,
    )
    rows = [_summarise(row) for row in experiment.run(executor_from_env())]
    for row in rows:
        soft_bits = 8 if row["soft_bits"] == 0 else llr_quantizer(
            row["soft_bits"], max_abs=8.0
        ).total_bits
        area = AreaModel(
            DecoderAreaParameters(soft_input_bits=soft_bits)
        ).decoder_total("bcjr")
        row["luts"] = area.luts
    return rows


def test_ablation_demapper_bitwidth(benchmark, scale):
    rows = benchmark.pedantic(_sweep, args=(8 * scale,), rounds=1, iterations=1)

    table = Table(
        ["Demapper output", "packets (stop)", "BER @ 6 dB",
         "hint separation (correct/error)", "BCJR LUTs"],
        title="Ablation: demapper bit-width vs decode quality, hints and area",
    )
    for row in rows:
        table.add_row(row["label"], "%d (%s)" % (row["packets"], row["stop_reason"]),
                      row["ber"], row["separation"], row["luts"])
    emit_with_rows("ablation_bitwidth", "Demapper bit-width ablation",
                   table.render(), rows)

    reference = next(row for row in rows if row["label"] == "float")
    eight_bit = next(row for row in rows if row["label"] == "8-bit")
    three_bit = next(row for row in rows if row["label"] == "3-bit")
    # 8-bit quantisation is essentially free for decoding (the paper's point
    # about hard decisions depending only on relative ordering).
    assert eight_bit["ber"] <= reference["ber"] * 2 + 1e-4
    # The hints still separate good bits from bad bits even at 3 bits, but
    # less sharply than with full precision.
    if not np.isnan(three_bit["separation"]) and not np.isnan(reference["separation"]):
        assert three_bit["separation"] > 1.0
    # Narrower datapaths shrink the modelled decoder.
    assert three_bit["luts"] < eight_bit["luts"]
