"""Traffic efficiency of the adaptive BER characterisation service.

The claim behind :mod:`repro.analysis.adaptive` is economic: to reach a
given worst-point confidence on a Figure-6-style BER curve, sequential
early stopping needs far fewer packets than a fixed-depth grid, because a
uniform grid must give *every* point the traffic its hungriest point needs.
This benchmark measures that saving and records it as a JSON row so the
ratio is tracked across PRs:

1. Run the Figure 6 SNR grid adaptively through the
   :class:`~repro.analysis.scenario.Experiment` front door (per-point
   Wilson stopping + zero-error floor + traffic cap), cold, into a fresh
   :class:`~repro.analysis.store.ResultStore` — then run it again *warm*,
   so the row also tracks the wall-clock saving of store-backed resume
   (the warm run must simulate zero batches).
2. Build the equivalent fixed-depth baseline: every point runs exactly as
   many packets as the adaptive run's hungriest point — the smallest
   uniform depth that guarantees the same worst-point tolerance.  The
   baseline reuses the same per-batch seed streams, so each point's
   adaptive measurement is a bit-for-bit *prefix* of its fixed one, making
   the interval comparison exact rather than statistical.
3. Assert the adaptive run spent at least 2x fewer packets at an
   equal-or-tighter worst-point Wilson looseness (half-width relative to
   ``max(ber, floor)``), and that the warm re-run served every batch from
   the store, bit for bit.

Set ``REPRO_SWEEP_WORKERS`` to shard each round's batches across worker
processes; the spend, stop reasons and the recorded ratio do not change.
Run with ``-m "not slow"`` to skip during quick test cycles.
"""

import itertools
import json
import time

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.ber_stats import BerMeasurement
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepSpec, executor_from_env

from _bench_utils import best_of, emit_with_rows

#: Figure 6 workload: QAM16 1/2 (24 Mb/s), 1704-bit packets, BCJR, the
#: 8-point SNR axis of the sweep acceptance test.
WORKLOAD = {
    "rate_mbps": 24,
    "snrs_db": [4.0, 4.75, 5.5, 6.25, 7.0, 7.75, 8.5, 9.0],
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_packets": 8,
    "seed": 23,
}

#: The characterisation ask: ±25% relative Wilson half-width (after at
#: least 30 errors), a 1e-4 BER resolution floor for the zero-error tail.
REL_HALF_WIDTH = 0.25
MIN_ERRORS = 30
BER_FLOOR = 1e-4


def _experiment(stop, store=None):
    return Experiment(
        scenario=Scenario(decoder=WORKLOAD["decoder"],
                          packet_bits=WORKLOAD["packet_bits"]),
        sweep=SweepSpec(
            {"rate_mbps": [WORKLOAD["rate_mbps"]],
             "snr_db": WORKLOAD["snrs_db"]},
            constants={"batch_size": WORKLOAD["batch_packets"]},
            seed=WORKLOAD["seed"],
        ),
        stop=stop,
        batch_packets=WORKLOAD["batch_packets"],
        store=store,
    )


def _run(stop, store=None):
    experiment = _experiment(stop, store)
    rows = experiment.run(executor_from_env())
    return rows, experiment


def _effective_looseness(row, rule):
    """A point's Wilson looseness under the characterisation ask.

    A zero-error point whose upper bound sits below the resolution floor
    has *proved* its BER is beyond what the ask can resolve; its width
    relative to the floor is meaningless, so such a point counts as exactly
    meeting the target (clamped, never credited as tighter).  Everything
    else is the plain relative half-width the stop rule ranks by.
    """
    measurement = BerMeasurement(row["errors"], row["trials"])
    looseness = rule.looseness(measurement)
    if measurement.errors == 0 and measurement.interval[1] <= rule.ber_floor:
        return min(looseness, rule.rel_half_width)
    return looseness


def _worst_looseness(rows, rule):
    return max(_effective_looseness(row, rule) for row in rows)


@pytest.mark.slow
def test_perf_adaptive_sweep_traffic_saving(scale, tmp_path):
    rule = StopRule(rel_half_width=REL_HALF_WIDTH, min_errors=MIN_ERRORS,
                    ber_floor=BER_FLOOR, max_packets=96 * scale)
    # Cold adaptive run, store-backed: pays full simulation and fills the
    # store on the way out.  Timed best-of-three, each trial into its own
    # fresh store —
    # a warmed store would simulate nothing — with the rows asserted
    # identical across trials.
    store_ids = itertools.count()

    def _cold_trial():
        trial_store = ResultStore(
            str(tmp_path / ("bercurves-%d" % next(store_ids))))
        start = time.perf_counter()
        rows, experiment = _run(rule, trial_store)
        return {"elapsed": time.perf_counter() - start, "rows": rows,
                "experiment": experiment, "store": trial_store}

    trials = [_cold_trial() for _ in range(3)]
    for trial in trials[1:]:
        assert trial["rows"] == trials[0]["rows"]
    cold_trial = min(trials, key=lambda t: t["elapsed"])
    adaptive_rows, cold = cold_trial["rows"], cold_trial["experiment"]
    cold_elapsed, store = cold_trial["elapsed"], cold_trial["store"]
    adaptive_total = sum(row["packets"] for row in adaptive_rows)

    # Warm re-run against the kept trial's store: every batch must come
    # from the store, bit for bit.  Also best-of-three; the first run's
    # result carries the asserted store statistics.
    warm_elapsed, (warm_rows, warm) = best_of(lambda: _run(rule, store))
    assert warm_rows == adaptive_rows  # packets and stop reasons included
    assert warm.last_store_stats["misses"] == 0
    assert warm.last_store_stats["hits"] == cold.last_store_stats["misses"]

    # The smallest uniform depth with the same worst-point guarantee: what
    # the hungriest adaptive point needed.  rel_half_width=None turns the
    # rule into "run exactly to the cap" — same batch streams, no stopping.
    fixed_depth = max(row["packets"] for row in adaptive_rows)
    fixed_rows, fixed = _run(StopRule(rel_half_width=None,
                                      max_packets=fixed_depth))
    fixed_total = sum(row["packets"] for row in fixed_rows)
    assert fixed_total == len(fixed.spec()) * fixed_depth

    adaptive_worst = _worst_looseness(adaptive_rows, rule)
    fixed_worst = _worst_looseness(fixed_rows, rule)

    summary = {
        "benchmark": "adaptive_sweep_traffic",
        "workload": WORKLOAD,
        "rel_half_width": REL_HALF_WIDTH,
        "min_errors": MIN_ERRORS,
        "ber_floor": BER_FLOOR,
        "max_packets_per_point": 96 * scale,
        "adaptive_total_packets": adaptive_total,
        "fixed_depth_packets_per_point": fixed_depth,
        "fixed_total_packets": fixed_total,
        "traffic_saving": round(fixed_total / adaptive_total, 3),
        "adaptive_worst_looseness": round(adaptive_worst, 4),
        "fixed_worst_looseness": round(fixed_worst, 4),
        "store_cold_elapsed_sec": round(cold_elapsed, 4),
        "store_warm_elapsed_sec": round(warm_elapsed, 4),
        "store_warm_speedup": round(cold_elapsed / warm_elapsed, 2),
        "store_warm_batches_simulated": warm.last_store_stats["misses"],
        "store_warm_batches_served": warm.last_store_stats["hits"],
        "stop_reasons": {
            "%.2f" % row["snr_db"]: "%d:%s" % (row["packets"], row["stop_reason"])
            for row in adaptive_rows
        },
    }
    emit_with_rows(
        "perf_adaptive_sweep",
        "Adaptive vs fixed-depth sweep traffic (Figure 6 grid)",
        json.dumps(summary),
        adaptive_rows,
    )

    # The headline acceptance: >=2x fewer packets at an equal-or-tighter
    # worst-point Wilson interval.  Both runs are deterministic and the
    # hungriest point's measurement is shared bit-for-bit (the adaptive
    # batches are a prefix of the fixed ones), so this is a stable property
    # of the workload, not a flaky threshold.
    assert fixed_total >= 2 * adaptive_total, summary
    assert adaptive_worst <= fixed_worst + 1e-12, summary
    # Adaptivity actually expressed itself: at least one point stopped on
    # statistics, not on a cap.
    assert any(row["stop_reason"] in ("converged", "ber_floor")
               for row in adaptive_rows)
