"""Throughput of the characterisation service under overlapping demand.

The service's economic claim (ISSUE 5): when N clients ask for
overlapping curves *concurrently*, the broker coalesces their miss-sets
at ``(point, batch)`` granularity, so the fleet simulates strictly fewer
batches than N serial ``Experiment.run``s — while every client still
receives bit-for-bit the rows its own serial run would have produced,
and the first rows stream back long before the last point settles.

This benchmark measures that on the Figure-6 workload with two
overlapping SNR windows (the acceptance shape):

1. Run each request serially through the batch ``Experiment`` front door
   (no store), recording wall-clock and total simulated batches — the
   price of the pre-service deployment.
2. Submit both requests concurrently to an in-process :class:`Service`
   over a fresh store and record total wall-clock, the fleet's simulated
   batch count and each request's time-to-first-streamed-row.

Both phases are timed best-of-three (fresh store and fleet per service
trial) so one descheduling spike on a shared host cannot masquerade as a
5x service regression in the committed artifact; the simulated-batch
ledger and the streamed rows are deterministic and asserted on every
trial.
3. Assert rows are bit-for-bit identical per request, that the service
   simulated strictly fewer batches than the serial pair, and emit the
   ``service_throughput`` JSON row tracking the dedup saving and
   latency-to-first-row across PRs.

The thread fleet is used so the measurement reflects scheduling, not
process start-up; the fleet's compute gate bounds executing runners to
the host's core count, so on a multi-core host two workers genuinely
overlap while a single-core host runs them back to back instead of
thrashing the GIL.  Run with ``-m "not slow"`` to skip during quick
test cycles.
"""

import itertools
import json
import time

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service
from repro.service.requests import CharacterisationRequest

from _bench_utils import best_of, emit_with_rows, fastest_result, host_metadata

#: Figure 6 workload: QAM16 1/2 (24 Mb/s), 1704-bit packets, BCJR; two
#: clients ask for overlapping SNR windows (4 shared operating points).
WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_packets": 8,
    "seed": 23,
    "snrs_a": [4.0, 4.75, 5.5, 6.25, 7.0, 7.75],
    "snrs_b": [5.5, 6.25, 7.0, 7.75, 8.5, 9.0],
}

REL_HALF_WIDTH = 0.25
MIN_ERRORS = 30
BER_FLOOR = 1e-4


def _request(snrs, scale):
    return CharacterisationRequest(
        scenario=Scenario(decoder=WORKLOAD["decoder"],
                          packet_bits=WORKLOAD["packet_bits"]),
        axes={"rate_mbps": [WORKLOAD["rate_mbps"]], "snr_db": list(snrs)},
        stop=StopRule(rel_half_width=REL_HALF_WIDTH, min_errors=MIN_ERRORS,
                      ber_floor=BER_FLOOR, max_packets=96 * scale),
        constants={"batch_size": WORKLOAD["batch_packets"]},
        seed=WORKLOAD["seed"],
        batch_packets=WORKLOAD["batch_packets"],
    )


@pytest.mark.slow
def test_perf_service_throughput(scale, tmp_path):
    request_a = _request(WORKLOAD["snrs_a"], scale)
    request_b = _request(WORKLOAD["snrs_b"], scale)

    # Serial baseline: the pre-service deployment answers each client
    # with its own Experiment run and simulates every batch twice where
    # the asks overlap.  Best-of-3 (see _bench_utils.best_of): the rows
    # are bit-for-bit identical across repeats, so only the wall clock
    # is minimised against host scheduling noise.
    serial_elapsed, (serial_a, serial_b) = best_of(
        lambda: (request_a.experiment().run(SweepExecutor("serial")),
                 request_b.experiment().run(SweepExecutor("serial"))))
    serial_batches = (sum(row["batches"] for row in serial_a)
                      + sum(row["batches"] for row in serial_b))

    # Concurrent service runs.  Each trial gets a fresh store (a warm
    # store would answer every batch from cache and time nothing) and a
    # fresh fleet; the fastest whole trial is kept so elapsed,
    # time-to-first-row and the batch ledger describe one coherent run.
    trial_ids = itertools.count()

    def _service_trial():
        store = ResultStore(str(tmp_path / ("store-%d" % next(trial_ids))))
        with Service(store, workers=2) as service:
            start = time.perf_counter()
            ticket_a = service.submit(request_a)
            ticket_b = service.submit(request_b)
            rows_a = ticket_a.result(timeout=600)
            rows_b = ticket_b.result(timeout=600)
            elapsed = time.perf_counter() - start
            trial = {
                "elapsed": elapsed,
                "batches": service.broker.total_simulated_batches,
                "progress": {"a": ticket_a.progress(),
                             "b": ticket_b.progress()},
            }
        # Bit-for-bit on every trial: the broker only changed where
        # batches came from.
        assert rows_a == serial_a
        assert rows_b == serial_b
        return trial

    trial = fastest_result(_service_trial, elapsed=lambda t: t["elapsed"])
    service_elapsed = trial["elapsed"]
    service_batches = trial["batches"]
    progress = trial["progress"]

    first_row_s = {name: snapshot["time_to_first_row_s"]
                   for name, snapshot in progress.items()}
    summary = {
        "benchmark": "service_throughput",
        "workload": WORKLOAD,
        "rel_half_width": REL_HALF_WIDTH,
        "min_errors": MIN_ERRORS,
        "ber_floor": BER_FLOOR,
        "max_packets_per_point": 96 * scale,
        "requests": 2,
        "shared_points": len(set(WORKLOAD["snrs_a"])
                             & set(WORKLOAD["snrs_b"])),
        "serial_elapsed_sec": round(serial_elapsed, 4),
        "serial_batches_simulated": serial_batches,
        "service_elapsed_sec": round(service_elapsed, 4),
        "service_batches_simulated": service_batches,
        "dedup_batch_saving": round(serial_batches / service_batches, 3),
        "service_speedup": round(serial_elapsed / service_elapsed, 2),
        "time_to_first_row_sec": {
            name: round(value, 4) for name, value in first_row_s.items()
        },
        "batch_sources": {
            name: {key: snapshot[key]
                   for key in ("batches_cached", "batches_simulated",
                               "batches_shared")}
            for name, snapshot in progress.items()
        },
        "host": host_metadata(),
    }
    emit_with_rows(
        "perf_service_throughput",
        "Characterisation service vs serial experiments (overlapping asks)",
        json.dumps(summary),
        serial_a + serial_b,  # == every trial's streamed rows, asserted above
    )

    # The headline acceptance: strictly fewer simulated batches than the
    # serial pair — every shared batch ran exactly once — with rows
    # bit-for-bit identical (asserted above).  Deterministic, not a
    # wall-clock threshold.
    assert service_batches < serial_batches, summary
    # Streaming actually streamed: the first row of each request landed
    # before its full result did.
    for name, snapshot in progress.items():
        assert first_row_s[name] is not None, summary
        assert first_row_s[name] <= snapshot["elapsed_s"], summary
