"""Overhead of end-to-end tracing on the characterisation service.

The observability layer's contract (ISSUE 10) is twofold: tracing must
be *read-only* — rows bit-for-bit identical traced vs untraced — and
*cheap*, because its span writes and kernel phase hooks sit directly on
the service's hot path (broker dispatch, fleet capture, the BCJR
forward/backward sweeps).  This benchmark measures both on the service
throughput workload (Figure 6 shape, one request):

1. Run the request through a fresh in-process :class:`Service` with the
   null tracer (the shipped default), best-of-three wall-clock.
2. Run the identical request with tracing into a scratch sink — the
   full pipeline: request root span, per-batch spans, fleet simulate
   spans, kernel phase sub-spans, store/deliver events.
3. Assert the rows are bit-for-bit identical, assert the traced run
   actually produced a reconstructable span tree, and emit the
   ``obs_overhead`` JSON row tracking the relative cost across PRs.

Each trial gets a fresh store (a warm store would answer from cache and
time nothing).  The thread fleet keeps the measurement about
instrumentation, not process start-up.  No wall-clock threshold is
asserted — overhead on a noisy shared host is reported, not gated; the
bit-for-bit assertion is the hard acceptance.
"""

import itertools
import json
import time

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.obs import trace as obs_trace
from repro.service.api import Service
from repro.service.requests import CharacterisationRequest

from _bench_utils import emit_with_rows, fastest_result, host_metadata

#: Figure 6 workload: QAM16 1/2 (24 Mb/s), 1704-bit packets, BCJR.
WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_packets": 8,
    "seed": 23,
    "snrs": [4.0, 4.75, 5.5, 6.25, 7.0, 7.75],
}

REL_HALF_WIDTH = 0.25
MIN_ERRORS = 30
BER_FLOOR = 1e-4


def _request(scale):
    return CharacterisationRequest(
        scenario=Scenario(decoder=WORKLOAD["decoder"],
                          packet_bits=WORKLOAD["packet_bits"]),
        axes={"rate_mbps": [WORKLOAD["rate_mbps"]],
              "snr_db": list(WORKLOAD["snrs"])},
        stop=StopRule(rel_half_width=REL_HALF_WIDTH, min_errors=MIN_ERRORS,
                      ber_floor=BER_FLOOR, max_packets=96 * scale),
        constants={"batch_size": WORKLOAD["batch_packets"]},
        seed=WORKLOAD["seed"],
        batch_packets=WORKLOAD["batch_packets"],
    )


@pytest.mark.slow
def test_perf_obs_overhead(scale, tmp_path):
    request = _request(scale)
    trial_ids = itertools.count()

    def _trial(trace_dir):
        store = ResultStore(str(tmp_path / ("store-%d" % next(trial_ids))))
        if trace_dir is not None:
            obs_trace.configure(trace_dir, proc="bench")
        try:
            with Service(store, workers=2) as service:
                start = time.perf_counter()
                rows = service.submit(request).result(timeout=600)
                elapsed = time.perf_counter() - start
        finally:
            if trace_dir is not None:
                obs_trace.disable()
        return {"elapsed": elapsed, "rows": rows}

    # Tracing off (the shipped default) first, then on; fastest-of-3
    # each so host scheduling noise cannot masquerade as span cost.
    off = fastest_result(lambda: _trial(None),
                         elapsed=lambda t: t["elapsed"])
    sink = str(tmp_path / "traces")
    on = fastest_result(lambda: _trial(sink),
                        elapsed=lambda t: t["elapsed"])

    # The hard acceptance: tracing never touches results.
    assert on["rows"] == off["rows"]

    # The traced run left a reconstructable tree behind: at least one
    # request root with batch and simulate spans under it.
    spans = obs_trace.load_spans(sink)
    built = obs_trace.build_traces(spans)
    names = {record["name"] for record in spans}
    assert {"request", "batch", "simulate"} <= names, sorted(names)
    assert any(any(root.name == "request" for root in roots)
               for roots, _ in built.values())

    overhead = (on["elapsed"] - off["elapsed"]) / off["elapsed"]
    summary = {
        "benchmark": "obs_overhead",
        "workload": WORKLOAD,
        "rel_half_width": REL_HALF_WIDTH,
        "min_errors": MIN_ERRORS,
        "ber_floor": BER_FLOOR,
        "max_packets_per_point": 96 * scale,
        "untraced_elapsed_sec": round(off["elapsed"], 4),
        "traced_elapsed_sec": round(on["elapsed"], 4),
        "overhead_frac": round(overhead, 4),
        "spans_written": len(spans),
        "rows_bit_for_bit": True,  # asserted above
        "host": host_metadata(),
    }
    emit_with_rows(
        "perf_obs_overhead",
        "Tracing overhead on the characterisation service (off vs on)",
        json.dumps(summary),
        off["rows"],  # == the traced run's rows, asserted above
    )
