"""Figure 2: co-simulation speed for the eight 802.11g rates.

The paper reports the simulation speed of its FPGA/software co-simulation as
32.8 to 41.3 percent of the corresponding line rates, with the software
channel (not the 700 MB/s host link) as the bottleneck.  This benchmark runs
the same pipeline structure in the pure-Python framework and reports, per
rate:

* the measured Python simulation speed (bits per wall-clock second),
* the speed projected onto the paper's platform (hardware-partition time
  from the 35 MHz pipeline model, software-partition and link time measured
  here) and its ratio to the line rate, and
* the host-link utilisation.

Absolute Python speeds are orders of magnitude below the FPGA's; the shape
to compare is that faster PHY rates simulate proportionally faster and that
the host link is far from saturated.

The rate axis is a :class:`~repro.analysis.sweep.SweepSpec` grid run
through the :class:`~repro.analysis.scenario.Experiment` front door, but
the executor is pinned to the serial backend: wall-clock speed is the
measured quantity here, and concurrently running points would contend for
CPU and corrupt every per-rate number.
"""

import numpy as np

from repro.analysis.reporting import Table, format_percentage
from repro.analysis.scenario import Experiment
from repro.analysis.sweep import SweepExecutor, SweepSpec
from repro.hwmodel.throughput import hardware_time_seconds
from repro.phy.params import RATE_TABLE, rate_by_mbps
from repro.phy.transmitter import FrameGeometry
from repro.system.pipelines import build_cosimulation

from _bench_utils import emit_with_rows, fastest_result

#: The paper's Figure 2 simulation speeds in Mb/s, for side-by-side output.
PAPER_SPEEDS_MBPS = {6: 2.033, 9: 2.953, 12: 4.040, 18: 6.036,
                     24: 8.483, 36: 12.725, 48: 15.960, 54: 22.244}


def _simulate_once(rate, packets, packet_bits):
    """One co-simulation pass over a fresh model; returns its report."""
    model = build_cosimulation(rate, packet_bits=packet_bits,
                               decoder="viterbi", snr_db=20.0, seed=0)
    rng = np.random.default_rng(0)
    payloads = [rng.integers(0, 2, packet_bits, dtype=np.uint8)
                for _ in range(packets)]
    outputs, report = model.run_packets(payloads)
    assert len(outputs) == packets
    return report


def _run_point(point):
    """Picklable point-runner: one 802.11g rate through the co-simulation.

    Each rate is simulated three times on a fresh model (identical seeds,
    so identical work) and the fastest pass is reported: every number
    below derives from this point's own wall clock, so a single
    descheduling spike would otherwise corrupt the per-rate speed.
    """
    rate = rate_by_mbps(point["rate_mbps"])
    packets = point["num_packets"]
    packet_bits = point["packet_bits"]
    report = fastest_result(
        lambda: _simulate_once(rate, packets, packet_bits),
        elapsed=lambda r: r.wall_seconds,
    )
    geometry = FrameGeometry(rate, packet_bits)
    hardware_seconds = hardware_time_seconds(rate, geometry.num_symbols * packets)
    projected = report.projected_speed_bps(hardware_seconds)
    return {
        "speed_bps": report.simulation_speed_bps,
        "projected_bps": projected,
        "projected_ratio": projected / (rate.data_rate_mbps * 1e6),
        "link_utilization": report.link_utilization,
        "bottleneck": report.bottleneck_partition,
    }


def _run_all_rates(packets, packet_bits):
    experiment = Experiment(
        sweep=SweepSpec(
            {"rate_mbps": [int(rate.data_rate_mbps) for rate in RATE_TABLE]},
            constants={"num_packets": packets, "packet_bits": packet_bits},
            seed=0,
        ),
        runner=_run_point,
    )
    # Always serial: each point times itself, so points must not contend.
    return experiment.run(SweepExecutor("serial"))


def test_fig2_simulation_speed(benchmark, scale):
    packets = 2 * scale
    rows = benchmark.pedantic(
        _run_all_rates, args=(packets, 1704), rounds=1, iterations=1
    )

    table = Table(
        ["Modulation", "Paper (Mb/s)", "Python sim (kb/s)", "Projected (Mb/s)",
         "Projected/line", "Link util", "Bottleneck"],
        title="Figure 2: simulation speeds per 802.11g rate",
    )
    for row in rows:
        rate = rate_by_mbps(row["rate_mbps"])
        table.add_row(
            "%s (%d Mbps)" % (rate.name, row["rate_mbps"]),
            PAPER_SPEEDS_MBPS[row["rate_mbps"]],
            row["speed_bps"] / 1e3,
            row["projected_bps"] / 1e6,
            format_percentage(row["projected_ratio"]),
            format_percentage(row["link_utilization"], digits=2),
            row["bottleneck"],
        )
    emit_with_rows("fig2_simulation_speed", "Figure 2 reproduction",
                   table.render(), rows)

    # Shape checks.  The Python decoder costs are per-bit, so the raw Python
    # simulation speed is roughly rate-independent (within a small factor);
    # the projected speeds are all a substantial fraction of the line rate;
    # and -- as in the paper -- the host link is nowhere near saturated.
    speeds = [row["speed_bps"] for row in rows]
    assert max(speeds) < 5 * min(speeds)
    assert all(row["projected_bps"] > 0 for row in rows)
    assert all(row["link_utilization"] < 0.5 for row in rows)
