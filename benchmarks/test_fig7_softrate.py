"""Figure 7: SoftRate rate selection under a 20 Hz fading channel at 10 dB.

The paper replays a packet stream over a 20 Hz Rayleigh fading channel with
10 dB AWGN, determines each packet's optimal rate (the highest rate that
would have delivered it without error, using the same pseudo-random noise at
every rate) and classifies SoftRate's choice as underselect / accurate /
overselect.  It reports both decoders accurate more than 80 % of the time,
SOVA underselecting about 4 % more often than BCJR, and both overselecting
about 2 % of the time.  Section 4.4.4 adds that this 85 % accuracy is higher
than the 75 % of the original trace-driven SoftRate study.

This reproduction runs the same experiment with this repository's estimator
calibration; see EXPERIMENTS.md for the deviation discussion (our
reproduction is more conservative: it almost never overselects but
underselects more often than the paper's implementation).
"""

from repro.analysis.reporting import Table, format_percentage
from repro.mac.evaluation import SoftRateEvaluation

from _bench_utils import emit

#: Figure 7 values (percent), read from the paper's bar chart / text.
PAPER_RESULTS = {
    "bcjr": {"underselect": 12.0, "accurate": 86.0, "overselect": 2.0},
    "sova": {"underselect": 16.0, "accurate": 82.0, "overselect": 2.0},
}


def _run(num_packets, packet_bits):
    evaluation = SoftRateEvaluation(
        snr_db=10.0,
        doppler_hz=20.0,
        num_packets=num_packets,
        packet_bits=packet_bits,
        seed=42,
    )
    results = {}
    for decoder in ("bcjr", "sova"):
        results[decoder] = evaluation.run(decoder, batch_size=16)
    return results


def test_fig7_softrate_accuracy(benchmark, scale):
    results = benchmark.pedantic(
        _run, args=(48 * scale, 600), rounds=1, iterations=1
    )

    table = Table(
        ["Decoder", "Underselect", "Accurate", "Overselect",
         "Paper under", "Paper accurate", "Paper over",
         "Achieved Mb/s", "Oracle Mb/s"],
        title="Figure 7: SoftRate selection accuracy (20 Hz fading, 10 dB AWGN)",
    )
    for decoder, result in results.items():
        fractions = result.outcome.as_dict()
        paper = PAPER_RESULTS[decoder]
        table.add_row(
            decoder.upper(),
            format_percentage(fractions["underselect"]),
            format_percentage(fractions["accurate"]),
            format_percentage(fractions["overselect"]),
            "%.0f%%" % paper["underselect"],
            "%.0f%%" % paper["accurate"],
            "%.0f%%" % paper["overselect"],
            result.achieved_throughput_mbps,
            result.optimal_throughput_mbps,
        )
    emit("fig7_softrate", "Figure 7 reproduction", table.render())

    bcjr = results["bcjr"].outcome
    sova = results["sova"].outcome
    # Qualitative structure preserved from the paper: the protocol mostly
    # stays at or below the optimal rate, the two decoders behave similarly
    # (SOVA does not clearly beat BCJR), and useful throughput is achieved.
    # At this traffic volume the overselect fraction varies noticeably with
    # the seed, so the bound is loose; EXPERIMENTS.md discusses the gap to
    # the paper's 2% / >80% numbers.
    assert bcjr.fraction("overselect") <= 0.4
    assert sova.fraction("overselect") <= 0.4
    assert bcjr.fraction("underselect") + bcjr.accuracy >= 0.6
    assert sova.accuracy <= bcjr.accuracy + 0.15
    assert results["bcjr"].achieved_throughput_mbps > 0
