"""Load-generator benchmark for the hardened service front door.

The service-side analogue of ``perf_service_throughput`` (ISSUE 7):
instead of two cooperating clients, this drives the HTTP front door the
way production traffic would — dozens of concurrent streaming clients
over overlapping SNR windows, a mix of warm (store-answered) and cold
(fleet-simulated) asks — and records the latency distribution clients
actually see: p50/p99 time-to-first-row, measured client-side from POST
to the first ``row`` event.

Two phases:

1. **Load phase** (timed, best-of-N): three windows are pre-warmed
   through the service, then ``CLIENTS_PER_WINDOW`` streaming clients
   per window fire concurrently over all six windows.  Every client's
   rows are asserted bit-for-bit against its serial ``Experiment.run``
   on every trial — concurrency may only move latency, never bytes.
   The fastest whole trial is kept (``fastest_result``), so elapsed,
   the percentiles and the batch ledger describe one coherent run.
2. **Saturation probe** (deterministic, untimed): a fleet pinned to one
   worker and a one-batch admission budget is held by a gated request;
   six concurrent clients must all receive HTTP 429 with an honest
   ``Retry-After`` of at least a second, and a retry after the held
   work drains must succeed with rows bit-for-bit equal to an unloaded
   run.  This is counted, not timed — saturation behaviour is part of
   the committed artifact.

Run with ``-m "not slow"`` to skip during quick test cycles.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.analysis.adaptive import StopRule, run_link_ber_batch
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service, ServiceHTTPError, serve, stream_request
from repro.service.requests import CharacterisationRequest

from _bench_utils import emit_with_rows, fastest_result, host_metadata

#: Figure-6 decoder on short packets: the per-batch cost is small enough
#: that scheduling and admission — the things under test — dominate.
WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 600,
    "batch_packets": 8,
    "seed": 23,
}

REL_HALF_WIDTH = 0.3
MIN_ERRORS = 20

#: Six overlapping windows; the first three are pre-warmed each trial.
WINDOWS = [
    (4.0, 5.0, 6.0),
    (5.0, 6.0, 7.0),
    (6.0, 7.0, 8.0),
    (4.0, 6.0, 8.0),
    (5.0, 7.0, 9.0),
    (7.0, 8.0, 9.0),
]
WARM_WINDOWS = WINDOWS[:3]
CLIENTS_PER_WINDOW = 3
SATURATION_CLIENTS = 6


def _request(snrs, scale):
    return CharacterisationRequest(
        scenario=Scenario(decoder=WORKLOAD["decoder"],
                          packet_bits=WORKLOAD["packet_bits"]),
        axes={"rate_mbps": [WORKLOAD["rate_mbps"]], "snr_db": list(snrs)},
        stop=StopRule(rel_half_width=REL_HALF_WIDTH, min_errors=MIN_ERRORS,
                      max_packets=32 * scale),
        constants={"batch_size": WORKLOAD["batch_packets"]},
        seed=WORKLOAD["seed"],
        batch_packets=WORKLOAD["batch_packets"],
    )


@pytest.mark.slow
def test_perf_service_load(scale, tmp_path):
    serial = {snrs: _request(snrs, scale).experiment().run(
        SweepExecutor("serial")) for snrs in WINDOWS}

    # ------------------------------------------------------------------ #
    # Load phase: mixed warm/cold concurrent streaming clients.
    # ------------------------------------------------------------------ #
    trial_seq = iter(range(1000))

    def _load_trial():
        store = ResultStore(str(tmp_path / ("store-%d" % next(trial_seq))))
        with Service(store, workers=4) as service:
            server = serve(service, port=0, heartbeat_s=5.0)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            base_url = "http://%s:%d" % (host, port)
            try:
                for snrs in WARM_WINDOWS:  # untimed pre-warm
                    list(stream_request(base_url, _request(snrs, scale)))

                outcomes, failures = [], []
                go = threading.Event()

                def client(snrs):
                    go.wait(30.0)
                    start = time.perf_counter()
                    first, rows = None, []
                    try:
                        for event in stream_request(base_url,
                                                    _request(snrs, scale)):
                            if event["event"] == "row":
                                if first is None:
                                    first = time.perf_counter() - start
                                rows.append(event["row"])
                    except Exception as exc:
                        failures.append((snrs, exc))
                        return
                    outcomes.append(
                        {"snrs": snrs, "warm": snrs in WARM_WINDOWS,
                         "time_to_first_row_s": first, "rows": rows})

                clients = [threading.Thread(target=client, args=(snrs,))
                           for snrs in WINDOWS
                           for _ in range(CLIENTS_PER_WINDOW)]
                for worker in clients:
                    worker.start()
                start = time.perf_counter()
                go.set()
                for worker in clients:
                    worker.join(timeout=600)
                    assert not worker.is_alive(), "a load client hung"
                elapsed = time.perf_counter() - start
                assert not failures, failures

                # Bit-for-bit on every trial, every client: load may only
                # move latency, never bytes.
                for outcome in outcomes:
                    assert sorted(outcome["rows"],
                                  key=lambda r: r["snr_db"]) \
                        == serial[outcome["snrs"]]
                return {
                    "elapsed": elapsed,
                    "ttfr": sorted(o["time_to_first_row_s"]
                                   for o in outcomes),
                    "warm_ttfr": [o["time_to_first_row_s"]
                                  for o in outcomes if o["warm"]],
                    "batches_simulated":
                        service.broker.total_simulated_batches,
                }
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    trial = fastest_result(_load_trial, elapsed=lambda t: t["elapsed"])
    ttfr = np.asarray(trial["ttfr"], dtype=float)

    # ------------------------------------------------------------------ #
    # Saturation probe: pinned capacity, deterministic 429s, clean retry.
    # ------------------------------------------------------------------ #
    gate = threading.Event()

    def gated_runner(batch):
        gate.wait(60.0)
        return dict(run_link_ber_batch(batch))

    probe_request = _request(WINDOWS[0], scale)
    rejections, probe_failures = [], []
    with Service(ResultStore(str(tmp_path / "store-sat")), workers=1,
                 runner=gated_runner, max_inflight_batches=1) as service:
        server = serve(service, port=0, heartbeat_s=5.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base_url = "http://%s:%d" % (host, port)
        try:
            held = service.submit(_request((3.0,), scale))

            def saturated_client():
                try:
                    list(stream_request(base_url, probe_request))
                    probe_failures.append("a client was admitted while "
                                          "the budget was held")
                except ServiceHTTPError as exc:
                    rejections.append(exc)
                except Exception as exc:
                    probe_failures.append(exc)

            probes = [threading.Thread(target=saturated_client)
                      for _ in range(SATURATION_CLIENTS)]
            for worker in probes:
                worker.start()
            for worker in probes:
                worker.join(timeout=60)
                assert not worker.is_alive(), "a saturation probe hung"
            assert not probe_failures, probe_failures
            assert len(rejections) == SATURATION_CLIENTS
            assert all(r.status == 429 and r.retry_after_s >= 1.0
                       for r in rejections)

            # Drain the held work, then the retry must be admitted and
            # bit-for-bit identical to an unloaded run.
            gate.set()
            held.result(timeout=600)
            retry_rows = [event["row"]
                          for event in stream_request(base_url,
                                                      probe_request)
                          if event["event"] == "row"]
            unloaded = probe_request.experiment(
                runner=gated_runner).run(SweepExecutor("serial"))
            assert sorted(retry_rows, key=lambda r: r["snr_db"]) == unloaded
            rejected_total = service.broker.rejected_saturated
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    summary = {
        "benchmark": "service_load",
        "workload": WORKLOAD,
        "rel_half_width": REL_HALF_WIDTH,
        "min_errors": MIN_ERRORS,
        "max_packets_per_point": 32 * scale,
        "windows": len(WINDOWS),
        "warm_windows": len(WARM_WINDOWS),
        "clients": len(WINDOWS) * CLIENTS_PER_WINDOW,
        "elapsed_sec": round(trial["elapsed"], 4),
        "batches_simulated": trial["batches_simulated"],
        "time_to_first_row_sec": {
            "p50": round(float(np.percentile(ttfr, 50)), 4),
            "p99": round(float(np.percentile(ttfr, 99)), 4),
            "max": round(float(ttfr.max()), 4),
            "warm_p50": round(float(np.percentile(
                np.asarray(trial["warm_ttfr"], dtype=float), 50)), 4),
        },
        "saturation": {
            "capacity_batches": 1,
            "workers": 1,
            "concurrent_clients": SATURATION_CLIENTS,
            "accepted": 1,
            "rejected_429": rejected_total,
            "retry_after_s_min": round(min(r.retry_after_s
                                           for r in rejections), 3),
            "retry_succeeded_bitforbit": True,
        },
        "host": host_metadata(),
    }
    emit_with_rows(
        "perf_service_load",
        "Characterisation service under concurrent streaming load",
        json.dumps(summary),
        [row for snrs in WINDOWS for row in serial[snrs]],
    )

    # Every client streamed (a first row before its stream ended), and
    # the saturation counts are exactly the deterministic design.
    assert ttfr.size == len(WINDOWS) * CLIENTS_PER_WINDOW
    assert np.isfinite(ttfr).all(), summary
    assert rejected_total == SATURATION_CLIENTS, summary
