"""End-to-end link and sweep throughput at the Figure 6 operating point.

The paper's headline is simulation *speed*: its FPGA pipeline reaches
32.8-41.3% of the 802.11g line rate, and every BER reproduction in this
repository is gated by how many packets/second the Python link can push.
Two benchmarks track that trajectory with machine-readable JSON rows:

* ``test_perf_link_throughput`` times the full batched TX -> channel -> RX
  chain at a single operating point (BCJR, QAM16 1/2, 1704-bit packets,
  batch 32 -- the Figure 6 workload).
* ``test_perf_sweep_throughput`` times a Figure-6-style SNR *sweep* through
  the sweep executor (the layer every figure and ablation now runs on), so
  sweep wall-clock — including any ``REPRO_SWEEP_WORKERS`` sharding — is
  tracked across PRs too.

Run with ``-m "not slow"`` to skip both during quick test cycles.
"""

import json

import pytest

from repro.analysis.link import LinkSimulator
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps

from _bench_utils import best_of, emit, host_metadata, reference_baseline

#: Figure 6 operating point.
WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_size": 32,
    "snr_db": 7.0,
    "seed": 23,
}


def _timed_run(num_packets, dtype=None, repeats=3):
    """Best-of-``repeats`` elapsed seconds and the first run's result.

    See :func:`_bench_utils.best_of`; the emitted BER comes from the
    first run, so it is independent of ``repeats``.
    """
    simulator = LinkSimulator(
        rate_by_mbps(WORKLOAD["rate_mbps"]),
        snr_db=WORKLOAD["snr_db"],
        decoder=WORKLOAD["decoder"],
        packet_bits=WORKLOAD["packet_bits"],
        seed=WORKLOAD["seed"],
        dtype=dtype,
    )
    simulator.run(WORKLOAD["batch_size"])  # warm-up: caches, allocator, BLAS
    return best_of(
        lambda: simulator.run(num_packets, batch_size=WORKLOAD["batch_size"]),
        repeats,
    )


@pytest.mark.slow
def test_perf_link_throughput(scale):
    num_packets = 64 * scale
    elapsed, result = _timed_run(num_packets)
    f32_elapsed, f32_result = _timed_run(num_packets, dtype="float32")

    packets_per_sec = num_packets / elapsed
    payload_bits_per_sec = result.num_bits / elapsed
    row = {
        "benchmark": "link_throughput",
        "workload": WORKLOAD,
        "num_packets": num_packets,
        "elapsed_sec": round(elapsed, 4),
        "packets_per_sec": round(packets_per_sec, 2),
        "payload_bits_per_sec": round(payload_bits_per_sec, 1),
        "float32_elapsed_sec": round(f32_elapsed, 4),
        "float32_packets_per_sec": round(num_packets / f32_elapsed, 2),
        "host": host_metadata(),
    }
    # The point of comparison is a recorded reference row (see
    # baselines.json), not a constant baked into this file.
    baseline = reference_baseline("link_throughput")
    if baseline and baseline.get("packets_per_sec"):
        row["baseline"] = baseline
        row["speedup_vs_baseline"] = round(
            packets_per_sec / baseline["packets_per_sec"], 2)
    emit(
        "perf_link_throughput",
        "End-to-end link throughput (Figure 6 workload)",
        json.dumps(row),
    )

    # Sanity floor only -- absolute numbers vary by machine; the emitted
    # JSON row is the tracked artefact.
    assert result.bit_error_rate < 0.5
    assert f32_result.bit_error_rate < 0.5
    assert packets_per_sec > 1.0


#: Figure-6-style SNR sweep tracked by ``test_perf_sweep_throughput``.
SWEEP_WORKLOAD = {
    "rate_mbps": [24],
    "snrs_db": [4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_size": 32,
    "seed": 23,
}


@pytest.mark.slow
def test_perf_sweep_throughput(scale):
    packets_per_point = 16 * scale
    scenario = Scenario(decoder=SWEEP_WORKLOAD["decoder"],
                        packet_bits=SWEEP_WORKLOAD["packet_bits"])
    constants = {"num_packets": packets_per_point,
                 "batch_size": SWEEP_WORKLOAD["batch_size"]}
    experiment = Experiment(
        scenario=scenario,
        sweep=SweepSpec(
            {"rate_mbps": SWEEP_WORKLOAD["rate_mbps"],
             "snr_db": SWEEP_WORKLOAD["snrs_db"]},
            constants=constants,
            seed=SWEEP_WORKLOAD["seed"],
        ),
    )
    executor = executor_from_env()
    # Warm-up on one point: caches, allocator, BLAS.  Pool startup is NOT
    # warmed away -- the executor builds a fresh pool per run(), so the
    # timed section below deliberately includes that real per-sweep cost
    # (the emitted row carries backend/max_workers to keep rows comparable).
    Experiment(
        scenario=scenario,
        sweep=SweepSpec({"rate_mbps": [24], "snr_db": [7.0]},
                        constants=dict(constants), seed=23),
    ).run(executor)

    # Best-of-3 (see _bench_utils.best_of): each repeat builds its own
    # pool, so per-sweep startup stays inside the timed section; the
    # emitted rows are the first run's (they are bit-for-bit identical
    # across repeats anyway).
    elapsed, rows = best_of(lambda: experiment.run(executor))

    num_points = len(experiment.spec())
    total_packets = num_points * packets_per_point
    row = {
        "benchmark": "sweep_throughput",
        "workload": SWEEP_WORKLOAD,
        "backend": executor.backend,
        "max_workers": executor.max_workers,
        "num_points": num_points,
        "packets_per_point": packets_per_point,
        "elapsed_sec": round(elapsed, 4),
        "points_per_sec": round(num_points / elapsed, 3),
        "packets_per_sec": round(total_packets / elapsed, 2),
        "host": host_metadata(),
    }
    emit(
        "perf_sweep_throughput",
        "Figure-6 SNR sweep throughput (sweep executor)",
        json.dumps(row),
    )

    # Sanity floors only -- the emitted JSON row is the tracked artefact.
    assert len(rows) == num_points
    assert all(row_["ber"] < 0.5 for row_ in rows)
    assert num_points / elapsed > 0.05
