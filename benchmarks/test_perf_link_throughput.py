"""End-to-end link throughput at the Figure 6 operating point.

The paper's headline is simulation *speed*: its FPGA pipeline reaches
32.8-41.3% of the 802.11g line rate, and every BER reproduction in this
repository is gated by how many packets/second the Python link can push.
This benchmark times the full batched TX -> channel -> RX chain (BCJR,
QAM16 1/2, 1704-bit packets, batch 32 -- the Figure 6 workload) and emits
one machine-readable JSON row so the performance trajectory can be tracked
across PRs.

Run with ``-m "not slow"`` to skip it during quick test cycles.
"""

import json
import time

import pytest

from repro.analysis.link import LinkSimulator
from repro.phy.params import rate_by_mbps

from _bench_utils import emit

#: Figure 6 operating point.
WORKLOAD = {
    "rate_mbps": 24,
    "decoder": "bcjr",
    "packet_bits": 1704,
    "batch_size": 32,
    "snr_db": 7.0,
    "seed": 23,
}

#: packets/sec of the original per-packet implementation on the reference
#: dev machine (measured before the batch-vectorisation of the chain);
#: recorded here so the emitted row carries its own point of comparison.
SEED_BASELINE_PPS = 42.3


@pytest.mark.slow
def test_perf_link_throughput(scale):
    num_packets = 64 * scale
    simulator = LinkSimulator(
        rate_by_mbps(WORKLOAD["rate_mbps"]),
        snr_db=WORKLOAD["snr_db"],
        decoder=WORKLOAD["decoder"],
        packet_bits=WORKLOAD["packet_bits"],
        seed=WORKLOAD["seed"],
    )
    simulator.run(WORKLOAD["batch_size"])  # warm-up: caches, allocator, BLAS

    start = time.perf_counter()
    result = simulator.run(num_packets, batch_size=WORKLOAD["batch_size"])
    elapsed = time.perf_counter() - start

    packets_per_sec = num_packets / elapsed
    payload_bits_per_sec = result.num_bits / elapsed
    row = {
        "benchmark": "link_throughput",
        "workload": WORKLOAD,
        "num_packets": num_packets,
        "elapsed_sec": round(elapsed, 4),
        "packets_per_sec": round(packets_per_sec, 2),
        "payload_bits_per_sec": round(payload_bits_per_sec, 1),
        "seed_baseline_packets_per_sec": SEED_BASELINE_PPS,
        "speedup_vs_seed_baseline": round(packets_per_sec / SEED_BASELINE_PPS, 2),
    }
    emit(
        "perf_link_throughput",
        "End-to-end link throughput (Figure 6 workload)",
        json.dumps(row),
    )

    # Sanity floor only -- absolute numbers vary by machine; the emitted
    # JSON row is the tracked artefact.
    assert result.bit_error_rate < 0.5
    assert packets_per_sec > 1.0
