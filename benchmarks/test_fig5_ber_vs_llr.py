"""Figure 5: BER versus SoftPHY hints for BCJR and SOVA.

The paper transmits trillions of bits and plots, for each decoder and each
of {QAM16 @ 6 dB, QPSK @ 6 dB, QAM16 @ 8 dB}, the empirical BER of bits
carrying each LLR hint value.  The curves are log-linear and their slopes
depend on SNR, modulation and decoder -- the evidence behind the equation 5
scaling factors.

This benchmark measures the same curves at Python scale adaptively through
the :class:`~repro.analysis.scenario.Experiment` front door: each
operating point runs fixed-size batches until it has collected an error
*target* (the classic "run until N errors" BER practice -- errors, not
bits, are what populate the hint bins the fit needs) or hits its traffic
cap.  The easy QAM16 @ 6 dB point stops after a couple of batches; the
low-BER QAM16 @ 8 dB point automatically runs several times more traffic
-- the per-configuration multipliers the fixed version hard-coded now
emerge from the stopping rule.  Per-batch ``BerVersusHint`` histograms
(fixed explicit bin edges) are merged incrementally via ``merge``; the
log-linear fit happens once per row afterwards, in the parent.

The operating-point axis is a :class:`~repro.analysis.sweep.SweepSpec`
grid; set ``REPRO_SWEEP_WORKERS`` to shard each round's batches across
processes.
"""

from repro.analysis.adaptive import StopRule
from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps
from repro.softphy.calibration import fit_log_linear, measure_ber_vs_hint

from _bench_utils import emit

#: The three operating points shown in Figure 5 as (modulation label, rate
#: in Mb/s, AWGN SNR in dB).  No hand-tuned traffic multipliers: the
#: adaptive stopper gives the lower-BER points proportionally more traffic.
OPERATING_POINTS = (
    ("QAM16", 24, 6.0),
    ("QPSK", 12, 6.0),
    ("QAM16", 24, 8.0),
)

DECODERS = ("bcjr", "sova")

#: Packets per adaptive batch (the chunk-invariance unit).
BATCH_PACKETS = 4


def _measure_batch(batch):
    """Picklable chunk-runner: one batch of one Figure 5 configuration."""
    label, rate_mbps, snr_db = batch["operating_point"]
    measurement = measure_ber_vs_hint(
        rate_by_mbps(rate_mbps), snr_db, batch["decoder"],
        num_packets=batch.num_packets, packet_bits=batch["packet_bits"],
        seed=batch.seed, batch_size=batch.num_packets,
    )
    return {
        "errors": int(measurement.errors.sum()),
        "trials": int(measurement.bits.sum()),
        "measurement": measurement,
    }


def _fit_row(row):
    """Post-process one Experiment row: fit the merged hint histogram."""
    measurement = row["measurement"]
    try:
        fit = fit_log_linear(measurement, min_bits=100, min_errors=1)
    except ValueError:
        # The operating point's BER is below what its traffic cap can
        # measure (the paper uses 1e12 bits); report the floor instead.
        fit = None
    return {
        "label": row["operating_point"][0],
        "snr_db": row["operating_point"][2],
        "measurement": measurement,
        "fit": fit,
        "packets": row["packets"],
        "stop_reason": row["stop_reason"],
    }


def _measure(decoder, target_errors, max_packets, packet_bits):
    experiment = Experiment(
        scenario=Scenario(decoder=decoder, packet_bits=packet_bits,
                          rate_mbps=None, snr_db=None),
        sweep=SweepSpec({"operating_point": list(OPERATING_POINTS)}, seed=17),
        stop=StopRule(rel_half_width=None, target_errors=target_errors,
                      max_packets=max_packets),
        runner=_measure_batch,
        batch_packets=BATCH_PACKETS,
    )
    return [_fit_row(row) for row in experiment.run(executor_from_env())]


def _report(decoder, rows):
    table = Table(
        ["Configuration", "bits", "errors", "packets (stop)", "slope",
         "intercept", "r^2", "hint@1e-7 (extrapolated)"],
        title="Figure 5 (%s): log-linear fit of BER vs SoftPHY hint" % decoder.upper(),
    )
    lines = []
    for row in rows:
        label, snr_db = row["label"], row["snr_db"]
        measurement, fit = row["measurement"], row["fit"]
        spend = "%d (%s)" % (row["packets"], row["stop_reason"])
        if fit is None:
            table.add_row(
                "%s, AWGN SNR %.0f dB" % (label, snr_db),
                int(measurement.bits.sum()),
                int(measurement.errors.sum()),
                spend, "below floor", "-", "-", "-",
            )
        else:
            table.add_row(
                "%s, AWGN SNR %.0f dB" % (label, snr_db),
                int(measurement.bits.sum()),
                int(measurement.errors.sum()),
                spend,
                fit.slope,
                fit.intercept,
                fit.r_squared,
                fit.hint_for_ber(1e-7),
            )
        populated = measurement.reliable_mask(min_bits=100, min_errors=1)
        series = ", ".join(
            "(%.0f, %.2e)" % (hint, ber)
            for hint, ber in zip(measurement.hints[populated],
                                 measurement.ber[populated])
        )
        lines.append("%s @ %.0f dB points: %s" % (label, snr_db, series))
    return table.render() + "\n\n" + "\n".join(lines)


def _check(rows):
    results = [(row["label"], row["snr_db"], row["measurement"], row["fit"])
               for row in rows]
    # Log-linear relationship holds for every configuration that produced
    # enough errors to fit.
    for _, _, _, fit in results:
        if fit is not None:
            assert fit.slope > 0
            assert fit.r_squared > 0.5
    # The adaptive stopper spends more traffic where the BER is lower: the
    # 8 dB QAM16 point must not stop sooner than the 6 dB one.
    by_config = {(row["label"], row["snr_db"]): row for row in rows}
    assert (by_config[("QAM16", 8.0)]["packets"]
            >= by_config[("QAM16", 6.0)]["packets"])
    # Slopes vary with SNR: the 8 dB QAM16 curve falls faster than the 6 dB
    # one (same modulation, same decoder) -- the SNR factor of equation 5.
    qam16_6 = next(f for label, snr, _, f in results if label == "QAM16" and snr == 6.0)
    qam16_8 = next(f for label, snr, _, f in results if label == "QAM16" and snr == 8.0)
    assert qam16_6 is not None
    if qam16_8 is not None:
        assert qam16_8.slope > qam16_6.slope
    # Slopes vary with modulation: QPSK at the same SNR has a far lower BER
    # for the same hints (steeper curve).  At Python scale that usually
    # manifests as zero observable errors; either way is consistent.
    qpsk = next(
        (label, snr, m, f) for label, snr, m, f in results if label == "QPSK"
    )
    if qpsk[3] is not None:
        assert qpsk[3].slope > qam16_6.slope
    else:
        qam16_6_measurement = next(
            m for label, snr, m, _ in results if label == "QAM16" and snr == 6.0
        )
        assert qpsk[2].errors.sum() < qam16_6_measurement.errors.sum()


def test_fig5a_bcjr_ber_vs_hint(benchmark, scale):
    rows = benchmark.pedantic(
        _measure, args=("bcjr", 300 * scale, 48 * scale, 1704),
        rounds=1, iterations=1,
    )
    emit("fig5a_bcjr", "Figure 5a (BCJR) reproduction", _report("bcjr", rows))
    _check(rows)


def test_fig5b_sova_ber_vs_hint(benchmark, scale):
    # SOVA decodes several times slower than BCJR per packet, so its caps
    # are tighter; the stopping rule still gives the low-BER points every
    # packet the budget allows.
    rows = benchmark.pedantic(
        _measure, args=("sova", 250 * scale, 24 * scale, 1704),
        rounds=1, iterations=1,
    )
    emit("fig5b_sova", "Figure 5b (SOVA) reproduction", _report("sova", rows))
    _check(rows)
