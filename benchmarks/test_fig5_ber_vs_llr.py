"""Figure 5: BER versus SoftPHY hints for BCJR and SOVA.

The paper transmits trillions of bits and plots, for each decoder and each
of {QAM16 @ 6 dB, QPSK @ 6 dB, QAM16 @ 8 dB}, the empirical BER of bits
carrying each LLR hint value.  The curves are log-linear and their slopes
depend on SNR, modulation and decoder -- the evidence behind the equation 5
scaling factors.

This benchmark measures the same curves at Python scale (tens of thousands
to millions of bits depending on ``REPRO_BENCH_SCALE``), fits the log-linear
relationship, and reports the slope, intercept and fit quality per
configuration.  The floors reachable here are around 1e-3 to 1e-5; the fit
extrapolates the same straight line the paper measures directly down to
1e-7.

The operating-point axis is a :class:`~repro.analysis.sweep.SweepSpec`
grid; set ``REPRO_SWEEP_WORKERS`` to shard the points across processes.
"""

from repro.analysis.reporting import Table
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.phy.params import rate_by_mbps
from repro.softphy.calibration import fit_log_linear, measure_ber_vs_hint

from _bench_utils import emit

#: The three operating points shown in Figure 5 as (modulation label, rate
#: in Mb/s, AWGN SNR in dB, traffic multiplier).  The 8 dB point has a much
#: lower BER, so it needs proportionally more traffic before enough hint
#: bins contain errors for the fit.
OPERATING_POINTS = (
    ("QAM16", 24, 6.0, 1),
    ("QPSK", 12, 6.0, 1),
    ("QAM16", 24, 8.0, 2),
)

DECODERS = ("bcjr", "sova")


def _measure_point(point):
    """Picklable point-runner: one Figure 5 configuration."""
    label, rate_mbps, snr_db, multiplier = point["operating_point"]
    packets = point["num_packets"] * multiplier
    measurement = measure_ber_vs_hint(
        rate_by_mbps(rate_mbps), snr_db, point["decoder"], num_packets=packets,
        packet_bits=point["packet_bits"], seed=17,
        batch_size=max(8, packets // 4),
    )
    try:
        fit = fit_log_linear(measurement, min_bits=100, min_errors=1)
    except ValueError:
        # The operating point's BER is below what this traffic volume can
        # measure (the paper uses 1e12 bits); report the floor instead.
        fit = None
    return {"label": label, "snr_db": snr_db,
            "measurement": measurement, "fit": fit}


def _measure(decoder, num_packets, packet_bits):
    spec = SweepSpec(
        {"operating_point": list(OPERATING_POINTS)},
        constants={"decoder": decoder, "num_packets": num_packets,
                   "packet_bits": packet_bits},
        seed=17,
    )
    rows = executor_from_env().run(spec, _measure_point)
    return [(row["label"], row["snr_db"], row["measurement"], row["fit"])
            for row in rows]


def _report(decoder, results):
    table = Table(
        ["Configuration", "bits", "errors", "slope", "intercept", "r^2",
         "hint@1e-7 (extrapolated)"],
        title="Figure 5 (%s): log-linear fit of BER vs SoftPHY hint" % decoder.upper(),
    )
    lines = []
    for label, snr_db, measurement, fit in results:
        if fit is None:
            table.add_row(
                "%s, AWGN SNR %.0f dB" % (label, snr_db),
                int(measurement.bits.sum()),
                int(measurement.errors.sum()),
                "below floor", "-", "-", "-",
            )
        else:
            table.add_row(
                "%s, AWGN SNR %.0f dB" % (label, snr_db),
                int(measurement.bits.sum()),
                int(measurement.errors.sum()),
                fit.slope,
                fit.intercept,
                fit.r_squared,
                fit.hint_for_ber(1e-7),
            )
        populated = measurement.reliable_mask(min_bits=100, min_errors=1)
        series = ", ".join(
            "(%.0f, %.2e)" % (hint, ber)
            for hint, ber in zip(measurement.hints[populated],
                                 measurement.ber[populated])
        )
        lines.append("%s @ %.0f dB points: %s" % (label, snr_db, series))
    return table.render() + "\n\n" + "\n".join(lines)


def _check(results):
    # Log-linear relationship holds for every configuration that produced
    # enough errors to fit.
    for _, _, _, fit in results:
        if fit is not None:
            assert fit.slope > 0
            assert fit.r_squared > 0.5
    # Slopes vary with SNR: the 8 dB QAM16 curve falls faster than the 6 dB
    # one (same modulation, same decoder) -- the SNR factor of equation 5.
    qam16_6 = next(f for label, snr, _, f in results if label == "QAM16" and snr == 6.0)
    qam16_8 = next(f for label, snr, _, f in results if label == "QAM16" and snr == 8.0)
    assert qam16_6 is not None
    if qam16_8 is not None:
        assert qam16_8.slope > qam16_6.slope
    # Slopes vary with modulation: QPSK at the same SNR has a far lower BER
    # for the same hints (steeper curve).  At Python scale that usually
    # manifests as zero observable errors; either way is consistent.
    qpsk = next(
        (label, snr, m, f) for label, snr, m, f in results if label == "QPSK"
    )
    if qpsk[3] is not None:
        assert qpsk[3].slope > qam16_6.slope
    else:
        qam16_6_measurement = next(
            m for label, snr, m, _ in results if label == "QAM16" and snr == 6.0
        )
        assert qpsk[2].errors.sum() < qam16_6_measurement.errors.sum()


def test_fig5a_bcjr_ber_vs_hint(benchmark, scale):
    results = benchmark.pedantic(
        _measure, args=("bcjr", 12 * scale, 1704), rounds=1, iterations=1
    )
    emit("fig5a_bcjr", "Figure 5a (BCJR) reproduction", _report("bcjr", results))
    _check(results)


def test_fig5b_sova_ber_vs_hint(benchmark, scale):
    results = benchmark.pedantic(
        _measure, args=("sova", 10 * scale, 1704), rounds=1, iterations=1
    )
    emit("fig5b_sova", "Figure 5b (SOVA) reproduction", _report("sova", results))
    _check(results)
