"""Ablation: BCJR block length / SOVA traceback length.

Section 4.3.2 notes that the sliding-window BCJR "shows reasonable
performance if block size n is sufficiently large (larger than 32)" and
Section 4.4.3 that increasing the window beyond 64 "provides no performance
improvement" while the area keeps growing.  This ablation sweeps the window
length, measuring decode BER (at a fixed operating point) and the modelled
area, to reproduce both halves of that trade-off.

The (window, decoder) cross product is a two-axis
:class:`~repro.analysis.sweep.SweepSpec` grid measured adaptively through
the :class:`~repro.analysis.scenario.Experiment` front door (the decoder
axis carries *labels*; the actual decoder instance is built per batch from
the window axis, so the Scenario leaves ``decoder=None``): each
configuration runs fixed-size batches until its Wilson interval settles or
the traffic cap hits, so the crippled small windows (whose BER is enormous
and settles immediately) stop after a batch while the good windows collect
enough errors for a trustworthy comparison.  The area model is evaluated
per row afterwards, since it depends only on the configuration.  Set
``REPRO_SWEEP_WORKERS`` to shard each round's batches across processes.
"""

from repro.analysis.adaptive import StopRule
from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.hwmodel.area import AreaModel, DecoderAreaParameters
from repro.phy.bcjr import BcjrDecoder
from repro.phy.params import rate_by_mbps
from repro.phy.sova import SovaDecoder

from _bench_utils import emit_with_rows

WINDOWS = (8, 16, 32, 64, 128)

#: Packets per adaptive batch (the chunk-invariance unit).
BATCH_PACKETS = 4


def _run_batch(batch):
    """Picklable chunk-runner: one batch of one (window, decoder) config."""
    window = batch["window"]
    if batch["decoder"] == "bcjr":
        decoder = BcjrDecoder(block_length=window)
    else:
        decoder = SovaDecoder(traceback_length=window)
    simulator = LinkSimulator(rate_by_mbps(batch["rate_mbps"]),
                              snr_db=batch["snr_db"], decoder=decoder,
                              packet_bits=batch["packet_bits"],
                              seed=batch.seed)
    result = simulator.run(batch.num_packets, batch_size=batch.num_packets)
    return {
        "errors": int(result.bit_errors.sum()),
        "trials": int(result.num_bits),
    }


def _sweep(num_packets):
    experiment = Experiment(
        scenario=Scenario(rate_mbps=24, snr_db=6.0, decoder=None,
                          packet_bits=1704),
        sweep=SweepSpec({"window": list(WINDOWS), "decoder": ["bcjr", "sova"]},
                        seed=31),
        # num_packets is the old fixed depth; adaptively it caps at
        # twice that, and the easy (high-BER) windows stop well short.
        stop=StopRule(rel_half_width=0.2, min_errors=80,
                      max_packets=2 * num_packets),
        runner=_run_batch,
        batch_packets=BATCH_PACKETS,
    )
    rows = [
        {"window": row["window"], "decoder": row["decoder"], "ber": row["ber"],
         "packets": row["packets"], "stop_reason": row["stop_reason"]}
        for row in experiment.run(executor_from_env())
    ]
    for row in rows:
        area = AreaModel(
            DecoderAreaParameters(block_length=row["window"],
                                  traceback_length=row["window"])
        ).decoder_total(row["decoder"])
        row["luts"] = area.luts
        row["registers"] = area.registers
    return rows


def test_ablation_window_length(benchmark, scale):
    rows = benchmark.pedantic(_sweep, args=(8 * scale,), rounds=1, iterations=1)

    table = Table(
        ["Decoder", "Window/block", "packets (stop)", "BER @ QAM16 1/2, 6 dB",
         "LUTs", "Registers"],
        title="Ablation: window length vs decode quality and area",
    )
    for row in rows:
        table.add_row(row["decoder"].upper(), row["window"],
                      "%d (%s)" % (row["packets"], row["stop_reason"]),
                      row["ber"], row["luts"], row["registers"])
    emit_with_rows("ablation_block_length", "Window-length ablation",
                   table.render(), rows)

    by_decoder = {
        name: {row["window"]: row for row in rows if row["decoder"] == name}
        for name in ("bcjr", "sova")
    }
    for name, per_window in by_decoder.items():
        # Area grows monotonically with the window.
        luts = [per_window[w]["luts"] for w in WINDOWS]
        assert luts == sorted(luts)
        # Going beyond the paper's 64 buys no meaningful BER improvement.
        assert per_window[128]["ber"] >= per_window[64]["ber"] * 0.5 - 1e-6
        # Very small windows hurt BCJR (the paper's n >= 32 guidance).
        if name == "bcjr":
            assert per_window[8]["ber"] >= per_window[64]["ber"]
