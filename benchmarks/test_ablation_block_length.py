"""Ablation: BCJR block length / SOVA traceback length.

Section 4.3.2 notes that the sliding-window BCJR "shows reasonable
performance if block size n is sufficiently large (larger than 32)" and
Section 4.4.3 that increasing the window beyond 64 "provides no performance
improvement" while the area keeps growing.  This ablation sweeps the window
length, measuring decode BER (at a fixed operating point) and the modelled
area, to reproduce both halves of that trade-off.

The (window, decoder) cross product is a two-axis
:class:`~repro.analysis.sweep.SweepSpec` grid; set ``REPRO_SWEEP_WORKERS``
to shard the points across processes.
"""

from repro.analysis.link import LinkSimulator
from repro.analysis.reporting import Table
from repro.analysis.sweep import SweepSpec, executor_from_env
from repro.hwmodel.area import AreaModel, DecoderAreaParameters
from repro.phy.bcjr import BcjrDecoder
from repro.phy.params import rate_by_mbps
from repro.phy.sova import SovaDecoder

from _bench_utils import emit_with_rows

WINDOWS = (8, 16, 32, 64, 128)


def _run_point(point):
    """Picklable point-runner: one (window, decoder) configuration."""
    window = point["window"]
    decoder_name = point["decoder"]
    if decoder_name == "bcjr":
        decoder = BcjrDecoder(block_length=window)
    else:
        decoder = SovaDecoder(traceback_length=window)
    simulator = LinkSimulator(rate_by_mbps(24), snr_db=6.0, decoder=decoder,
                              packet_bits=1704, seed=31)
    result = simulator.run(point["num_packets"], batch_size=8)
    area = AreaModel(
        DecoderAreaParameters(block_length=window, traceback_length=window)
    ).decoder_total(decoder_name)
    return {
        "ber": result.bit_error_rate,
        "luts": area.luts,
        "registers": area.registers,
    }


def _sweep(num_packets):
    spec = SweepSpec({"window": list(WINDOWS), "decoder": ["bcjr", "sova"]},
                     constants={"num_packets": num_packets}, seed=31)
    return executor_from_env().run(spec, _run_point)


def test_ablation_window_length(benchmark, scale):
    rows = benchmark.pedantic(_sweep, args=(8 * scale,), rounds=1, iterations=1)

    table = Table(
        ["Decoder", "Window/block", "BER @ QAM16 1/2, 6 dB", "LUTs", "Registers"],
        title="Ablation: window length vs decode quality and area",
    )
    for row in rows:
        table.add_row(row["decoder"].upper(), row["window"], row["ber"],
                      row["luts"], row["registers"])
    emit_with_rows("ablation_block_length", "Window-length ablation",
                   table.render(), rows)

    by_decoder = {
        name: {row["window"]: row for row in rows if row["decoder"] == name}
        for name in ("bcjr", "sova")
    }
    for name, per_window in by_decoder.items():
        # Area grows monotonically with the window.
        luts = [per_window[w]["luts"] for w in WINDOWS]
        assert luts == sorted(luts)
        # Going beyond the paper's 64 buys no meaningful BER improvement.
        assert per_window[128]["ber"] >= per_window[64]["ber"] * 0.5 - 1e-6
        # Very small windows hurt BCJR (the paper's n >= 32 guidance).
        if name == "bcjr":
            assert per_window[8]["ber"] >= per_window[64]["ber"]
