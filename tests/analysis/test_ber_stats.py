"""Unit tests for BER statistics and hint binning."""

import numpy as np
import pytest

from repro.analysis.ber_stats import BerMeasurement, bin_errors_by_hint, wilson_interval


class TestWilsonInterval:
    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(10, 1000)
        assert low < 0.01 < high

    def test_zero_errors_still_gives_a_finite_upper_bound(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.01

    def test_interval_narrows_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 100)
        low_large, high_large = wilson_interval(500, 10_000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_higher_confidence_widens_the_interval(self):
        low95, high95 = wilson_interval(10, 1000, confidence=0.95)
        low99, high99 = wilson_interval(10, 1000, confidence=0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_bounds_stay_in_unit_interval(self):
        low, high = wilson_interval(999, 1000)
        assert 0.0 <= low <= high <= 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)


class TestBerMeasurement:
    def test_point_estimate(self):
        assert BerMeasurement(25, 1000).ber == pytest.approx(0.025)

    def test_merge_pools_counts(self):
        merged = BerMeasurement(10, 1000).merge(BerMeasurement(20, 1000))
        assert merged.errors == 30
        assert merged.bits == 2000

    def test_interval_property(self):
        low, high = BerMeasurement(10, 1000).interval
        assert low < 0.01 < high

    def test_requires_at_least_one_bit(self):
        with pytest.raises(ValueError):
            BerMeasurement(0, 0)


class TestBinErrorsByHint:
    def test_counts_land_in_the_right_bins(self):
        hints = np.array([0.2, 1.4, 1.6, 5.0])
        errors = np.array([True, False, True, False])
        centres, bits, errs = bin_errors_by_hint(hints, errors, bin_width=1.0, max_hint=6)
        assert bits[0] == 1 and errs[0] == 1
        assert bits[1] == 2 and errs[1] == 1
        assert bits[5] == 1 and errs[5] == 0

    def test_total_counts_are_preserved(self, rng):
        hints = rng.uniform(0, 50, size=5000)
        errors = rng.random(5000) < 0.1
        _, bits, errs = bin_errors_by_hint(hints, errors, max_hint=50)
        assert bits.sum() == 5000
        assert errs.sum() == errors.sum()

    def test_hints_beyond_max_go_to_last_bin(self):
        centres, bits, errs = bin_errors_by_hint(
            np.array([100.0]), np.array([True]), bin_width=1.0, max_hint=10
        )
        assert bits[-1] == 1 and errs[-1] == 1

    def test_explicit_bin_edges(self):
        edges = np.array([0.0, 2.0, 10.0])
        centres, bits, _ = bin_errors_by_hint(
            np.array([1.0, 5.0, 9.0]), np.zeros(3, dtype=bool), bin_edges=edges
        )
        assert centres.size == 2
        assert list(bits) == [1, 2]

    def test_batched_inputs_are_flattened(self):
        hints = np.zeros((2, 3))
        errors = np.zeros((2, 3), dtype=bool)
        _, bits, _ = bin_errors_by_hint(hints, errors, max_hint=5)
        assert bits.sum() == 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bin_errors_by_hint(np.zeros(3), np.zeros(4, dtype=bool))
