"""Unit tests for BER statistics and hint binning."""

import numpy as np
import pytest

from repro.analysis.ber_stats import BerMeasurement, bin_errors_by_hint, wilson_interval


class TestWilsonInterval:
    def test_contains_the_point_estimate(self):
        low, high = wilson_interval(10, 1000)
        assert low < 0.01 < high

    def test_zero_errors_still_gives_a_finite_upper_bound(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.01

    def test_interval_narrows_with_more_trials(self):
        low_small, high_small = wilson_interval(5, 100)
        low_large, high_large = wilson_interval(500, 10_000)
        assert (high_large - low_large) < (high_small - low_small)

    def test_higher_confidence_widens_the_interval(self):
        low95, high95 = wilson_interval(10, 1000, confidence=0.95)
        low99, high99 = wilson_interval(10, 1000, confidence=0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_bounds_stay_in_unit_interval(self):
        low, high = wilson_interval(999, 1000)
        assert 0.0 <= low <= high <= 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)  # errors out of [0, trials]
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)

    def test_zero_trials_is_the_vacuous_interval(self):
        # No data constrains nothing: the adaptive stopper asks before the
        # first batch has run.
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_zero_errors_lower_bound_is_exactly_zero(self):
        for trials in (1, 10, 1000, 10**6):
            low, high = wilson_interval(0, trials)
            assert low == 0.0
            assert 0.0 < high < 1.0

    def test_zero_errors_upper_bound_shrinks_with_traffic(self):
        # The zero-error upper bound is what lets a high-SNR point prove
        # its BER is below a floor: roughly z**2 / trials.
        highs = [wilson_interval(0, trials)[1] for trials in (100, 10_000, 1_000_000)]
        assert highs == sorted(highs, reverse=True)
        assert highs[-1] < 1e-5
        # Halving the traffic roughly doubles the bound.
        assert wilson_interval(0, 5_000)[1] == pytest.approx(
            2 * wilson_interval(0, 10_000)[1], rel=0.01
        )

    def test_all_errors_upper_bound_is_exactly_one(self):
        for trials in (1, 10, 1000):
            low, high = wilson_interval(trials, trials)
            assert high == 1.0
            assert 0.0 < low < 1.0

    def test_edges_are_mirror_images(self):
        low0, high0 = wilson_interval(0, 500)
        low1, high1 = wilson_interval(500, 500)
        assert low1 == pytest.approx(1.0 - high0)
        assert high1 == pytest.approx(1.0 - low0)


class TestBerMeasurement:
    def test_point_estimate(self):
        assert BerMeasurement(25, 1000).ber == pytest.approx(0.025)

    def test_merge_pools_counts(self):
        merged = BerMeasurement(10, 1000).merge(BerMeasurement(20, 1000))
        assert merged.errors == 30
        assert merged.bits == 2000

    def test_interval_property(self):
        low, high = BerMeasurement(10, 1000).interval
        assert low < 0.01 < high

    def test_requires_at_least_one_bit(self):
        with pytest.raises(ValueError):
            BerMeasurement(0, 0)

    @staticmethod
    def _same(a, b):
        return (a.errors, a.bits, a.confidence) == (b.errors, b.bits, b.confidence)

    def test_merge_is_commutative(self):
        # The adaptive loop folds batches in whatever order they finish
        # locally; pooled counts must not care.
        a, b = BerMeasurement(3, 700), BerMeasurement(11, 1300)
        assert self._same(a.merge(b), b.merge(a))

    def test_merge_is_associative(self):
        a, b, c = BerMeasurement(1, 500), BerMeasurement(0, 900), BerMeasurement(7, 2100)
        assert self._same(a.merge(b).merge(c), a.merge(b.merge(c)))
        # Left fold == right fold over a longer chain, as the incremental
        # accumulator produces.
        chain = [BerMeasurement(i, 100 * (i + 1)) for i in range(6)]
        left = chain[0]
        for item in chain[1:]:
            left = left.merge(item)
        right = chain[-1]
        for item in reversed(chain[:-1]):
            right = item.merge(right)
        assert self._same(left, right)
        assert left.errors == sum(range(6))
        assert left.bits == sum(100 * (i + 1) for i in range(6))

    def test_merge_preserves_confidence(self):
        a = BerMeasurement(2, 100, confidence=0.99)
        b = BerMeasurement(3, 100, confidence=0.99)
        assert a.merge(b).confidence == 0.99


class TestBinErrorsByHint:
    def test_counts_land_in_the_right_bins(self):
        hints = np.array([0.2, 1.4, 1.6, 5.0])
        errors = np.array([True, False, True, False])
        centres, bits, errs = bin_errors_by_hint(hints, errors, bin_width=1.0, max_hint=6)
        assert bits[0] == 1 and errs[0] == 1
        assert bits[1] == 2 and errs[1] == 1
        assert bits[5] == 1 and errs[5] == 0

    def test_total_counts_are_preserved(self, rng):
        hints = rng.uniform(0, 50, size=5000)
        errors = rng.random(5000) < 0.1
        _, bits, errs = bin_errors_by_hint(hints, errors, max_hint=50)
        assert bits.sum() == 5000
        assert errs.sum() == errors.sum()

    def test_hints_beyond_max_go_to_last_bin(self):
        centres, bits, errs = bin_errors_by_hint(
            np.array([100.0]), np.array([True]), bin_width=1.0, max_hint=10
        )
        assert bits[-1] == 1 and errs[-1] == 1

    def test_explicit_bin_edges(self):
        edges = np.array([0.0, 2.0, 10.0])
        centres, bits, _ = bin_errors_by_hint(
            np.array([1.0, 5.0, 9.0]), np.zeros(3, dtype=bool), bin_edges=edges
        )
        assert centres.size == 2
        assert list(bits) == [1, 2]

    def test_explicit_edges_count_errors_per_bin(self):
        edges = np.array([0.0, 1.0, 4.0, 16.0])
        hints = np.array([0.5, 0.7, 2.0, 3.9, 8.0, 15.0])
        errors = np.array([True, False, True, True, False, True])
        centres, bits, errs = bin_errors_by_hint(hints, errors, bin_edges=edges)
        assert list(centres) == [0.5, 2.5, 10.0]
        assert list(bits) == [2, 2, 2]
        assert list(errs) == [1, 2, 1]

    def test_explicit_edges_clip_out_of_range_hints(self):
        # Values outside [first, last) edge are clipped into the end bins,
        # so explicit-edge accumulation never loses counts -- the property
        # incremental (batched) merging relies on.
        edges = np.array([1.0, 2.0, 3.0])
        hints = np.array([0.0, 5.0])
        errors = np.array([True, True])
        _, bits, errs = bin_errors_by_hint(hints, errors, bin_edges=edges)
        assert list(bits) == [1, 1]
        assert list(errs) == [1, 1]
        assert bits.sum() == hints.size

    def test_explicit_edges_batched_accumulation_matches_pooled(self):
        # Summing per-batch (bits, errors) over fixed explicit edges equals
        # binning the pooled arrays -- the merge the adaptive loop performs.
        rng = np.random.default_rng(7)
        edges = np.arange(0.0, 64.0 + 1.0, 1.0)
        hints = rng.uniform(0, 63, size=600)
        errors = rng.random(600) < 0.2
        _, pooled_bits, pooled_errs = bin_errors_by_hint(hints, errors, bin_edges=edges)
        bits_sum = np.zeros(edges.size - 1, dtype=np.int64)
        errs_sum = np.zeros(edges.size - 1, dtype=np.int64)
        for chunk in range(3):
            sl = slice(chunk * 200, (chunk + 1) * 200)
            _, bits, errs = bin_errors_by_hint(hints[sl], errors[sl], bin_edges=edges)
            bits_sum += bits
            errs_sum += errs
        assert np.array_equal(bits_sum, pooled_bits)
        assert np.array_equal(errs_sum, pooled_errs)

    def test_batched_inputs_are_flattened(self):
        hints = np.zeros((2, 3))
        errors = np.zeros((2, 3), dtype=bool)
        _, bits, _ = bin_errors_by_hint(hints, errors, max_hint=5)
        assert bits.sum() == 6

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bin_errors_by_hint(np.zeros(3), np.zeros(4, dtype=bool))
