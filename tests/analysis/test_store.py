"""Tests for the content-addressed result store and batch-level resume.

The acceptance contract (ISSUE 4): with a warm :class:`ResultStore`,
re-running an :class:`Experiment` with a *tighter* :class:`StopRule`
simulates only the missing batch indices, and the final rows — packets
spent and stop reasons included — are bit-for-bit identical to a cold
run with the same rule.  The store layer itself must round-trip numpy
values exactly and refuse anything it cannot round-trip, naming the key.
"""

import json

import numpy as np
import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.store import ResultStore, StoreError, StoreView
from repro.analysis.sweep import SweepExecutor, SweepSpec

POINT_A = (1, 2, 3, 4)
POINT_B = (5, 6, 7, 8)


class TestStoreView:
    def view(self, tmp_path, name="deadbeef"):
        return ResultStore(tmp_path).view(name)

    def test_miss_then_put_then_hit(self, tmp_path):
        view = self.view(tmp_path)
        assert view.get(POINT_A, 0, 8) is None
        view.put(POINT_A, 0, 8, {"errors": 3, "trials": 4800})
        assert view.get(POINT_A, 0, 8) == {"errors": 3, "trials": 4800}
        assert (view.hits, view.misses) == (1, 1)

    def test_round_trip_is_exact_for_numpy_values(self, tmp_path):
        view = self.view(tmp_path)
        array = np.array([[0.1, 2.0 ** -52], [np.pi, -1e300]])
        counts = np.array([1, 2, 3], dtype=np.int16)
        view.put(POINT_A, 2, 4, {
            "errors": np.int64(7), "trials": 2400,
            "curve": array, "counts": counts,
            "nested": {"ratio": np.float64(0.25), "tags": ["a", "b"]},
        })
        # A fresh view re-reads from disk, so this exercises the full
        # JSON round trip, not the in-memory index.
        fresh = self.view(tmp_path)
        result = fresh.get(POINT_A, 2, 4)
        assert result["errors"] == 7 and isinstance(result["errors"], int)
        assert result["trials"] == 2400
        assert result["curve"].dtype == array.dtype
        assert result["curve"].shape == array.shape
        assert (result["curve"] == array).all()  # bit-for-bit, not isclose
        assert result["counts"].dtype == np.int16
        assert (result["counts"] == counts).all()
        assert result["nested"] == {"ratio": 0.25, "tags": ["a", "b"]}

    def test_batches_and_points_are_independent_keys(self, tmp_path):
        view = self.view(tmp_path)
        view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100})
        view.put(POINT_A, 1, 8, {"errors": 2, "trials": 100})
        view.put(POINT_B, 0, 8, {"errors": 3, "trials": 100})
        assert view.get(POINT_A, 1, 8)["errors"] == 2
        assert view.get(POINT_B, 0, 8)["errors"] == 3
        assert view.known_batches(POINT_A) == [0, 1]
        assert len(view) == 3

    def test_put_is_idempotent(self, tmp_path):
        view = self.view(tmp_path)
        view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100})
        view.put(POINT_A, 0, 8, {"errors": 999, "trials": 1})
        assert self.view(tmp_path).get(POINT_A, 0, 8)["errors"] == 1

    def test_num_packets_mismatch_is_an_error_not_a_hit(self, tmp_path):
        view = self.view(tmp_path)
        view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100})
        with pytest.raises(StoreError, match="8 packets"):
            view.get(POINT_A, 0, 4)

    def test_peek_never_counts_a_miss_and_sees_peer_appends(self, tmp_path):
        # The lease-poller's probe: absent batches cost no miss (a
        # waiting replica polls every fraction of a second), hits count
        # normally, and a result appended by *another* view of the same
        # file is visible without constructing a fresh view.
        view = self.view(tmp_path)
        for _ in range(10):
            assert view.peek(POINT_A, 0, 8) is None
        assert (view.hits, view.misses) == (0, 0)
        peer = self.view(tmp_path)
        peer.put(POINT_A, 0, 8, {"errors": 3, "trials": 4800})
        assert view.peek(POINT_A, 0, 8) == {"errors": 3, "trials": 4800}
        assert (view.hits, view.misses) == (1, 0)

    def test_unstorable_values_are_rejected_naming_the_key(self, tmp_path):
        view = self.view(tmp_path)
        with pytest.raises(StoreError, match="'measurement'"):
            view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100,
                                     "measurement": object()})
        with pytest.raises(StoreError, match="'pair'"):
            view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100,
                                     "pair": (1, 2)})
        with pytest.raises(StoreError, match="'gains'"):
            view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100,
                                     "gains": np.array([1 + 2j])})
        # Nothing half-written: the file holds no record for the key.
        assert self.view(tmp_path).get(POINT_A, 0, 8) is None

    def test_truncated_trailing_line_is_dropped(self, tmp_path):
        view = self.view(tmp_path)
        view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100})
        view.put(POINT_A, 1, 8, {"errors": 2, "trials": 100})
        with open(view.path, "a", encoding="utf-8") as handle:
            handle.write('{"point": [5, 6, 7, 8], "batch": 0, "num')  # killed run
        fresh = self.view(tmp_path)
        assert fresh.get(POINT_A, 1, 8)["errors"] == 2
        assert fresh.get(POINT_B, 0, 8) is None

    def test_header_line_carries_format_and_metadata(self, tmp_path):
        view = StoreView(str(tmp_path / "cafe.jsonl"),
                         metadata={"runner": "x.y"})
        view.put(POINT_A, 0, 8, {"errors": 1, "trials": 100})
        with open(view.path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["format"] == 1
        assert header["metadata"] == {"runner": "x.y"}

    def test_future_format_versions_are_refused(self, tmp_path):
        path = tmp_path / "beef.jsonl"
        path.write_text('{"format": 99}\n')
        with pytest.raises(StoreError, match="format"):
            StoreView(str(path)).get(POINT_A, 0, 8)

    def test_store_digest_names_must_be_hex(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError, match="hex"):
            store.view("../escape")
        assert store.digests() == []


# ---------------------------------------------------------------------- #
# End-to-end resume through the Experiment front door
# ---------------------------------------------------------------------- #
SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
LOOSE = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)
TIGHT = StopRule(rel_half_width=0.2, min_errors=40, max_packets=40)


def experiment(stop, store=None):
    return Experiment(
        scenario=SCENARIO,
        sweep=SweepSpec({"rate_mbps": [24], "snr_db": [4.0, 5.5, 8.0]},
                        constants={"batch_size": 4}, seed=23),
        stop=stop,
        batch_packets=4,
        store=store,
    )


class TestExperimentResume:
    def test_cold_run_with_store_matches_storeless_run(self, tmp_path):
        plain = experiment(LOOSE).run(SweepExecutor("serial"))
        cold = experiment(LOOSE, ResultStore(tmp_path))
        assert cold.run(SweepExecutor("serial")) == plain
        assert cold.last_store_stats["hits"] == 0
        assert cold.last_store_stats["misses"] == sum(
            row["batches"] for row in plain)

    def test_warm_rerun_simulates_nothing_and_is_bit_for_bit(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = experiment(LOOSE, store)
        cold_rows = cold.run(SweepExecutor("serial"))
        warm = experiment(LOOSE, store)
        warm_rows = warm.run(SweepExecutor("serial"))
        assert warm_rows == cold_rows  # packets spent and stop reasons included
        assert warm.last_store_stats["misses"] == 0
        assert warm.last_store_stats["hits"] == cold.last_store_stats["misses"]

    def test_tighter_rerun_simulates_only_the_missing_batches(self, tmp_path):
        store = ResultStore(tmp_path)
        loose = experiment(LOOSE, store)
        loose_rows = loose.run(SweepExecutor("serial"))
        loose_batches = sum(row["batches"] for row in loose_rows)

        resumed = experiment(TIGHT, store)
        resumed_rows = resumed.run(SweepExecutor("serial"))
        fresh_rows = experiment(TIGHT).run(SweepExecutor("serial"))
        # Exact: the resumed run's rows are bit-for-bit the cold tight
        # run's rows, spend and stop reasons included.
        assert resumed_rows == fresh_rows
        # Incremental: only the batch indices the loose run never reached
        # were simulated.  (The tight trajectory replays every batch the
        # loose run stored, then extends it.)
        tight_batches = sum(row["batches"] for row in fresh_rows)
        assert tight_batches > loose_batches  # the ask actually got tighter
        assert resumed.last_store_stats["hits"] == loose_batches
        assert resumed.last_store_stats["misses"] == tight_batches - loose_batches

    def test_resume_is_backend_invariant(self, tmp_path):
        store = ResultStore(tmp_path)
        experiment(LOOSE, store).run(SweepExecutor("serial"))
        resumed = experiment(TIGHT, store)
        rows = resumed.run(SweepExecutor("process", max_workers=2, chunk_size=1))
        assert rows == experiment(TIGHT).run(SweepExecutor("serial"))

    def test_different_stop_rules_share_one_namespace(self, tmp_path):
        store = ResultStore(tmp_path)
        experiment(LOOSE, store).run(SweepExecutor("serial"))
        experiment(TIGHT, store).run(SweepExecutor("serial"))
        assert len(store.digests()) == 1

    def test_budget_counts_cached_batches_like_simulated_ones(self, tmp_path):
        store = ResultStore(tmp_path)

        def budgeted(store_arg):
            return Experiment(
                scenario=SCENARIO,
                sweep=SweepSpec({"rate_mbps": [24], "snr_db": [4.0, 8.0]},
                                constants={"batch_size": 4}, seed=23),
                stop=StopRule(rel_half_width=0.05, min_errors=10 ** 6,
                              max_packets=10 ** 6),
                batch_packets=4,
                budget=24,
                store=store_arg,
            )

        cold_rows = budgeted(store).run(SweepExecutor("serial"))
        warm_rows = budgeted(store).run(SweepExecutor("serial"))
        assert warm_rows == cold_rows
        assert all(row["stop_reason"] == "budget" for row in warm_rows)
        assert sum(row["packets"] for row in warm_rows) <= 24
