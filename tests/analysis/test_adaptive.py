"""Tests for the adaptive BER characterisation subsystem.

The contracts under test:

* **Stopping** — a :class:`StopRule` fires for the right reason at the
  right accumulated state (convergence, error target, zero-error floor,
  traffic cap), and ranks unsettled points loosest-first.
* **Batch invariance** — batch ``k`` of a point draws from a stream that
  depends only on ``(point, k)``: stopping decisions, worker count and
  scheduling order can decide only *whether* batch ``k`` runs, never what
  it contains.
* **Scheduler determinism** (the acceptance property) — for a fixed spec,
  rule and budget, the serial and multi-worker process backends produce
  bit-for-bit identical rows, including packets spent and stop reasons.
* **Budget reallocation** — traffic freed by early-stopped points flows to
  the loosest (high-SNR) points, and an exhausted budget stops the rest
  with reason ``"budget"``.
"""

import numpy as np
import pytest

from repro.analysis.adaptive import (
    AdaptivePointState,
    AdaptiveScheduler,
    AdaptiveTrajectory,
    MeasurementBatch,
    StopRule,
    batch_seed_sequence,
    run_link_ber_batch,
    run_point_adaptive,
)
from repro.analysis.ber_stats import BerMeasurement
from repro.analysis.sweep import (
    SweepError,
    SweepExecutor,
    SweepSpec,
    run_link_ber_point,
)

#: A miniature link workload: small packets keep every test here fast.
SMALL_CONSTANTS = {"decoder": "bcjr", "packet_bits": 600, "batch_size": 8}


def small_spec(snrs=(4.0, 6.0, 8.5), seed=23):
    return SweepSpec(
        {"rate_mbps": [24], "snr_db": list(snrs)},
        constants=SMALL_CONSTANTS,
        seed=seed,
    )


def one_point(snr_db=5.0, seed=23):
    (point,) = SweepSpec(
        {"rate_mbps": [24], "snr_db": [snr_db]}, constants=SMALL_CONSTANTS,
        seed=seed,
    ).points()
    return point


def seed_echo_runner(batch):
    """Picklable chunk-runner recording which stream a batch drew from."""
    return {"errors": 1, "trials": 100,
            "seeds": np.array([batch.seed], dtype=np.uint64)}


class _FixedSequenceRunner:
    """Deterministic error counts per batch index (picklable)."""

    def __init__(self, errors_by_batch, trials=1000):
        self.errors_by_batch = tuple(errors_by_batch)
        self.trials = trials

    def __call__(self, batch):
        errors = self.errors_by_batch[min(batch.index, len(self.errors_by_batch) - 1)]
        return {"errors": errors, "trials": self.trials}


def fail_on_second_batch(batch):
    if batch.index == 1:
        raise RuntimeError("decoder exploded")
    return {"errors": 0, "trials": 1000}


class TestStopRule:
    def test_converged_needs_min_errors_and_a_tight_interval(self):
        rule = StopRule(rel_half_width=0.2, min_errors=50)
        loose = BerMeasurement(10, 100)
        assert rule.evaluate(loose, packets_spent=8) is None
        tight = BerMeasurement(400, 4000)  # rel half-width ~ 1.96/sqrt(400) ~ 0.10
        assert rule.evaluate(tight, packets_spent=8) == "converged"
        # Same interval but too few errors: keep going.
        assert StopRule(rel_half_width=0.2, min_errors=500).evaluate(tight, 8) is None

    def test_target_errors_fires_first(self):
        rule = StopRule(rel_half_width=0.2, min_errors=10, target_errors=100)
        assert rule.evaluate(BerMeasurement(150, 1500), 8) == "target_errors"

    def test_zero_error_floor(self):
        rule = StopRule(rel_half_width=0.2, ber_floor=1e-3)
        # Upper bound ~ 3.84/trials: 1000 trials is not enough, 10000 is.
        assert rule.evaluate(BerMeasurement(0, 1000), 8) is None
        assert rule.evaluate(BerMeasurement(0, 10_000), 8) == "ber_floor"

    def test_max_packets_cap(self):
        rule = StopRule(rel_half_width=None, max_packets=64)
        assert rule.evaluate(BerMeasurement(1, 100), 32) is None
        assert rule.evaluate(BerMeasurement(1, 100), 64) == "max_packets"
        assert rule.evaluate(None, 64) == "max_packets"

    def test_no_data_keeps_running(self):
        assert StopRule().evaluate(None, 0) is None

    def test_looseness_ranks_zero_error_points_loosest(self):
        rule = StopRule(ber_floor=1e-4)
        settled = rule.looseness(BerMeasurement(400, 4000))
        zero = rule.looseness(BerMeasurement(0, 4000))
        assert zero > settled
        assert rule.looseness(None) == np.inf

    def test_replace(self):
        rule = StopRule(rel_half_width=0.2, min_errors=30)
        capped = rule.replace(max_packets=64)
        assert capped.max_packets == 64
        assert capped.rel_half_width == 0.2
        assert rule.max_packets is None
        assert capped == StopRule(rel_half_width=0.2, min_errors=30, max_packets=64)

    def test_validation(self):
        with pytest.raises(ValueError):
            StopRule(rel_half_width=0.0)
        with pytest.raises(ValueError):
            StopRule(ber_floor=0.0)
        with pytest.raises(ValueError):
            StopRule(max_packets=0)
        with pytest.raises(ValueError):
            StopRule(confidence=1.0)


class TestBatchSeeding:
    def test_batches_extend_the_point_spawn_key(self):
        point = one_point()
        seq = batch_seed_sequence(point.seed_sequence, 3)
        assert tuple(seq.spawn_key) == tuple(point.seed_sequence.spawn_key) + (3,)
        assert seq.entropy == point.seed_sequence.entropy

    def test_distinct_batches_distinct_points_never_share_streams(self):
        points = small_spec().points()
        seeds = {
            MeasurementBatch(point, index, 8).seed
            for point in points for index in range(4)
        }
        assert len(seeds) == len(points) * 4

    def test_batch_stream_is_independent_of_how_many_batches_run(self):
        # Batch 2's content is the same whether the point runs 3 batches or
        # 10 -- the heart of stopping-decision invariance.
        point = one_point()
        again = one_point()
        assert MeasurementBatch(point, 2, 8).seed == MeasurementBatch(again, 2, 8).seed

    def test_absolute_packet_indices(self):
        point = one_point()
        batch = MeasurementBatch(point, 3, num_packets=5)
        assert batch.first_packet_index == 15


class TestRunPointAdaptive:
    def test_stops_when_converged_and_accumulates(self):
        runner = _FixedSequenceRunner([0, 0, 400, 400])
        rule = StopRule(rel_half_width=0.2, min_errors=100, max_packets=400)
        row = run_point_adaptive(one_point(), runner, rule, batch_packets=8)
        assert row["stop_reason"] == "converged"
        assert row["batches"] == 3
        assert row["packets"] == 24
        assert row["errors"] == 400
        assert row["trials"] == 3000
        assert row["ber_low"] < row["ber"] < row["ber_high"]

    def test_cap_hits_when_never_converging(self):
        runner = _FixedSequenceRunner([0])
        rule = StopRule(rel_half_width=0.01, min_errors=1, max_packets=32)
        row = run_point_adaptive(one_point(), runner, rule, batch_packets=8)
        assert row["stop_reason"] == "max_packets"
        assert row["packets"] == 32

    def test_unbounded_rule_rejected(self):
        with pytest.raises(ValueError):
            run_point_adaptive(one_point(), _FixedSequenceRunner([0]),
                               StopRule(rel_half_width=0.2))
        with pytest.raises(ValueError):
            run_point_adaptive(one_point(), _FixedSequenceRunner([0]), None)

    def test_max_batches_escape_hatch(self):
        row = run_point_adaptive(one_point(), _FixedSequenceRunner([0]),
                                 StopRule(rel_half_width=0.01, min_errors=1),
                                 batch_packets=8, max_batches=2)
        assert row["stop_reason"] == "max_batches"
        assert row["batches"] == 2

    def test_missing_count_keys_are_reported(self):
        def bad_runner(batch):
            return {"bit_errors": 1}

        with pytest.raises(ValueError, match="trials|errors"):
            run_point_adaptive(one_point(), bad_runner,
                               StopRule(max_packets=8), batch_packets=8)


class TestExtrasMerging:
    def run_state(self, results):
        state = AdaptivePointState(one_point())
        for index, result in enumerate(results):
            state.consume(MeasurementBatch(state.point, index, 8), result)
        return state.row()

    def test_arrays_concatenate_in_batch_order(self):
        row = self.run_state([
            {"errors": 1, "trials": 10, "values": np.array([1.0, 2.0])},
            {"errors": 1, "trials": 10, "values": np.array([3.0])},
        ])
        assert list(row["values"]) == [1.0, 2.0, 3.0]

    def test_numbers_sum_and_strings_keep_last(self):
        row = self.run_state([
            {"errors": 1, "trials": 10, "packet_errors": 2, "label": "first"},
            {"errors": 1, "trials": 10, "packet_errors": 3, "label": "second"},
        ])
        assert row["packet_errors"] == 5
        assert row["label"] == "second"

    def test_mergeable_objects_fold_via_merge(self):
        row = self.run_state([
            {"errors": 1, "trials": 10, "m": BerMeasurement(2, 100)},
            {"errors": 1, "trials": 10, "m": BerMeasurement(5, 300)},
        ])
        assert (row["m"].errors, row["m"].bits) == (7, 400)

    def test_counts_accumulate_into_one_measurement(self):
        row = self.run_state([{"errors": 3, "trials": 100},
                              {"errors": 5, "trials": 100}])
        assert (row["errors"], row["trials"]) == (8, 200)
        assert row["ber"] == pytest.approx(0.04)


class TestAdaptiveScheduler:
    def rule(self):
        return StopRule(rel_half_width=0.25, min_errors=40, ber_floor=2e-3,
                        max_packets=48)

    def test_serial_rows_make_sense(self):
        rows = AdaptiveScheduler(stop=self.rule(), batch_packets=8).run(
            small_spec(), run_link_ber_batch
        )
        assert [row["snr_db"] for row in rows] == [4.0, 6.0, 8.5]
        for row in rows:
            assert row["stop_reason"] in (
                "converged", "target_errors", "ber_floor", "max_packets"
            )
            assert row["packets"] == 8 * row["batches"]
            assert row["trials"] == row["packets"] * 600
        # The noisy low-SNR point settles long before the cap; the clean
        # high-SNR tail keeps (or caps out) collecting -- adaptivity.
        assert rows[0]["stop_reason"] == "converged"
        assert rows[0]["packets"] < rows[-1]["packets"]

    def test_default_chunk_runner_is_the_link_runner(self):
        scheduler = AdaptiveScheduler(stop=self.rule(), batch_packets=8)
        assert scheduler.run(small_spec()) == scheduler.run(
            small_spec(), run_link_ber_batch
        )

    def test_serial_and_process_backends_are_bit_for_bit_identical(self):
        """Acceptance: fixed spec + budget => identical rows (packets spent
        and stop reasons included) on serial and 4-worker process backends."""
        spec = small_spec()
        stop = self.rule()
        serial = AdaptiveScheduler(stop=stop, batch_packets=8, budget=96).run(
            spec, run_link_ber_batch
        )
        process = AdaptiveScheduler(
            stop=stop, batch_packets=8, budget=96,
            executor=SweepExecutor("process", max_workers=4, chunk_size=1),
        ).run(spec, run_link_ber_batch)
        assert process == serial  # element-for-element, reasons and spend too

    def test_budget_exhaustion_stops_remaining_points(self):
        # Budget covers exactly one round of three batches: everything
        # unconverged after it stops with reason "budget".
        rows = AdaptiveScheduler(
            stop=StopRule(rel_half_width=0.01, min_errors=10**9, max_packets=10**6),
            batch_packets=8, budget=24,
        ).run(small_spec(), _FixedSequenceRunner([5]))
        assert [row["packets"] for row in rows] == [8, 8, 8]
        assert {row["stop_reason"] for row in rows} == {"budget"}
        assert sum(row["packets"] for row in rows) <= 24

    def test_budget_flows_to_the_loosest_points(self):
        # Three points; the runner makes point 0 converge immediately while the
        # others stay loose.  The freed budget must be spent on the loose
        # points, not returned.
        class Runner:
            def __call__(self, batch):
                if batch.point.coordinates["snr_db"] == 4.0:
                    return {"errors": 2500, "trials": 10_000}
                return {"errors": 0, "trials": 10_000}

        rows = AdaptiveScheduler(
            stop=StopRule(rel_half_width=0.2, min_errors=100, max_packets=80),
            batch_packets=8, budget=96,
        ).run(small_spec(), Runner())
        assert rows[0]["stop_reason"] == "converged"
        assert rows[0]["packets"] == 8
        # 96 - 8 = 88 packets left for the two loose points (=> 40 each in
        # whole batches under the per-point cap, with index tie-breaks).
        assert rows[1]["packets"] + rows[2]["packets"] > 2 * rows[0]["packets"]
        assert sum(row["packets"] for row in rows) <= 96

    def test_pure_budget_mode_runs_round_robin(self):
        rows = AdaptiveScheduler(stop=None, batch_packets=8, budget=48).run(
            small_spec(), _FixedSequenceRunner([1])
        )
        assert [row["packets"] for row in rows] == [16, 16, 16]
        assert {row["stop_reason"] for row in rows} == {"budget"}

    def test_unbounded_scheduler_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveScheduler(stop=None)
        with pytest.raises(ValueError):
            AdaptiveScheduler(stop=StopRule(rel_half_width=0.2))
        with pytest.raises(ValueError):
            AdaptiveScheduler(stop=StopRule(max_packets=8), batch_packets=0)
        with pytest.raises(ValueError):
            AdaptiveScheduler(stop=StopRule(max_packets=8)).run(
                small_spec(), _FixedSequenceRunner([1]), on_error="abort"
            )

    def test_raise_mode_names_the_failing_batch(self):
        with pytest.raises(SweepError) as excinfo:
            AdaptiveScheduler(stop=StopRule(max_packets=32), batch_packets=8).run(
                small_spec(), fail_on_second_batch
            )
        assert "batch=1" in str(excinfo.value)
        assert "decoder exploded" in str(excinfo.value)

    def test_capture_mode_quarantines_the_failing_point(self):
        class FailAtSix:
            def __call__(self, batch):
                if batch.point.coordinates["snr_db"] == 6.0:
                    raise RuntimeError("bad point")
                return {"errors": 1000, "trials": 2000}

        rows = AdaptiveScheduler(
            stop=StopRule(rel_half_width=0.3, min_errors=10, max_packets=16),
            batch_packets=8,
        ).run(small_spec(), FailAtSix(), on_error="capture")
        assert rows[1]["stop_reason"] == "error"
        assert "bad point" in rows[1]["error"]
        assert rows[1]["packets"] == 0
        assert rows[0]["stop_reason"] == "converged"
        assert rows[2]["stop_reason"] == "converged"

    def test_failed_batches_still_debit_the_budget(self):
        # The budget counts dispatched traffic: a batch whose runner fails
        # in capture mode is not refunded, so a failing point cannot make
        # the sweep exceed its global cap.
        class AlwaysFail:
            def __call__(self, batch):
                raise RuntimeError("boom")

        rows = AdaptiveScheduler(stop=None, batch_packets=8, budget=8).run(
            small_spec(snrs=(4.0, 6.0)), AlwaysFail(), on_error="capture"
        )
        # Budget funded exactly one batch; it went to the first point and
        # was spent even though the batch errored, so the second point got
        # nothing at all.
        assert rows[0]["stop_reason"] == "error"
        assert rows[1]["stop_reason"] == "budget"
        assert [row["packets"] for row in rows] == [0, 0]

    def test_batch_streams_are_what_the_scheduler_actually_uses(self):
        # The seeds consumed by a scheduled run are exactly the per-batch
        # derived streams, in batch order per point.
        rows = AdaptiveScheduler(stop=StopRule(max_packets=16),
                                 batch_packets=8).run(
            small_spec(), seed_echo_runner
        )
        for row, point in zip(rows, small_spec().points()):
            expected = [MeasurementBatch(point, k, 8).seed for k in range(2)]
            assert list(row["seeds"]) == expected


class TestAdaptiveLinkPointRunner:
    """run_link_ber_point's stop= mode and the satellite passthroughs."""

    def constants(self, **extra):
        constants = dict(SMALL_CONSTANTS, num_packets=48)
        constants.update(extra)
        return constants

    def test_stop_none_matches_the_legacy_fixed_path(self):
        fixed = SweepSpec({"rate_mbps": [24], "snr_db": [5.0]},
                          constants=self.constants(), seed=23)
        explicit = SweepSpec({"rate_mbps": [24], "snr_db": [5.0]},
                             constants=self.constants(stop=None), seed=23)
        (row_a,) = SweepExecutor("serial").run(fixed, run_link_ber_point)
        (row_b,) = SweepExecutor("serial").run(explicit, run_link_ber_point)
        row_b.pop("stop")
        assert row_a == row_b

    def test_adaptive_mode_stops_early_and_reports_spend(self):
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [4.0]},
            constants=self.constants(
                stop=StopRule(rel_half_width=0.25, min_errors=40),
                batch_packets=8,
            ),
            seed=23,
        )
        (row,) = SweepExecutor("serial").run(spec, run_link_ber_point)
        assert row["stop_reason"] == "converged"
        assert row["packets"] < 48  # num_packets became the cap, not the depth
        assert row["num_bits"] == row["packets"] * 600
        assert row["ber_low"] <= row["ber"] <= row["ber_high"]

    def test_adaptive_rows_identical_across_backends(self):
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [4.0, 8.5]},
            constants=self.constants(
                stop=StopRule(rel_half_width=0.25, min_errors=40),
                batch_packets=8,
            ),
            seed=23,
        )
        serial = SweepExecutor("serial").run(spec, run_link_ber_point)
        process = SweepExecutor("process", max_workers=2, chunk_size=1).run(
            spec, run_link_ber_point
        )
        assert process == serial

    def test_fading_passthrough_changes_the_channel(self):
        awgn = SweepSpec({"rate_mbps": [24], "snr_db": [12.0]},
                         constants=self.constants(num_packets=16), seed=23)
        faded = SweepSpec(
            {"rate_mbps": [24], "snr_db": [12.0]},
            constants=self.constants(
                num_packets=16,
                fading={"doppler_hz": 20.0, "packet_interval_s": 0.05},
            ),
            seed=23,
        )
        (clean,) = SweepExecutor("serial").run(awgn, run_link_ber_point)
        (dirty,) = SweepExecutor("serial").run(faded, run_link_ber_point)
        # 12 dB AWGN is error-free at this size; Rayleigh fades are not.
        assert clean["bit_errors"] == 0
        assert dirty["bit_errors"] > 0
        # Deterministic: same spec, same rows (and picklable through a pool).
        (again,) = SweepExecutor("process", max_workers=1).run(
            faded, run_link_ber_point
        )
        assert again == dirty

    def test_fading_trace_is_batch_invariant(self):
        # The fading process is seeded per point, sampled at absolute packet
        # indices: an adaptive run's trace is one continuous process.
        constants = self.constants(
            num_packets=16,
            fading={"doppler_hz": 200.0, "packet_interval_s": 0.01},
            stop=StopRule(rel_half_width=1e-9, min_errors=10**9),  # cap-bound
        )
        for batch_packets in (4, 8, 16):
            constants["batch_packets"] = batch_packets
            spec = SweepSpec({"rate_mbps": [24], "snr_db": [8.0]},
                             constants=dict(constants), seed=23)
            (row,) = SweepExecutor("serial").run(spec, run_link_ber_point)
            assert row["packets"] == 16
            # Different batch splits draw different noise, but the per-point
            # fading realisation they ride on is shared; the measured BER
            # must stay in the same fade-dominated ballpark.
            assert row["bit_errors"] > 0

    def test_llr_format_passthrough_quantises(self):
        float_spec = SweepSpec({"rate_mbps": [24], "snr_db": [6.0]},
                               constants=self.constants(num_packets=8), seed=23)
        coarse = SweepSpec(
            {"rate_mbps": [24], "snr_db": [6.0]},
            constants=self.constants(num_packets=8, llr_format=3),
            seed=23,
        )
        named = SweepSpec(
            {"rate_mbps": [24], "snr_db": [6.0]},
            constants=self.constants(
                num_packets=8, llr_format={"total_bits": 3, "max_abs": 8.0}
            ),
            seed=23,
        )
        (reference,) = SweepExecutor("serial").run(float_spec, run_link_ber_point)
        (quantised,) = SweepExecutor("serial").run(coarse, run_link_ber_point)
        (from_dict,) = SweepExecutor("serial").run(named, run_link_ber_point)
        # 3-bit quantisation must change the decode (same seed, same noise).
        assert quantised["ber"] != reference["ber"]
        assert from_dict["bit_errors"] == quantised["bit_errors"]

    def test_llr_format_rejects_floats_and_bools_clearly(self):
        for bad in (6.0, np.float64(6.0), True, False):
            spec = SweepSpec(
                {"rate_mbps": [24], "snr_db": [6.0]},
                constants=self.constants(num_packets=4, llr_format=bad),
                seed=23,
            )
            with pytest.raises(SweepError, match="llr_format"):
                SweepExecutor("serial").run(spec, run_link_ber_point)


class TestStopRuleSerialisation:
    def test_to_dict_from_dict_round_trips(self):
        rule = StopRule(rel_half_width=0.2, min_errors=30, target_errors=100,
                        ber_floor=1e-4, max_packets=64, confidence=0.9)
        rebuilt = StopRule.from_dict(rule.to_dict())
        assert rebuilt == rule

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="patience"):
            StopRule.from_dict({"max_packets": 16, "patience": 3})


class TestAdaptiveTrajectory:
    """The pull-based state machine must replay the scheduler exactly."""

    def rule(self):
        return StopRule(rel_half_width=0.25, min_errors=40, ber_floor=2e-3,
                        max_packets=48)

    def drive(self, trajectory, runner, consume_order=None):
        """Run a trajectory by hand, serially, optionally scrambling the
        order results are consumed in within each round."""
        while True:
            batches = trajectory.start_round()
            if not batches:
                break
            results = [(batch, dict(runner(batch))) for batch in batches]
            if consume_order is not None:
                results = consume_order(results)
            for batch, result in results:
                trajectory.consume(batch, result)
        assert trajectory.finished
        return trajectory.rows()

    def test_hand_driven_trajectory_matches_the_scheduler(self):
        scheduler_rows = AdaptiveScheduler(
            stop=self.rule(), batch_packets=8, budget=96
        ).run(small_spec(), run_link_ber_batch)
        trajectory = AdaptiveTrajectory(small_spec(), stop=self.rule(),
                                        batch_packets=8, budget=96)
        assert self.drive(trajectory, run_link_ber_batch) == scheduler_rows

    def test_consume_order_within_a_round_is_irrelevant(self):
        forward = AdaptiveTrajectory(small_spec(), stop=self.rule(),
                                     batch_packets=8)
        backward = AdaptiveTrajectory(small_spec(), stop=self.rule(),
                                      batch_packets=8)
        rows = self.drive(forward, run_link_ber_batch)
        reversed_rows = self.drive(backward, run_link_ber_batch,
                                   consume_order=lambda r: r[::-1])
        assert reversed_rows == rows

    def test_budget_exhaustion_marks_active_points(self):
        trajectory = AdaptiveTrajectory(
            small_spec(),
            stop=StopRule(rel_half_width=0.01, min_errors=10**9,
                          max_packets=10**6),
            batch_packets=8, budget=24,
        )
        rows = self.drive(trajectory, run_link_ber_batch)
        assert all(row["stop_reason"] == "budget" for row in rows)
        assert trajectory.budget_left < 8  # cannot fund another batch

    def test_start_round_refuses_while_in_flight(self):
        trajectory = AdaptiveTrajectory(small_spec(), stop=self.rule(),
                                        batch_packets=8)
        trajectory.start_round()
        assert trajectory.round_in_flight
        with pytest.raises(RuntimeError, match="in flight"):
            trajectory.start_round()

    def test_consume_rejects_batches_it_never_started(self):
        trajectory = AdaptiveTrajectory(small_spec(), stop=self.rule(),
                                        batch_packets=8)
        stranger = MeasurementBatch(one_point(), 5, 8)
        with pytest.raises(ValueError, match="not started"):
            trajectory.consume(stranger, {"errors": 0, "trials": 100})

    def test_error_results_stop_the_point(self):
        trajectory = AdaptiveTrajectory(small_spec(snrs=(5.0,)),
                                        stop=self.rule(), batch_packets=8)
        (batch,) = trajectory.start_round()
        state = trajectory.consume(batch, {"error": "decoder exploded"})
        assert state.stop_reason == "error"
        assert trajectory.finished
        assert trajectory.rows()[0]["error"] == "decoder exploded"

    def test_unbounded_trajectory_is_rejected(self):
        with pytest.raises(ValueError, match="unbounded"):
            AdaptiveTrajectory(small_spec(), stop=StopRule(rel_half_width=0.3),
                               batch_packets=8)
