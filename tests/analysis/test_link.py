"""Tests for the batched link simulator."""

import numpy as np
import pytest

from repro.analysis.link import LinkRunResult, LinkSimulator
from repro.fixedpoint.fixed import llr_quantizer


class TestLinkRunResult:
    def make(self, errors_in_second_packet=2):
        tx = np.zeros((2, 10), dtype=np.uint8)
        rx = tx.copy()
        rx[1, :errors_in_second_packet] ^= 1
        llr = np.full((2, 10), 5.0)
        return LinkRunResult(tx, rx, llr, np.array([6.0, 6.0]))

    def test_bit_error_rate(self):
        assert self.make().bit_error_rate == pytest.approx(0.1)

    def test_packet_ber_and_errors(self):
        result = self.make()
        assert np.allclose(result.packet_ber, [0.0, 0.2])
        assert list(result.packet_errors) == [False, True]
        assert result.packet_error_rate == pytest.approx(0.5)

    def test_hints_are_absolute_llrs(self):
        result = self.make()
        assert np.all(result.hints == 5.0)

    def test_concatenate(self):
        merged = self.make().concatenate(self.make(errors_in_second_packet=0))
        assert merged.tx_bits.shape == (4, 10)
        assert merged.packet_error_rate == pytest.approx(0.25)


class TestLinkSimulator:
    def test_high_snr_link_is_error_free(self, qam16_half):
        simulator = LinkSimulator(qam16_half, snr_db=25.0, decoder="viterbi",
                                  packet_bits=200, seed=0)
        result = simulator.run(4, batch_size=2)
        assert result.bit_error_rate == 0.0

    def test_low_snr_link_has_errors(self, qam16_half):
        simulator = LinkSimulator(qam16_half, snr_db=3.0, decoder="viterbi",
                                  packet_bits=200, seed=0)
        assert simulator.run(4, batch_size=2).bit_error_rate > 0.01

    def test_same_seed_reproduces_the_run(self, qam16_half):
        a = LinkSimulator(qam16_half, 8.0, decoder="bcjr", packet_bits=150, seed=5).run(3)
        b = LinkSimulator(qam16_half, 8.0, decoder="bcjr", packet_bits=150, seed=5).run(3)
        assert np.array_equal(a.rx_bits, b.rx_bits)
        assert np.array_equal(a.llr, b.llr)

    def test_snr_callable_sweeps_per_packet(self, qam16_half):
        simulator = LinkSimulator(
            qam16_half, snr_db=lambda index: 5.0 + index, decoder="viterbi",
            packet_bits=150, seed=0,
        )
        result = simulator.run(3)
        assert list(result.snr_db) == [5.0, 6.0, 7.0]

    def test_soft_decoder_produces_hints(self, qam16_half):
        simulator = LinkSimulator(qam16_half, 9.0, decoder="sova", packet_bits=150, seed=1)
        result = simulator.run(2)
        assert result.hints is not None
        assert result.hints.shape == (2, 150)

    def test_hard_decoder_produces_no_hints(self, qam16_half):
        simulator = LinkSimulator(qam16_half, 9.0, decoder="viterbi", packet_bits=150, seed=1)
        assert simulator.run(2).hints is None

    def test_fading_gain_callable_is_applied(self, bpsk_half):
        deep_fade = LinkSimulator(
            bpsk_half, 12.0, decoder="viterbi", packet_bits=150, seed=2,
            fading_gain=lambda index: 0.05,
        )
        clear = LinkSimulator(bpsk_half, 12.0, decoder="viterbi", packet_bits=150, seed=2)
        assert deep_fade.run(3).bit_error_rate > clear.run(3).bit_error_rate

    def test_quantized_demapper_output(self, qam16_half):
        simulator = LinkSimulator(
            qam16_half, 12.0, decoder="bcjr", packet_bits=150, seed=3,
            llr_format=llr_quantizer(4, max_abs=4.0),
        )
        assert simulator.run(2).bit_error_rate < 0.05

    def test_batching_does_not_change_results(self, qam16_half):
        a = LinkSimulator(qam16_half, 8.0, decoder="bcjr", packet_bits=150, seed=9).run(
            4, batch_size=1
        )
        b = LinkSimulator(qam16_half, 8.0, decoder="bcjr", packet_bits=150, seed=9).run(
            4, batch_size=4
        )
        assert np.array_equal(a.rx_bits, b.rx_bits)

    def test_at_least_one_packet_required(self, qam16_half):
        with pytest.raises(ValueError):
            LinkSimulator(qam16_half, 8.0).run(0)
