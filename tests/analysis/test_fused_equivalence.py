"""Equivalence contract of the fused multi-point simulation rounds.

The fused path (`repro.analysis.fused`) exists purely for throughput, so
its whole correctness story is *equivalence*:

* Under the exact float64 policy a fused group must produce **bit-for-bit**
  the counts the per-batch runner produces — across every 802.11a/g rate,
  every decoder, with fading, with the scaled demapper and with every
  declarative ``llr_format`` spelling.
* Under the approximate float32 policy both paths use the same
  reduced-precision kernels (including the :class:`~repro.phy.demapper.LlrTable`
  fast path), so they agree with each other exactly and with the float64
  reference to BER-level tolerance.
* The :class:`~repro.analysis.adaptive.AdaptiveScheduler`'s ``fused`` flag
  is a pure throughput knob: rows with it on and off are identical.
* float32 results live under a *different* scenario content hash (and
  therefore a different store namespace) than float64 ones, while the
  float64 default leaves every pre-existing hash unchanged.
"""

import numpy as np
import pytest

from repro.analysis.adaptive import (
    AdaptiveScheduler,
    MeasurementBatch,
    StopRule,
    run_link_ber_batch,
)
from repro.analysis.fused import (
    FusedBatchGroup,
    FusedBatchRunner,
    fuse_key,
    plan_fused_round,
    run_fused_group,
)
from repro.analysis.scenario import Scenario
from repro.analysis.sweep import SweepSpec
from repro.phy.demapper import LlrTable, axis_soft_values
from repro.phy.dtype import FLOAT32, FLOAT64, dtype_policy
from repro.phy.params import RATE_TABLE

#: Small packets keep the 8-rate x 3-decoder sweep affordable.
PACKET_BITS = 240
BATCH_PACKETS = 6
DECODERS = ("viterbi", "sova", "bcjr")


def make_batches(snrs=(5.0, 8.0), constants=None, seed=23, num_batches=2,
                 batch_packets=BATCH_PACKETS, rates=(24,)):
    """Per-point measurement batches for a small sweep grid."""
    base = {"decoder": "bcjr", "packet_bits": PACKET_BITS}
    base.update(constants or {})
    spec = SweepSpec({"rate_mbps": list(rates), "snr_db": list(snrs)},
                     constants=base, seed=seed)
    return [MeasurementBatch(point, index, batch_packets)
            for point in spec.points() for index in range(num_batches)]


def assert_fused_bit_exact(batches):
    """The fused group reproduces the per-batch runner's counts exactly."""
    fused = run_fused_group(batches)
    reference = [run_link_ber_batch(batch) for batch in batches]
    assert len(fused) == len(reference)
    for got, expected in zip(fused, reference):
        for key in ("errors", "trials", "packet_errors"):
            assert got[key] == expected[key], (key, got, expected)


class TestFusedBitExactness:
    @pytest.mark.parametrize("decoder", DECODERS)
    @pytest.mark.parametrize(
        "rate_mbps", [int(rate.data_rate_mbps) for rate in RATE_TABLE])
    def test_all_rates_and_decoders(self, rate_mbps, decoder):
        batches = make_batches(
            snrs=(6.0, 9.0), rates=(rate_mbps,), num_batches=1,
            constants={"decoder": decoder})
        assert_fused_bit_exact(batches)

    def test_multiple_batches_per_point(self):
        assert_fused_bit_exact(make_batches(snrs=(4.0, 6.0, 8.0)))

    def test_fading(self):
        assert_fused_bit_exact(make_batches(
            constants={"fading": {"doppler_hz": 50.0}}))

    def test_demapper_scaled(self):
        assert_fused_bit_exact(make_batches(
            constants={"demapper_scaled": True}))

    @pytest.mark.parametrize("llr_format", [None, 6, {"total_bits": 5,
                                                      "max_abs": 4.0}])
    def test_llr_formats(self, llr_format):
        assert_fused_bit_exact(make_batches(
            constants={"llr_format": llr_format}))

    def test_decode_chunking_is_invisible(self):
        batches = make_batches(snrs=(5.0, 7.0), num_batches=2)
        by_default = run_fused_group(batches)
        tiny_chunks = run_fused_group(batches, decode_chunk=5)
        assert by_default == tiny_chunks


class TestFusedFloat32:
    def test_matches_per_batch_float32_exactly(self):
        # Both paths run the same reduced-precision kernels row by row,
        # so fusion changes nothing even under the approximate policy.
        batches = make_batches(constants={"dtype": "float32"})
        assert_fused_bit_exact(batches)

    def test_tolerance_against_float64_reference(self):
        exact = make_batches(snrs=(6.0, 8.0), num_batches=2)
        approx = make_batches(snrs=(6.0, 8.0), num_batches=2,
                              constants={"dtype": "float32"})
        for exact_row, approx_row in zip(run_fused_group(exact),
                                         run_fused_group(approx)):
            assert exact_row["trials"] == approx_row["trials"]
            # Reduced precision may flip individual marginal decisions but
            # must not move the error statistics: the counts at these
            # operating points stay within 2% of the traffic of each other.
            budget = max(10, int(0.02 * exact_row["trials"]))
            assert abs(exact_row["errors"] - approx_row["errors"]) <= budget


class TestDtypePolicy:
    def test_resolution(self):
        assert dtype_policy(None) is FLOAT64
        assert dtype_policy("float64") is FLOAT64
        assert dtype_policy("float32") is FLOAT32
        assert dtype_policy(FLOAT32) is FLOAT32

    def test_policy_attributes(self):
        assert FLOAT64.exact and not FLOAT32.exact
        assert FLOAT64.float_dtype == np.float64
        assert FLOAT64.complex_dtype == np.complex128
        assert FLOAT32.float_dtype == np.float32
        assert FLOAT32.complex_dtype == np.complex64

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            dtype_policy("float16")


class TestLlrTable:
    @pytest.mark.parametrize("axis_bits", [1, 2, 3])
    def test_lookup_error_bounded_by_bin_width(self, axis_bits):
        table = LlrTable(axis_bits)
        step = 2.0 * table.limit / table.bins
        rng = np.random.default_rng(7)
        coords = rng.uniform(-8.5, 8.5, size=4096)
        exact = axis_soft_values(coords, axis_bits, dtype=np.float64)
        looked_up = table.lookup(coords)
        # The soft expressions have |slope| <= 1 in the coordinate, so a
        # nearest-bin lookup is off by at most half a bin (plus float32
        # rounding of the stored values).
        assert np.max(np.abs(looked_up - exact)) <= 0.51 * step + 1e-4

    def test_saturates_outside_limit(self):
        table = LlrTable(1)
        inside = table.lookup(np.array([table.limit - 1e-6]))
        outside = table.lookup(np.array([table.limit + 5.0]))
        np.testing.assert_allclose(outside, inside, atol=0.02)


class TestScenarioDtypeHash:
    def test_default_hash_unchanged(self):
        # "float64" (and None) must hash identically to a scenario that
        # never heard of the dtype field: pre-existing stores keep their
        # namespaces.
        base = Scenario()
        assert Scenario(dtype="float64").content_hash() == base.content_hash()
        assert Scenario(dtype=None).content_hash() == base.content_hash()
        assert "dtype" not in base.to_dict()
        assert "dtype" not in base.params()

    def test_float32_versions_the_hash(self):
        base = Scenario()
        reduced = Scenario(dtype="float32")
        assert reduced.content_hash() != base.content_hash()
        assert reduced.params()["dtype"] == "float32"

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            Scenario(dtype="float16")


class TestPlanning:
    def test_groups_by_key_and_keeps_singles(self):
        fusable = make_batches(snrs=(5.0, 6.0, 7.0), num_batches=1)
        lone = make_batches(snrs=(5.0,), num_batches=1,
                            constants={"packet_bits": 120})
        unfusable = make_batches(snrs=(5.0, 6.0), num_batches=1,
                                 constants={"fading": lambda index: 1.0})
        groups, singles = plan_fused_round(fusable + lone + unfusable)
        assert len(groups) == 1 and len(groups[0]) == 3
        assert set(singles) == set(lone + unfusable)

    def test_max_group_splits(self):
        batches = make_batches(snrs=(5.0,), num_batches=8)
        groups, singles = plan_fused_round(batches, max_group=3)
        assert [len(group) for group in groups] == [3, 3, 2]
        assert singles == []

    def test_fuse_key_unfusable_spellings(self):
        fused_params = make_batches(num_batches=1)[0].point.params
        assert fuse_key(fused_params) is not None
        assert fuse_key(dict(fused_params, snr_db=lambda: 5.0)) is None
        assert fuse_key(dict(fused_params, llr_format=True)) is None
        assert fuse_key(dict(fused_params, dtype="float16")) is None

    def test_runner_falls_back_per_batch_on_fused_failure(self, monkeypatch):
        import repro.analysis.fused as fused_mod

        batches = make_batches(snrs=(5.0, 6.0), num_batches=1)
        calls = []

        def per_batch(batch):
            calls.append(batch.point.index)
            return run_link_ber_batch(batch)

        def explode(*_args, **_kwargs):
            raise RuntimeError("fused pass cannot run")

        monkeypatch.setattr(fused_mod, "run_fused_group", explode)
        result = FusedBatchRunner(per_batch)(FusedBatchGroup(batches))
        assert sorted(calls) == [0, 1]
        assert result["results"] == [run_link_ber_batch(b) for b in batches]


class TestSchedulerKnob:
    def test_fused_flag_is_bit_invisible(self):
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [4.0, 6.0, 8.0]},
            constants={"decoder": "bcjr", "packet_bits": PACKET_BITS},
            seed=23)
        stop = StopRule(min_errors=20, max_packets=24)
        fused_rows = AdaptiveScheduler(
            stop=stop, batch_packets=8, fused=True).run(spec)
        plain_rows = AdaptiveScheduler(
            stop=stop, batch_packets=8, fused=False).run(spec)
        assert fused_rows == plain_rows
