"""Unit tests for sweeps and table formatting."""

import pytest

from repro.analysis.reporting import Table, format_percentage, format_ratio, format_scientific
from repro.analysis.sweep import cross_sweep, sweep


class TestSweep:
    def test_sweep_collects_rows(self):
        rows = sweep([1, 2, 3], lambda v: {"square": v * v}, label="value")
        assert rows == [
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
            {"value": 3, "square": 9},
        ]

    def test_non_dict_results_are_wrapped(self):
        rows = sweep([1, 2], lambda v: v + 10)
        assert rows[0] == {"value": 1, "result": 11}

    def test_custom_label_names_the_parameter_column(self):
        rows = sweep([0.5, 1.5], lambda v: {"doubled": 2 * v}, label="snr_db")
        assert rows == [
            {"snr_db": 0.5, "doubled": 1.0},
            {"snr_db": 1.5, "doubled": 3.0},
        ]

    def test_default_label_is_value(self):
        rows = sweep([7], lambda v: {"x": v})
        assert rows == [{"value": 7, "x": 7}]

    def test_empty_values_yield_no_rows(self):
        assert sweep([], lambda v: {"x": v}) == []

    def test_generator_values_are_consumed_once(self):
        rows = sweep((v for v in [1, 2]), lambda v: v * 10)
        assert rows == [{"value": 1, "result": 10}, {"value": 2, "result": 20}]

    def test_experiment_result_wins_a_column_collision(self):
        # Legacy behaviour: the experiment's result is merged over the
        # parameter column, so a result keyed like the label overwrites it.
        rows = sweep([1], lambda v: {"value": "overwritten"})
        assert rows == [{"value": "overwritten"}]

    def test_cross_sweep_covers_all_pairs(self):
        rows = cross_sweep([1, 2], ["a", "b"], lambda a, b: {"pair": (a, b)},
                           labels=("x", "y"))
        assert len(rows) == 4
        assert rows[-1] == {"x": 2, "y": "b", "pair": (2, "b")}

    def test_cross_sweep_default_labels(self):
        rows = cross_sweep([1], [2], lambda a, b: a + b)
        assert rows == [{"first": 1, "second": 2, "result": 3}]

    def test_cross_sweep_row_order_is_first_axis_outermost(self):
        rows = cross_sweep([1, 2], [10, 20], lambda a, b: {})
        assert [(row["first"], row["second"]) for row in rows] == [
            (1, 10), (1, 20), (2, 10), (2, 20),
        ]

    def test_cross_sweep_empty_axis_yields_no_rows(self):
        assert cross_sweep([], [1, 2], lambda a, b: {}) == []
        assert cross_sweep([1, 2], [], lambda a, b: {}) == []


class TestFormatting:
    def test_ratio(self):
        assert format_ratio(2.176) == "2.18x"

    def test_percentage(self):
        assert format_percentage(0.413) == "41.3%"

    def test_scientific(self):
        assert format_scientific(1.5e-7) == "1.50e-07"


class TestTable:
    def test_render_contains_headers_and_rows(self):
        table = Table(["Rate", "Speed"], title="Figure 2")
        table.add_row("BPSK 1/2", 2.033)
        table.add_row("QAM64 3/4", 22.244)
        rendered = table.render()
        assert "Figure 2" in rendered
        assert "Rate" in rendered and "Speed" in rendered
        assert "BPSK 1/2" in rendered and "22.24" in rendered

    def test_named_rows(self):
        table = Table(["a", "b"])
        table.add_row(b=2, a=1)
        assert table.rows == [["1", "2"]]

    def test_row_length_is_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_mixing_positional_and_named_rejected(self):
        table = Table(["a"])
        with pytest.raises(ValueError):
            table.add_row(1, a=2)

    def test_columns_are_aligned(self):
        table = Table(["name", "value"])
        table.add_row("x", 1)
        table.add_row("longer-name", 100)
        lines = table.render().splitlines()
        assert len({line.index("  ") for line in lines[1:]}) >= 1
        assert all(len(line) >= len("longer-name") for line in lines[1:])
