"""Multi-process store contention tests.

The satellite contract (ISSUE 5): two processes characterising
overlapping sweeps into one store concurrently must yield the same rows
as serial runs, with no lost or duplicated batches — the O_APPEND
single-write append plus the under-lock duplicate check make the racing
writers converge on one clean file.
"""

import json
import multiprocessing

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor, SweepSpec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the contention harness forks characterisation processes",
)

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)

#: Two overlapping SNR windows: 5.5 and 8.0 dB are contended points whose
#: batches both processes will race to simulate and append.
SNRS_A = [4.0, 5.5, 8.0]
SNRS_B = [5.5, 8.0, 9.5]


def experiment(snrs, store=None):
    return Experiment(
        scenario=SCENARIO,
        sweep=SweepSpec({"rate_mbps": [24], "snr_db": snrs},
                        constants={"batch_size": 4}, seed=23),
        stop=STOP,
        batch_packets=4,
        store=store,
    )


def _characterise(store_dir, snrs, out_queue):
    rows = experiment(snrs, ResultStore(store_dir)).run(SweepExecutor("serial"))
    out_queue.put((snrs[0], rows))


def _store_file_keys(path):
    """Every (point, batch) key in file order, headers excluded."""
    keys = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            if "format" in record:
                continue
            keys.append((tuple(record["point"]), record["batch"]))
    return keys


def test_two_processes_one_store_no_lost_or_duplicated_batches(tmp_path):
    store_dir = str(tmp_path / "contended")
    context = multiprocessing.get_context("fork")
    out_queue = context.Queue()
    workers = [
        context.Process(target=_characterise, args=(store_dir, snrs, out_queue))
        for snrs in (SNRS_A, SNRS_B)
    ]
    for worker in workers:
        worker.start()
    results = dict(out_queue.get(timeout=120) for _ in workers)
    for worker in workers:
        worker.join(timeout=30)
        assert worker.exitcode == 0

    # Same rows as undisturbed serial runs — the concurrent writer can
    # only ever have handed a process batches it would have simulated
    # identically itself.
    assert results[SNRS_A[0]] == experiment(SNRS_A).run(SweepExecutor("serial"))
    assert results[SNRS_B[0]] == experiment(SNRS_B).run(SweepExecutor("serial"))

    # One namespace, and the file holds every needed batch exactly once:
    # nothing lost, nothing duplicated by the append race.
    store = ResultStore(store_dir)
    assert len(store.digests()) == 1
    path = store.view(store.digests()[0]).path
    file_keys = _store_file_keys(path)
    assert len(file_keys) == len(set(file_keys)), "duplicated batch records"

    expected = set()
    for snrs, rows in ((SNRS_A, results[SNRS_A[0]]),
                       (SNRS_B, results[SNRS_B[0]])):
        by_snr = {row["snr_db"]: row for row in rows}
        for point in experiment(snrs).spec():
            spawn_key = tuple(int(w) for w in point.seed_sequence.spawn_key)
            batches = by_snr[point.coordinates["snr_db"]]["batches"]
            expected.update((spawn_key, index) for index in range(batches))
    assert set(file_keys) == expected


def test_warm_reader_sees_batches_appended_by_another_process(tmp_path):
    store_dir = str(tmp_path / "shared")
    context = multiprocessing.get_context("fork")
    out_queue = context.Queue()
    # A fresh view is opened (and its index loaded) *before* the other
    # process writes; the refresh-on-miss path must still find the rows.
    store = ResultStore(store_dir)
    cold_view = store.view(experiment(SNRS_A).store_digest())
    assert len(cold_view) == 0

    writer = context.Process(target=_characterise,
                             args=(store_dir, SNRS_A, out_queue))
    writer.start()
    rows = dict([out_queue.get(timeout=120)])[SNRS_A[0]]
    writer.join(timeout=30)

    # The stale view's lookup misses trigger a tail re-scan, so the other
    # process's appends are visible without reopening.
    point = list(experiment(SNRS_A).spec())[0]
    spawn_key = tuple(int(w) for w in point.seed_sequence.spawn_key)
    assert cold_view.get(spawn_key, 0, 4) is not None
    assert cold_view.hits == 1

    warm = experiment(SNRS_A, store)
    assert warm.run(SweepExecutor("serial")) == rows
    assert warm.last_store_stats["misses"] == 0
