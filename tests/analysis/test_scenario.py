"""Tests for the declarative Scenario/Experiment front door.

Three contracts are under test:

* :class:`Scenario` is validated at construction, round-trips through
  ``to_dict``/``from_dict`` and has a canonical, field-sensitive
  ``content_hash`` (the store namespace anchor).
* :class:`Experiment` subsumes the fixed-depth executor path and the
  adaptive scheduler path behind one ``run()``, producing exactly the
  rows those layers produce.
* The legacy entry points (``sweep``, ``cross_sweep`` and the params-dict
  ``run_link_ber_point``) are deprecated shims that still produce
  bit-for-bit identical rows to the Experiment path.
"""

import numpy as np
import pytest

from repro.analysis.adaptive import AdaptiveScheduler, StopRule, run_link_ber_batch
from repro.analysis.scenario import Experiment, Scenario, run_scenario_point
from repro.analysis.store import ResultStore
from repro.analysis.sweep import (
    SweepExecutor,
    SweepSpec,
    cross_sweep,
    run_link_ber_point,
    sweep,
)

#: A miniature link workload shared by the equivalence tests.
SMALL = {"decoder": "bcjr", "packet_bits": 600}


def small_sweep(snrs=(5.0, 8.0), constants=(), seed=23):
    return SweepSpec({"rate_mbps": [24], "snr_db": list(snrs)},
                     constants=dict(constants), seed=seed)


class TestScenarioValidation:
    def test_defaults_are_the_figure6_link(self):
        scenario = Scenario()
        assert scenario.decoder == "bcjr"
        assert scenario.packet_bits == 1704
        assert scenario.fading is None and scenario.llr_format is None
        assert scenario.demapper_scaled is False

    def test_rejects_bad_rate(self):
        for bad in (0, -6, "24", True):
            with pytest.raises(ValueError, match="rate_mbps"):
                Scenario(rate_mbps=bad)

    def test_rejects_bad_snr(self):
        with pytest.raises(ValueError, match="snr_db"):
            Scenario(snr_db="6 dB")

    def test_rejects_bad_packet_bits(self):
        for bad in (0, -1, 600.5, "600"):
            with pytest.raises(ValueError, match="packet_bits"):
                Scenario(packet_bits=bad)

    def test_packet_bits_normalised_to_int(self):
        assert Scenario(packet_bits=np.int64(600)).packet_bits == 600
        assert isinstance(Scenario(packet_bits=600.0).packet_bits, int)

    def test_rejects_float_and_bool_llr_format(self):
        for bad in (6.0, np.float64(6.0), True, False):
            with pytest.raises(ValueError, match="llr_format"):
                Scenario(llr_format=bad)
        with pytest.raises(ValueError, match="llr_format"):
            Scenario(llr_format=0)

    def test_rejects_unknown_fading_keys(self):
        with pytest.raises(ValueError, match="doppler_mhz"):
            Scenario(fading={"doppler_mhz": 20.0})
        with pytest.raises(ValueError, match="fading"):
            Scenario(fading=-3.0)
        with pytest.raises(ValueError, match="fading"):
            Scenario(fading="rayleigh")

    def test_demapper_scaled_normalised_to_bool(self):
        assert Scenario(demapper_scaled=1).demapper_scaled is True
        assert Scenario(demapper_scaled=0).demapper_scaled is False


class TestScenarioSerialisation:
    def scenario(self):
        return Scenario(rate_mbps=24, snr_db=6.0, decoder="sova",
                        packet_bits=600, fading={"doppler_hz": 20.0},
                        llr_format=4, demapper_scaled=True)

    def test_to_dict_from_dict_round_trip(self):
        scenario = self.scenario()
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="snr"):
            Scenario.from_dict({"snr": 6.0})

    def test_content_hash_is_stable_and_field_sensitive(self):
        scenario = self.scenario()
        assert scenario.content_hash() == self.scenario().content_hash()
        assert scenario.content_hash() == Scenario.from_dict(
            scenario.to_dict()).content_hash()
        changed = [
            scenario.replace(snr_db=7.0),
            scenario.replace(decoder="bcjr"),
            scenario.replace(packet_bits=1704),
            scenario.replace(fading=None),
            scenario.replace(llr_format=None),
            scenario.replace(demapper_scaled=False),
        ]
        hashes = {c.content_hash() for c in changed} | {scenario.content_hash()}
        assert len(hashes) == len(changed) + 1

    def test_value_types_are_part_of_the_identity(self):
        # Mirrors the sweep layer's seed tokens: 24 and 24.0 are distinct.
        assert Scenario(rate_mbps=24).content_hash() \
            != Scenario(rate_mbps=24.0).content_hash()

    def test_object_valued_fields_are_not_declarative(self):
        def gain(_index):
            return 1.0

        faded = Scenario(fading=gain)
        assert not faded.is_declarative
        with pytest.raises(ValueError, match="fading"):
            faded.to_dict()
        with pytest.raises(ValueError, match="fading"):
            faded.content_hash()

    def test_params_omits_unset_fields(self):
        assert Scenario(decoder="bcjr", packet_bits=600).params() == {
            "decoder": "bcjr", "packet_bits": 600,
        }
        assert Scenario(rate_mbps=24, snr_db=6.0, decoder=None,
                        packet_bits=None).params() == {
            "rate_mbps": 24, "snr_db": 6.0,
        }
        assert Scenario(demapper_scaled=True).params()["demapper_scaled"] is True

    def test_scenarios_are_hashable_even_with_mapping_fields(self):
        mapped = Scenario(fading={"doppler_hz": 20.0},
                          llr_format={"total_bits": 4, "max_abs": 8.0})
        same = Scenario(fading={"doppler_hz": 20.0},
                        llr_format={"max_abs": 8.0, "total_bits": 4})
        assert hash(mapped) == hash(same) and mapped == same
        assert len({mapped, same, Scenario()}) == 2  # usable as set members

    def test_from_params_picks_link_fields_and_ignores_workload_knobs(self):
        params = {"rate_mbps": 24, "snr_db": 5.0, "decoder": "bcjr",
                  "packet_bits": 600, "num_packets": 4, "batch_size": 4,
                  "stop": None, "window": 32}
        scenario = Scenario.from_params(params)
        assert scenario == Scenario(rate_mbps=24, snr_db=5.0,
                                    decoder="bcjr", packet_bits=600)


class TestExperimentValidation:
    def test_sweep_is_required(self):
        with pytest.raises(ValueError, match="SweepSpec"):
            Experiment(scenario=Scenario())

    def test_scenario_type_is_checked(self):
        with pytest.raises(TypeError, match="Scenario"):
            Experiment(scenario={"decoder": "bcjr"}, sweep=small_sweep())

    def test_stop_constant_is_rejected(self):
        spec = small_sweep(constants={"stop": StopRule(max_packets=8)})
        with pytest.raises(ValueError, match="Experiment-level"):
            Experiment(scenario=Scenario(), sweep=spec)

    def test_adaptive_knobs_need_a_stop_rule(self):
        with pytest.raises(ValueError, match="budget"):
            Experiment(scenario=Scenario(), sweep=small_sweep(), budget=64)
        with pytest.raises(ValueError, match="batch_packets"):
            Experiment(scenario=Scenario(), sweep=small_sweep(), batch_packets=8)

    def test_store_needs_scenario_and_stop(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="Scenario"):
            Experiment(sweep=small_sweep(), stop=StopRule(max_packets=8),
                       store=store)
        with pytest.raises(ValueError, match="stop"):
            Experiment(scenario=Scenario(), sweep=small_sweep(), store=store)

    def test_scenario_axis_collision_names_the_parameter(self):
        experiment = Experiment(
            scenario=Scenario(snr_db=6.0, **SMALL),
            sweep=small_sweep(),
        )
        with pytest.raises(ValueError, match="snr_db"):
            experiment.spec()

    def test_scenario_constant_collision_names_the_parameter(self):
        experiment = Experiment(
            scenario=Scenario(**SMALL),
            sweep=small_sweep(constants={"packet_bits": 1704}),
        )
        with pytest.raises(ValueError, match="packet_bits"):
            experiment.spec()

    def test_spec_merges_scenario_params_into_constants(self):
        experiment = Experiment(
            scenario=Scenario(**SMALL),
            sweep=small_sweep(constants={"num_packets": 4}),
        )
        spec = experiment.spec()
        assert spec.constants == {"decoder": "bcjr", "packet_bits": 600,
                                  "num_packets": 4}
        assert spec.seed_entropy == small_sweep().seed_entropy


class TestExperimentRuns:
    def constants(self, **extra):
        constants = {"num_packets": 4, "batch_size": 4}
        constants.update(extra)
        return constants

    def test_fixed_depth_rows_match_the_executor_path(self):
        experiment = Experiment(
            scenario=Scenario(**SMALL),
            sweep=small_sweep(constants=self.constants()),
        )
        rows = experiment.run(SweepExecutor("serial"))
        merged = SweepSpec(
            {"rate_mbps": [24], "snr_db": [5.0, 8.0]},
            constants=dict(SMALL, **self.constants()), seed=23,
        )
        reference = SweepExecutor("serial").run(merged, run_scenario_point)
        assert rows == reference
        assert rows[0]["num_bits"] == 4 * 600

    def test_adaptive_rows_match_the_scheduler_path(self):
        stop = StopRule(rel_half_width=0.3, min_errors=20, max_packets=16)
        experiment = Experiment(
            scenario=Scenario(**SMALL),
            sweep=small_sweep(constants={"batch_size": 4}),
            stop=stop,
            batch_packets=4,
        )
        rows = experiment.run(SweepExecutor("serial"))
        merged = SweepSpec(
            {"rate_mbps": [24], "snr_db": [5.0, 8.0]},
            constants=dict(SMALL, batch_size=4), seed=23,
        )
        reference = AdaptiveScheduler(
            stop=stop, batch_packets=4, executor=SweepExecutor("serial"),
        ).run(merged, run_link_ber_batch)
        assert rows == reference
        assert all(row["stop_reason"] is not None for row in rows)

    def test_custom_runner_is_dispatched(self):
        experiment = Experiment(
            sweep=small_sweep(), runner=_echo_params_runner,
        )
        rows = experiment.run(SweepExecutor("serial"))
        assert [row["echo_snr"] for row in rows] == [5.0, 8.0]

    def test_batch_packets_resolution_mirrors_the_legacy_defaults(self):
        spec = small_sweep(constants={"batch_size": 8})
        stop = StopRule(max_packets=8)
        assert Experiment(scenario=Scenario(), sweep=spec,
                          stop=stop).resolved_batch_packets() == 8
        spec = small_sweep(constants={"batch_size": 8, "batch_packets": 2})
        assert Experiment(scenario=Scenario(), sweep=spec,
                          stop=stop).resolved_batch_packets() == 2
        assert Experiment(scenario=Scenario(), sweep=spec, stop=stop,
                          batch_packets=16).resolved_batch_packets() == 16

    def test_os_entropy_sweeps_keep_one_spec_and_digest(self, tmp_path):
        # SweepSpec(seed=None) draws fresh OS entropy at construction; the
        # experiment must capture that entropy once, so repeated spec() /
        # store_digest() calls describe the grid actually executed and a
        # warm re-run of the same Experiment object resumes.
        experiment = Experiment(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0]},
                            constants={"batch_size": 4}, seed=None),
            stop=StopRule(max_packets=8), batch_packets=4,
            store=ResultStore(tmp_path),
        )
        assert experiment.store_digest() == experiment.store_digest()
        assert experiment.spec().seed_entropy == experiment.spec().seed_entropy
        cold = experiment.run(SweepExecutor("serial"))
        assert experiment.last_store_stats["misses"] > 0
        warm = experiment.run(SweepExecutor("serial"))
        assert warm == cold
        assert experiment.last_store_stats["misses"] == 0

    def test_store_digest_is_independent_of_stop_and_budget(self, tmp_path):
        def build(stop, budget):
            return Experiment(
                scenario=Scenario(**SMALL),
                sweep=small_sweep(constants={"batch_size": 4}),
                stop=stop, budget=budget, batch_packets=4,
                store=ResultStore(tmp_path),
            )

        loose = build(StopRule(rel_half_width=0.5, max_packets=8), None)
        tight = build(StopRule(rel_half_width=0.1, max_packets=64), 512)
        assert loose.store_digest() == tight.store_digest()

    def test_store_digest_tracks_what_batches_depend_on(self, tmp_path):
        def build(scenario=Scenario(**SMALL), seed=23, batch_packets=4,
                  constants={"batch_size": 4}):
            return Experiment(
                scenario=scenario,
                sweep=small_sweep(constants=constants, seed=seed),
                stop=StopRule(max_packets=8), batch_packets=batch_packets,
                store=ResultStore(tmp_path),
            )

        base = build().store_digest()
        assert build(scenario=Scenario(decoder="sova", packet_bits=600)
                     ).store_digest() != base
        assert build(seed=24).store_digest() != base
        assert build(batch_packets=8).store_digest() != base
        assert build(constants={"batch_size": 2}).store_digest() != base
        # ...but not on the axis values: extending an axis reuses the
        # namespace (per-point spawn keys already separate the points).
        extended = Experiment(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 6.5, 8.0]},
                            constants={"batch_size": 4}, seed=23),
            stop=StopRule(max_packets=8), batch_packets=4,
            store=ResultStore(tmp_path),
        )
        assert extended.store_digest() == base


def _echo_params_runner(point):
    return {"echo_snr": point["snr_db"]}


class TestDeprecatedShims:
    """The legacy entry points warn but still match the Experiment path."""

    def test_sweep_warns_and_matches_experiment(self):
        values = [1, 2, 3]
        with pytest.warns(DeprecationWarning, match="sweep"):
            legacy = sweep(values, _double, label="n")
        fresh = Experiment(
            sweep=SweepSpec({"n": values}), runner=_double_point,
        ).run(SweepExecutor("serial"))
        assert legacy == fresh

    def test_cross_sweep_warns_and_matches_experiment(self):
        with pytest.warns(DeprecationWarning, match="cross_sweep"):
            legacy = cross_sweep([1, 2], [10, 20], _add, labels=("a", "b"))
        fresh = Experiment(
            sweep=SweepSpec({"a": [1, 2], "b": [10, 20]}), runner=_add_point,
        ).run(SweepExecutor("serial"))
        assert legacy == fresh

    def test_run_link_ber_point_warns_and_matches_fixed_experiment(self):
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [5.0, 8.0]},
            constants=dict(SMALL, num_packets=4, batch_size=4), seed=23,
        )
        with pytest.warns(DeprecationWarning, match="run_link_ber_point"):
            legacy = SweepExecutor("serial").run(spec, run_link_ber_point)
        fresh = Experiment(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 8.0]},
                            constants={"num_packets": 4, "batch_size": 4},
                            seed=23),
        ).run(SweepExecutor("serial"))
        assert legacy == fresh  # bit for bit, keys included

    def test_run_link_ber_point_adaptive_matches_adaptive_experiment(self):
        stop = StopRule(rel_half_width=0.3, min_errors=20, max_packets=16)
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [5.0, 8.0]},
            constants=dict(SMALL, batch_packets=4, stop=stop), seed=23,
        )
        with pytest.warns(DeprecationWarning, match="run_link_ber_point"):
            legacy = SweepExecutor("serial").run(spec, run_link_ber_point)
        fresh = Experiment(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 8.0]}, seed=23),
            stop=stop,
            batch_packets=4,
        ).run(SweepExecutor("serial"))
        # Same physics, two vocabularies: the legacy point-runner reports
        # fixed-mode names, the Experiment path the scheduler's.
        for old, new in zip(legacy, fresh):
            assert old["bit_errors"] == new["errors"]
            assert old["num_bits"] == new["trials"]
            assert old["ber"] == new["ber"]
            assert old["ber_low"] == new["ber_low"]
            assert old["ber_high"] == new["ber_high"]
            assert old["packets"] == new["packets"]
            assert old["batches"] == new["batches"]
            assert old["stop_reason"] == new["stop_reason"]
            assert old["packet_error_rate"] == (
                new["packet_errors"] / new["packets"])

    def test_run_scenario_point_itself_does_not_warn(self):
        import warnings

        spec = SweepSpec({"rate_mbps": [24], "snr_db": [5.0]},
                         constants=dict(SMALL, num_packets=4, batch_size=4),
                         seed=23)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SweepExecutor("serial").run(spec, run_scenario_point)


def _double(n):
    return {"doubled": 2 * n}


def _double_point(point):
    return _double(point["n"])


def _add(a, b):
    return {"sum": a + b}


def _add_point(point):
    return _add(point["a"], point["b"])


class TestDeprecationAttribution:
    """Shim warnings must point at the caller and name the replacement."""

    def caught(self, invoke):
        import warnings as warnings_module

        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            invoke()
        (warning,) = [w for w in caught
                      if issubclass(w.category, DeprecationWarning)]
        return warning

    def test_sweep_warning_is_attributed_to_this_file(self):
        warning = self.caught(lambda: sweep([1], _double, label="n"))
        assert warning.filename == __file__
        assert "Experiment" in str(warning.message)

    def test_cross_sweep_warning_is_attributed_to_this_file(self):
        warning = self.caught(
            lambda: cross_sweep([1], [2], _add, labels=("a", "b")))
        assert warning.filename == __file__
        assert "Experiment" in str(warning.message)

    def test_run_link_ber_point_warning_names_the_replacement(self):
        spec = SweepSpec(
            {"rate_mbps": [24], "snr_db": [5.0]},
            constants=dict(SMALL, num_packets=4, batch_size=4), seed=23,
        )
        warning = self.caught(lambda: run_link_ber_point(list(spec)[0]))
        assert warning.filename == __file__
        assert "Scenario" in str(warning.message)
        assert "Experiment" in str(warning.message)


class TestBatchGranularHooks:
    """Experiment.trajectory()/store_view(): the service's dispatch hooks."""

    def experiment(self, **overrides):
        kwargs = dict(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 8.0]},
                            constants={"batch_size": 4}, seed=23),
            stop=StopRule(rel_half_width=0.3, min_errors=20, max_packets=16),
            batch_packets=4,
        )
        kwargs.update(overrides)
        return Experiment(**kwargs)

    def test_trajectory_requires_the_adaptive_path(self):
        fixed = Experiment(
            scenario=Scenario(**SMALL),
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [5.0]},
                            constants={"num_packets": 4}, seed=23),
        )
        with pytest.raises(ValueError, match="adaptive"):
            fixed.trajectory()

    def test_store_view_is_none_without_a_store(self):
        assert self.experiment().store_view() is None

    def test_hand_driven_trajectory_reproduces_run(self):
        experiment = self.experiment()
        trajectory = experiment.trajectory()
        runner = experiment.resolved_runner()
        while True:
            batches = trajectory.start_round()
            if not batches:
                break
            for batch in batches:
                trajectory.consume(batch, dict(runner(batch)))
        assert trajectory.rows() == experiment.run(SweepExecutor("serial"))

    def test_run_flushes_the_store_stats_sidecar(self, tmp_path):
        from repro.analysis.store import ResultStore, read_sidecar_stats

        store = ResultStore(tmp_path)
        experiment = self.experiment(store=store)
        experiment.run(SweepExecutor("serial"))
        stats = read_sidecar_stats(store.view(experiment.store_digest()).path)
        assert stats["misses"] == experiment.last_store_stats["misses"]
        assert stats["uses"] == 1
