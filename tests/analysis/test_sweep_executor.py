"""Tests for the sweep execution subsystem.

The contract under test is the one the module docstring states: rows
depend only on the :class:`SweepSpec`, never on the executor.  Backend,
worker count, chunk size and dispatch order must not change a single bit
of the output, and per-point failures must surface the failing operating
point.  Multi-worker tests are marked ``slow`` so the default
``-m "not slow"`` cycle stays fast; the single-worker process-backend
smoke test stays in the fast path for pickling coverage.
"""

import os
import time

import pytest

from repro.analysis.sweep import (
    SweepError,
    SweepExecutor,
    SweepSpec,
    executor_from_env,
    point_spawn_key,
    rows_to_json,
    run_link_ber_point,
)

#: A miniature Figure-6-style workload: QAM16 1/2 BER across SNRs.  Small
#: packets keep the fast-path tests quick; the slow acceptance test below
#: uses the paper's real 1704-bit packets.
SMALL_LINK_CONSTANTS = {
    "decoder": "bcjr",
    "packet_bits": 600,
    "num_packets": 4,
    "batch_size": 4,
}


def small_link_spec(snrs=(5.0, 6.5, 8.0), seed=23):
    return SweepSpec(
        {"rate_mbps": [24], "snr_db": list(snrs)},
        constants=SMALL_LINK_CONSTANTS,
        seed=seed,
    )


def echo_seed(point):
    """Picklable runner returning only the point's derived seed."""
    return {"seed": point.seed}


def fail_at_seven(point):
    """Picklable runner that fails on the 7 dB operating point."""
    if point["snr_db"] == 7.0:
        raise ValueError("demapper fell over")
    return {"ok": True}


class TestSweepSpec:
    def test_grid_is_row_major_over_axes(self):
        spec = SweepSpec({"a": [1, 2], "b": ["x", "y"]})
        coords = [point.coordinates for point in spec]
        assert coords == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert [point.index for point in spec] == [0, 1, 2, 3]
        assert len(spec) == 4

    def test_constants_merge_into_params_but_not_coordinates(self):
        spec = SweepSpec({"snr_db": [5.0]}, constants={"packet_bits": 600})
        (point,) = spec.points()
        assert point.params == {"packet_bits": 600, "snr_db": 5.0}
        assert point.coordinates == {"snr_db": 5.0}
        assert "packet_bits" not in point.label()
        assert "snr_db=5.0" in point.label()

    def test_axis_constant_overlap_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec({"snr_db": [5.0]}, constants={"snr_db": 6.0})

    def test_empty_axis_yields_no_points(self):
        spec = SweepSpec({"snr_db": []})
        assert len(spec) == 0
        assert spec.points() == []
        assert SweepExecutor().run(spec, echo_seed) == []

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec({})

    def test_invalid_executor_arguments_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor("threads")
        with pytest.raises(ValueError):
            SweepExecutor(max_workers=0)
        with pytest.raises(ValueError):
            SweepExecutor(chunk_size=0)
        with pytest.raises(ValueError):
            SweepExecutor().run(SweepSpec({"a": [1]}), echo_seed, on_error="abort")


class TestSeedDerivation:
    def test_two_points_never_share_a_stream(self):
        spec = SweepSpec({"rate_mbps": [6, 12, 24], "snr_db": [4.0, 6.0, 8.0]})
        points = spec.points()
        seeds = {point.seed for point in points}
        keys = {point_spawn_key(point.coordinates) for point in points}
        assert len(seeds) == len(points)
        assert len(keys) == len(points)

    def test_seeds_stable_across_point_ordering(self):
        ascending = SweepSpec({"snr_db": [4.0, 6.0, 8.0]}, seed=7)
        descending = SweepSpec({"snr_db": [8.0, 6.0, 4.0]}, seed=7)
        by_snr = {p.coordinates["snr_db"]: p.seed for p in ascending}
        for point in descending:
            assert point.seed == by_snr[point.coordinates["snr_db"]]

    def test_seeds_stable_across_chunk_sizes_and_worker_counts(self):
        spec = SweepSpec({"snr_db": [4.0, 5.0, 6.0, 7.0, 8.0]}, seed=11)
        reference = SweepExecutor("serial").run(spec, echo_seed)
        for chunk_size in (1, 2, 5):
            executor = SweepExecutor("process", max_workers=1,
                                     chunk_size=chunk_size)
            assert executor.run(spec, echo_seed) == reference

    def test_constants_do_not_move_points_onto_new_streams(self):
        small = SweepSpec({"snr_db": [5.0]}, constants={"num_packets": 4}, seed=3)
        large = SweepSpec({"snr_db": [5.0]}, constants={"num_packets": 400}, seed=3)
        assert small.points()[0].seed == large.points()[0].seed

    def test_master_seed_changes_every_stream(self):
        seeds_a = [p.seed for p in SweepSpec({"snr_db": [4.0, 6.0]}, seed=1)]
        seeds_b = [p.seed for p in SweepSpec({"snr_db": [4.0, 6.0]}, seed=2)]
        assert not set(seeds_a) & set(seeds_b)

    def test_distinct_types_get_distinct_keys(self):
        assert point_spawn_key({"v": 1}) != point_spawn_key({"v": 1.0})
        assert point_spawn_key({"v": 1}) != point_spawn_key({"v": "1"})
        assert point_spawn_key({"v": True}) != point_spawn_key({"v": 1})


class TestExecution:
    def test_serial_rows_are_params_plus_results(self):
        spec = small_link_spec(snrs=(5.0,))
        (row,) = SweepExecutor("serial").run(spec, run_link_ber_point)
        assert row["rate_mbps"] == 24 and row["snr_db"] == 5.0
        assert row["packet_bits"] == 600
        assert row["num_bits"] == 4 * 600
        assert 0.0 <= row["ber"] <= 1.0

    def test_single_worker_process_backend_matches_serial(self):
        spec = small_link_spec(snrs=(5.0, 8.0))
        serial = SweepExecutor("serial").run(spec, run_link_ber_point)
        process = SweepExecutor("process", max_workers=1).run(
            spec, run_link_ber_point
        )
        assert process == serial

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_multi_worker_rows_identical_to_serial(self, workers):
        spec = small_link_spec()
        serial = SweepExecutor("serial").run(spec, run_link_ber_point)
        parallel = SweepExecutor("process", max_workers=workers,
                                 chunk_size=1).run(spec, run_link_ber_point)
        assert parallel == serial

    def test_session_reuses_one_pool_across_runs(self):
        # Inside session() the pool is created once and reused; rows are
        # identical to pool-per-run execution (the pool is pure transport).
        spec = small_link_spec(snrs=(5.0, 8.0))
        executor = SweepExecutor("process", max_workers=1)
        fresh = executor.run(spec, run_link_ber_point)
        with executor.session():
            assert executor._pool is not None
            pool = executor._pool
            first = executor.run(spec, run_link_ber_point)
            second = executor.run(spec, run_link_ber_point)
            assert executor._pool is pool  # still the same pool
            with executor.session():  # re-entrant: nested reuses the outer
                assert executor._pool is pool
        assert executor._pool is None  # torn down on exit
        assert first == fresh
        assert second == fresh

    def test_session_is_a_noop_for_serial(self):
        executor = SweepExecutor("serial")
        with executor.session():
            assert executor._pool is None
            rows = executor.run(small_link_spec(snrs=(5.0,)), run_link_ber_point)
        assert len(rows) == 1

    def test_rows_to_json_round_trips(self):
        import json

        spec = small_link_spec(snrs=(5.0, 8.0))
        rows = SweepExecutor("serial").run(spec, run_link_ber_point)
        parsed = [json.loads(line) for line in rows_to_json(rows).splitlines()]
        assert parsed == rows

    def test_rows_to_json_round_trips_numpy_extras(self):
        import json

        import numpy as np

        rows = [{
            "count": np.int32(7),
            "ratio": np.float64(0.125),
            "curve": np.array([[1.0, 0.5], [0.25, 2.0 ** -40]]),
            "bins": np.arange(3, dtype=np.int64),
        }]
        (line,) = rows_to_json(rows).splitlines()
        parsed = json.loads(line)
        # numpy scalars become exact Python numbers, arrays nested lists.
        assert parsed["count"] == 7 and isinstance(parsed["count"], int)
        assert parsed["ratio"] == 0.125
        assert parsed["curve"] == [[1.0, 0.5], [0.25, 2.0 ** -40]]
        assert parsed["bins"] == [0, 1, 2]

    def test_rows_to_json_names_the_offending_key(self):
        rows = [
            {"snr_db": 5.0, "ber": 1e-3},
            {"snr_db": 7.0, "measurement": object()},
        ]
        with pytest.raises(TypeError) as excinfo:
            rows_to_json(rows)
        message = str(excinfo.value)
        assert "'measurement'" in message
        assert "row 1" in message
        assert "object" in message

    def test_executor_from_env_selects_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert executor_from_env().backend == "serial"
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "")
        assert executor_from_env().backend == "serial"
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        assert executor_from_env().backend == "serial"
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", " 4 ")
        executor = executor_from_env()
        assert executor.backend == "process"
        assert executor.max_workers == 4

    @pytest.mark.parametrize("raw", ["nope", "0", "-2", "2.5", "four"])
    def test_executor_from_env_rejects_bad_worker_counts(self, monkeypatch, raw):
        # A typo'd or non-positive worker count must fail loudly, naming
        # the environment variable, not silently run serial or crash deep
        # inside the pool.
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", raw)
        with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS") as excinfo:
            executor_from_env()
        assert raw.strip() in str(excinfo.value)


class TestErrorSurfacing:
    def spec(self):
        return SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 7.0, 9.0]})

    def test_serial_raise_names_the_operating_point(self):
        with pytest.raises(SweepError) as excinfo:
            SweepExecutor("serial").run(self.spec(), fail_at_seven)
        message = str(excinfo.value)
        assert "snr_db=7.0" in message
        assert "rate_mbps=24" in message
        assert "demapper fell over" in message
        assert excinfo.value.point.coordinates["snr_db"] == 7.0

    def test_process_raise_names_the_operating_point(self):
        # The worker formats the failure before it crosses the process
        # boundary: the caller sees the operating point and the original
        # traceback text, not a bare pickled traceback.
        with pytest.raises(SweepError) as excinfo:
            SweepExecutor("process", max_workers=1).run(
                self.spec(), fail_at_seven
            )
        message = str(excinfo.value)
        assert "snr_db=7.0" in message
        assert "demapper fell over" in message
        assert "ValueError" in message

    def test_capture_keeps_the_healthy_points(self):
        rows = SweepExecutor("serial").run(self.spec(), fail_at_seven,
                                           on_error="capture")
        assert [row.get("ok") for row in rows] == [True, None, True]
        failed = rows[1]
        assert failed["snr_db"] == 7.0
        assert failed["error"] == "ValueError: demapper fell over"


#: The slow acceptance workload: a real Figure-6 SNR sweep (QAM16 1/2,
#: 1704-bit packets, BCJR) across eight SNR points.
FIG6_SWEEP_CONSTANTS = {
    "decoder": "bcjr",
    "packet_bits": 1704,
    "num_packets": 32,
    "batch_size": 32,
}


@pytest.mark.slow
def test_four_worker_fig6_sweep_matches_serial_and_halves_wall_clock():
    """Acceptance: 4-worker Figure-6 sweep is bit-for-bit serial, and >=2x
    faster wherever the machine actually has more than one core."""
    spec = SweepSpec(
        {"rate_mbps": [24], "snr_db": [4.0, 4.75, 5.5, 6.25, 7.0, 7.75, 8.5, 9.0]},
        constants=FIG6_SWEEP_CONSTANTS,
        seed=23,
    )
    start = time.perf_counter()
    serial = SweepExecutor("serial").run(spec, run_link_ber_point)
    serial_elapsed = time.perf_counter() - start

    executor = SweepExecutor("process", max_workers=4, chunk_size=1)
    start = time.perf_counter()
    parallel = executor.run(spec, run_link_ber_point)
    parallel_elapsed = time.perf_counter() - start

    assert parallel == serial  # bit-for-bit, element-for-element

    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            "only %d CPU visible: wall-clock speedup is not physically "
            "possible here (rows were still verified bit-for-bit)" % cpus
        )
    assert parallel_elapsed <= 0.5 * serial_elapsed, (
        "4-worker sweep took %.2fs vs %.2fs serial"
        % (parallel_elapsed, serial_elapsed)
    )
