"""Tests for the `repro-store` CLI, the truncation warning and the
usage-stats sidecar."""

import io
import json
import logging
import os
import time

import pytest

import repro.analysis.store as store_module
from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.store import (
    STATS_SUFFIX,
    ResultStore,
    main,
    read_sidecar_stats,
)
from repro.analysis.sweep import SweepExecutor, SweepSpec

STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def run_experiment(store, packet_bits=600):
    experiment = Experiment(
        scenario=Scenario(decoder="bcjr", packet_bits=packet_bits),
        sweep=SweepSpec({"rate_mbps": [24], "snr_db": [4.0, 6.0]},
                        constants={"batch_size": 4}, seed=23),
        stop=STOP,
        batch_packets=4,
        store=store,
    )
    experiment.run(SweepExecutor("serial"))
    return experiment


def cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestCli:
    def test_ls_lists_every_namespace_with_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store, packet_bits=600)
        run_experiment(store, packet_bits=504)
        code, text = cli("ls", str(tmp_path))
        assert code == 0
        assert "2 namespace(s)" in text
        for digest in store.digests():
            assert digest[:16] in text
        # Both namespaces report 2 points and a non-zero batch count.
        lines = [line for line in text.splitlines() if ".." in line]
        assert len(lines) == 2

    def test_stats_reports_scenario_hash_and_lookups(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)                    # cold: misses flushed
        warm = run_experiment(store)             # warm: hits flushed
        code, text = cli("stats", str(tmp_path))
        assert code == 0
        assert warm.scenario.content_hash() in text
        assert "run_link_ber_batch" in text
        assert "over 2 run(s)" in text
        assert "%d hit(s)" % warm.last_store_stats["hits"] in text

    def test_stats_prefix_filters(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)
        digest = store.digests()[0]
        code, text = cli("stats", str(tmp_path), "--prefix", digest[:8])
        assert digest in text
        code, text = cli("stats", str(tmp_path), "--prefix", "ffff")
        assert "no namespaces match" in text

    def test_gc_requires_a_selector(self, tmp_path):
        code, text = cli("gc", str(tmp_path))
        assert code == 2
        assert "--days" in text

    def test_gc_by_prefix_removes_file_and_sidecar(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)
        digest = store.digests()[0]
        path = store.view(digest).path
        assert os.path.exists(path + STATS_SUFFIX)
        code, text = cli("gc", str(tmp_path), "--prefix", digest[:8])
        assert code == 0
        assert "removed %s" % digest in text
        assert store.digests() == []
        assert not os.path.exists(path + STATS_SUFFIX)

    def test_gc_dry_run_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)
        code, text = cli("gc", str(tmp_path), "--days", "0", "--dry-run")
        assert code == 0
        assert "would remove" in text
        assert len(store.digests()) == 1

    def test_gc_by_age_spares_recently_used_namespaces(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)  # last_used = now via the stats sidecar
        code, text = cli("gc", str(tmp_path), "--days", "1")
        assert "removed 0 namespace(s)" in text
        # Age the sidecar a week back; now it collects.
        digest = store.digests()[0]
        sidecar = store.view(digest).path + STATS_SUFFIX
        stats = json.load(open(sidecar))
        stats["last_used"] = time.time() - 7 * 86400
        json.dump(stats, open(sidecar, "w"))
        code, text = cli("gc", str(tmp_path), "--days", "1")
        assert "removed 1 namespace(s)" in text
        assert store.digests() == []

    def test_gc_by_scenario_hash_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        kept = run_experiment(store, packet_bits=600)
        doomed = run_experiment(store, packet_bits=504)
        target = doomed.scenario.content_hash()
        code, text = cli("gc", str(tmp_path), "--scenario", target[:12])
        assert code == 0
        assert "removed 1 namespace(s)" in text
        assert store.digests() == [kept.store_digest()]

    def _age(self, store, digest, days):
        """Back-date a namespace's usage sidecar by ``days``."""
        sidecar = store.view(digest).path + STATS_SUFFIX
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump({"last_used": time.time() - days * 86400, "uses": 1},
                      handle)

    def _store_bytes(self, store):
        return sum(os.path.getsize(store.view(digest).path)
                   for digest in store.digests())

    def test_gc_max_bytes_evicts_the_coldest_namespace_first(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_experiment(store, packet_bits=600).store_digest()
        warm = run_experiment(store, packet_bits=504).store_digest()
        self._age(store, cold, days=10)
        self._age(store, warm, days=1)
        # One byte over budget: exactly one namespace must go — the
        # least-recently-used one, not the biggest or the first listed.
        budget = self._store_bytes(store) - 1
        code, text = cli("gc", str(tmp_path), "--max-bytes", str(budget))
        assert code == 0
        assert "removed %s" % cold in text
        assert "removed 1 namespace(s)" in text
        assert store.digests() == [warm]

    def test_gc_max_bytes_zero_evicts_everything_lru_order(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_experiment(store, packet_bits=600).store_digest()
        warm = run_experiment(store, packet_bits=504).store_digest()
        self._age(store, cold, days=10)
        self._age(store, warm, days=1)
        code, text = cli("gc", str(tmp_path), "--max-bytes", "0")
        assert code == 0
        assert "removed 2 namespace(s)" in text
        assert text.index(cold) < text.index(warm)  # coldest first
        assert store.digests() == []

    def test_gc_max_bytes_within_budget_removes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)
        code, text = cli("gc", str(tmp_path), "--max-bytes",
                         str(self._store_bytes(store)))
        assert code == 0
        assert "removed 0 namespace(s), 0 bytes" in text
        assert len(store.digests()) == 1

    def test_gc_max_bytes_dry_run_previews_without_deleting(self, tmp_path):
        store = ResultStore(tmp_path)
        run_experiment(store)
        digest = store.digests()[0]
        size = self._store_bytes(store)
        code, text = cli("gc", str(tmp_path), "--max-bytes", "0",
                         "--dry-run")
        assert code == 0
        assert "would remove %s" % digest in text
        assert "would remove 1 namespace(s), %d bytes" % size in text
        assert store.digests() == [digest]

    def test_gc_max_bytes_composes_with_filters(self, tmp_path):
        # --scenario picks its victims first; the byte budget then prunes
        # the LRU tail of whatever survived the filters.
        store = ResultStore(tmp_path)
        cold = run_experiment(store, packet_bits=600).store_digest()
        warm = run_experiment(store, packet_bits=504).store_digest()
        doomed = run_experiment(store, packet_bits=1704)
        self._age(store, cold, days=10)
        self._age(store, warm, days=1)
        self._age(store, doomed.store_digest(), days=0)
        survivor_bytes = (self._store_bytes(store)
                          - os.path.getsize(
                              store.view(doomed.store_digest()).path))
        code, text = cli(
            "gc", str(tmp_path),
            "--scenario", doomed.scenario.content_hash()[:12],
            "--max-bytes", str(survivor_bytes - 1))
        assert code == 0
        assert "removed 2 namespace(s)" in text
        assert store.digests() == [warm]


class TestTruncationWarning:
    def corrupt(self, store, digest):
        view = store.view(digest)
        with open(view.path, "a", encoding="utf-8") as handle:
            handle.write('{"point": [9, 9, 9, 9], "batch": 0, "num\n')

    def test_unparseable_line_warns_once_with_namespace_and_line(
            self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        view = store.view("cafe")
        view.put((1, 2, 3, 4), 0, 8, {"errors": 1, "trials": 100})
        self.corrupt(store, "cafe")
        store_module._WARNED_TRUNCATED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.analysis.store"):
            fresh = store.view("cafe")
            assert fresh.get((1, 2, 3, 4), 0, 8) is not None
            assert fresh.get((9, 9, 9, 9), 0, 8) is None
        warnings = [record for record in caplog.records
                    if "unparseable" in record.message]
        assert len(warnings) == 1
        assert "cafe" in warnings[0].message
        assert "line 3" in warnings[0].message  # header, record, bad line

    def test_warning_is_one_time_per_namespace(self, tmp_path, caplog):
        store = ResultStore(tmp_path)
        view = store.view("beef")
        view.put((1, 2, 3, 4), 0, 8, {"errors": 1, "trials": 100})
        self.corrupt(store, "beef")
        store_module._WARNED_TRUNCATED.clear()
        with caplog.at_level(logging.WARNING, logger="repro.analysis.store"):
            store.view("beef").get((9, 9, 9, 9), 0, 8)
            store.view("beef").get((9, 9, 9, 9), 1, 8)
        warnings = [record for record in caplog.records
                    if "unparseable" in record.message]
        assert len(warnings) == 1

    def test_truncated_trailing_line_is_healed_by_the_next_put(self,
                                                               tmp_path):
        store = ResultStore(tmp_path)
        view = store.view("dead")
        view.put((1, 2, 3, 4), 0, 8, {"errors": 1, "trials": 100})
        with open(view.path, "a", encoding="utf-8") as handle:
            handle.write('{"point": [5, 6, 7, 8], "batch": 0, "num')  # no \n
        healer = store.view("dead")
        healer.put((5, 6, 7, 8), 1, 8, {"errors": 2, "trials": 100})
        # The healed file parses cleanly: the truncated line was
        # newline-terminated before the new record went out.
        fresh = store.view("dead")
        assert fresh.get((1, 2, 3, 4), 0, 8)["errors"] == 1
        assert fresh.get((5, 6, 7, 8), 1, 8)["errors"] == 2
        assert fresh.get((5, 6, 7, 8), 0, 8) is None  # the killed write


class TestStatsSidecar:
    def test_flush_stats_accumulates_across_runs(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_experiment(store)
        warm = run_experiment(store)
        stats = read_sidecar_stats(store.view(cold.store_digest()).path)
        assert stats["misses"] == cold.last_store_stats["misses"]
        assert stats["hits"] == warm.last_store_stats["hits"]
        assert stats["uses"] == 2
        assert stats["last_used"] == pytest.approx(time.time(), abs=60)

    def test_flush_stats_is_a_noop_without_lookups(self, tmp_path):
        view = ResultStore(tmp_path).view("abcd")
        assert view.flush_stats() is None
        assert not os.path.exists(view.path + STATS_SUFFIX)

    def test_corrupt_sidecar_is_treated_as_empty(self, tmp_path):
        view = ResultStore(tmp_path).view("abcd")
        view.put((1, 2, 3, 4), 0, 8, {"errors": 1, "trials": 100})
        with open(view.path + STATS_SUFFIX, "w", encoding="utf-8") as handle:
            handle.write("not json")
        assert read_sidecar_stats(view.path) == {}
        view.get((1, 2, 3, 4), 0, 8)
        assert view.flush_stats()["hits"] == 1
