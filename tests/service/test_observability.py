"""End-to-end telemetry tests: propagation, read-only tracing, metrics.

The tentpole contracts under test:

* one request produces **one connected span tree**, even when its
  batches run on process-fleet workers and remote HTTP agents;
* tracing is strictly read-only — rows are bit-for-bit identical
  traced vs untraced;
* ``broker.metrics()`` snapshots balance under concurrent load, and
  ``GET /v1/metrics?format=prometheus`` parses under the strict
  text-format validator while the JSON document keeps its shape.
"""

import io
import json
import threading
import time
import urllib.request

import pytest

from repro.analysis.adaptive import StopRule, run_link_ber_batch
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.obs import parse_exposition
from repro.obs import trace as obs_trace
from repro.service.api import Service, serve, stream_request
from repro.service.broker import CharacterisationBroker
from repro.service.fleet import WorkerFleet
from repro.service.requests import CharacterisationRequest
from repro.service.worker import WorkerAgent

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(snrs=(4.0, 6.0), **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


@pytest.fixture()
def traced(tmp_path):
    """Tracing into a scratch sink for the duration of one test."""
    sink = tmp_path / "traces"
    obs_trace.configure(sink, proc="svc")
    yield str(sink)
    obs_trace.disable()


def _serve_in_thread(service):
    server = serve(service, port=0, worker_ping_s=0.2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, "http://%s:%d" % (host, port)


def _request_traces(sink):
    """``(roots, nodes)`` of every trace rooted in a ``request`` span."""
    built = obs_trace.build_traces(obs_trace.load_spans(sink))
    return [(roots, nodes) for roots, nodes in built.values()
            if any(root.name == "request" for root in roots)]


def _assert_connected(roots, nodes):
    """Every span's parent was written; only the request span is a root."""
    assert len(roots) == 1 and roots[0].name == "request"
    span_ids = set(nodes)
    for node in nodes.values():
        parent = node.record.get("parent")
        if node is roots[0]:
            continue
        assert parent in span_ids, \
            "orphan span %r (parent %r never written)" % (node.name, parent)


class TestTracePropagation:
    def test_process_fleet_run_yields_one_connected_tree(self, tmp_path,
                                                         traced):
        # Tracing must be configured before the service starts: process
        # workers inherit the sink directory as a spawn argument.
        with Service(ResultStore(tmp_path / "store"), workers=2,
                     backend="process") as service:
            rows = service.characterise(request(), timeout=120)
        obs_trace.disable()
        assert rows == request().experiment().run(SweepExecutor("serial"))

        (tree,) = _request_traces(traced)
        roots, nodes = tree
        _assert_connected(roots, nodes)
        names = {node.name for node in nodes.values()}
        assert "batch" in names and "simulate" in names and "store" in names
        # The simulate spans were written by the worker *processes*.
        sim_procs = {node.record["proc"] for node in nodes.values()
                     if node.name == "simulate"}
        assert sim_procs and all(p.startswith("fleet-proc-")
                                 for p in sim_procs)
        # Kernel phase hooks nested stage spans under each simulate span.
        phase_names = names & {"link-simulate", "transmit", "channel",
                               "front-end", "decode"}
        assert phase_names, "no kernel phase spans in %r" % sorted(names)
        # Every batch span carries its source attribution.
        sources = {node.attrs.get("source") for node in nodes.values()
                   if node.name == "batch"}
        assert sources <= {"cached", "shared", "simulated", "coalesced",
                           "lease-parked"}
        assert "simulated" in sources
        assert roots[0].attrs.get("outcome") == "done"

    def test_remote_agent_spans_join_over_real_http(self, tmp_path, traced):
        gate = threading.Event()

        def parked(batch):
            gate.wait(30.0)
            return dict(run_link_ber_batch(batch))

        class _Scratch:
            label = staticmethod(lambda: "hold")
            num_packets = 0

        service = Service(ResultStore(tmp_path / "store"), workers=1,
                          poll_s=0.02).start()
        server, thread, base_url = _serve_in_thread(service)
        agent = WorkerAgent(base_url, name="hands", heartbeat_s=0.2)
        agent_thread = threading.Thread(
            target=agent.run, kwargs={"retries": 3, "backoff_s": 0.1},
            daemon=True)
        try:
            # Park the only local worker so every batch must travel
            # through the remote agent's ndjson channel.
            service.fleet.submit("hold", parked, _Scratch())
            deadline = time.time() + 30.0
            while len(service.fleet._inflight) != 1:
                assert time.time() < deadline
                time.sleep(0.02)
            agent_thread.start()
            while service.fleet.remote_handle("hands") is None:
                assert time.time() < deadline, "the agent never attached"
                time.sleep(0.02)
            rows = service.characterise(request(), timeout=120)
        finally:
            gate.set()
            service.stop()
            agent_thread.join(timeout=10)
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        obs_trace.disable()
        assert rows == request().experiment().run(SweepExecutor("serial"))
        assert agent.completed >= 1

        (tree,) = _request_traces(traced)
        roots, nodes = tree
        _assert_connected(roots, nodes)
        remote_sims = [node for node in nodes.values()
                       if node.name == "simulate"
                       and node.attrs.get("worker") == "hands"]
        assert remote_sims, "no simulate span from the remote agent"
        assert all(node.attrs.get("remote") for node in remote_sims)

    def test_client_header_threads_the_trace_id(self, tmp_path, traced):
        with Service(ResultStore(tmp_path / "store"), workers=2) as service:
            server, thread, base_url = _serve_in_thread(service)
            try:
                events = list(stream_request(base_url, request(),
                                             trace="cafe42:feed01"))
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)
        obs_trace.disable()
        assert events[0]["event"] == "accepted"
        # The accepted event echoes the trace id so the client can find
        # its waterfall.
        assert events[0]["trace"] == "cafe42"
        spans = obs_trace.load_spans(traced)
        roots = [s for s in spans if s["name"] == "request"]
        assert roots and all(s["trace"] == "cafe42" for s in roots)
        assert all(s["parent"] == "feed01" for s in roots)

    def test_tracing_is_read_only_rows_bit_for_bit(self, tmp_path, traced):
        with Service(ResultStore(tmp_path / "traced-store"),
                     workers=2) as service:
            traced_rows = service.characterise(request(), timeout=120)
        obs_trace.disable()
        with Service(ResultStore(tmp_path / "plain-store"),
                     workers=2) as service:
            plain_rows = service.characterise(request(), timeout=120)
        assert traced_rows == plain_rows
        assert traced_rows \
            == request().experiment().run(SweepExecutor("serial"))

    def test_untraced_service_writes_no_spans(self, tmp_path):
        assert obs_trace.sink_dir() is None
        with Service(ResultStore(tmp_path / "store"), workers=2) as service:
            ticket = service.submit(request())
            assert not ticket.span.enabled
            ticket.result(timeout=120)


class TestSummarizeCLI:
    def test_summarize_reconstructs_lifecycle_and_critical_path(
            self, tmp_path, traced):
        with Service(ResultStore(tmp_path / "store"), workers=2) as service:
            service.characterise(request(), timeout=120)
            # A second identical request exercises the cached source.
            service.characterise(request(), timeout=120)
        obs_trace.disable()

        out = io.StringIO()
        assert obs_trace.main(["summarize", traced], out=out) == 0
        text = out.getvalue()
        assert "by stage:" in text
        assert "batches by source:" in text
        assert "simulated" in text and "cached" in text
        assert "critical path:" in text

        out = io.StringIO()
        assert obs_trace.main(["ls", traced], out=out) == 0
        assert "request" in out.getvalue()


class TestMetricsConsistency:
    def test_snapshots_balance_under_concurrent_load(self, tmp_path):
        stop = threading.Event()
        failures = []

        def scrape(broker):
            while not stop.is_set():
                snapshot = broker.metrics()
                requests = snapshot["requests"]
                batches = snapshot["batches"]
                if requests["admitted"] != (requests["in_flight"]
                                            + requests["completed"]
                                            + requests["failed"]
                                            + requests["cancelled"]):
                    failures.append(("requests", requests))
                if batches["delivered"] > (batches["cached"]
                                           + batches["shared"]
                                           + batches["simulated"]
                                           + batches["leased"]):
                    failures.append(("batches", batches))

        with WorkerFleet(workers=2, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet)
            scraper = threading.Thread(target=scrape, args=(broker,),
                                       daemon=True)
            scraper.start()
            try:
                tickets = [broker.submit(request((4.0 + i, 6.0 + i)))
                           for i in range(4)]
                deadline = time.time() + 60.0
                while not all(t.done.is_set() for t in tickets):
                    assert time.time() < deadline
                    broker.pump(timeout=0.05)
                for ticket in tickets:
                    ticket.result()
            finally:
                stop.set()
                scraper.join(timeout=10)
            final = broker.metrics()
        assert not failures, failures[:3]
        assert final["requests"]["admitted"] == 4
        assert final["requests"]["completed"] == 4

    def test_metrics_extras_are_snapshotted_under_the_lock(self, tmp_path):
        with Service(ResultStore(tmp_path / "store"), workers=2) as service:
            service.characterise(request(), timeout=120)
            doc = service.metrics()
        # The Service-level extras keep their historical top-level keys.
        assert doc["store_root"] == service.store.root
        assert isinstance(doc["heartbeats"], dict)
        assert doc["requests"]["admitted"] == 1


class TestPrometheusEndpoint:
    def test_exposition_parses_and_json_keeps_its_shape(self, tmp_path):
        with Service(ResultStore(tmp_path / "store"), workers=2) as service:
            server, thread, base_url = _serve_in_thread(service)
            try:
                list(stream_request(base_url, request()))
                with urllib.request.urlopen(
                        base_url + "/v1/metrics", timeout=30) as response:
                    doc = json.loads(response.read())
                with urllib.request.urlopen(
                        base_url + "/v1/metrics?format=prometheus",
                        timeout=30) as response:
                    content_type = response.headers.get("Content-Type")
                    text = response.read().decode("utf-8")
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

        # JSON default: same document as before, keys append-only.
        for key in ("admission", "requests", "batches", "fleet", "stores",
                    "cluster", "store_root", "heartbeats"):
            assert key in doc

        assert content_type.startswith("text/plain")
        parsed = parse_exposition(text)
        for family in ("repro_requests_total", "repro_batches_total",
                       "repro_batches_in_flight", "repro_stage_seconds",
                       "repro_lease_events_total",
                       "repro_worker_heartbeat_age_seconds",
                       "repro_store_seconds"):
            assert family in parsed, "missing family %s" % family
        states = {labels.get("state")
                  for _, labels, _ in parsed["repro_requests_total"]["samples"]}
        assert "completed" in states
        sources = {labels.get("source")
                   for _, labels, _ in parsed["repro_batches_total"]["samples"]}
        assert "simulated" in sources
        stages = {labels.get("stage")
                  for name, labels, _ in
                  parsed["repro_stage_seconds"]["samples"]
                  if name == "repro_stage_seconds_bucket"}
        assert {"simulate", "store_put", "deliver"} <= stages
        ages = parsed["repro_worker_heartbeat_age_seconds"]["samples"]
        assert len(ages) == 2  # one gauge per fleet worker
