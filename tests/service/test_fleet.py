"""Tests for the long-lived worker fleet.

Covers both backends: result parity with an in-process run of the same
batches (determinism is carried entirely by the batch's derived seed),
priority ordering, error capture in the executor's vocabulary,
heartbeats, and — for the process backend — retry after a worker dies
mid-batch.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.analysis.adaptive import MeasurementBatch, run_link_ber_batch
from repro.analysis.sweep import SweepSpec
from repro.service.fleet import FleetError, WorkerFleet

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend tests pin the fork start method",
)

SPEC = SweepSpec({"rate_mbps": [24], "snr_db": [4.0, 6.0, 8.0]},
                 constants={"packet_bits": 600, "batch_size": 4}, seed=23)


def batches(num_per_point=2, num_packets=4):
    out = []
    for point in SPEC:
        for index in range(num_per_point):
            out.append(MeasurementBatch(point, index, num_packets))
    return out


def drain(fleet, expected, timeout=60.0):
    """Collect ``expected`` results from the fleet or time out."""
    results = {}
    deadline = time.time() + timeout
    while len(results) < expected:
        remaining = deadline - time.time()
        assert remaining > 0, "timed out with %d/%d results" % (
            len(results), expected)
        for item_id, result in fleet.poll(timeout=min(remaining, 0.5)):
            results[item_id] = result
    return results


def reference_results(items):
    return {item_id: dict(run_link_ber_batch(batch))
            for item_id, batch in items}


# Module-level runners so the process backend can pickle them by reference
# (the tests pin mp_context="fork", under which the already-imported test
# module resolves in the child).
def _failing_runner(batch):
    raise RuntimeError("boom at %s" % batch.label())


def _kill_once_runner(batch):
    """Die abruptly on the first attempt, succeed on the retry."""
    marker = batch.point.params["kill_marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(13)  # no exception, no cleanup: a genuine worker death
    return run_link_ber_batch(batch)


class TestThreadFleet:
    def test_results_match_an_in_process_run(self):
        items = [(("item", i), batch) for i, batch in enumerate(batches())]
        with WorkerFleet(workers=3, backend="thread") as fleet:
            for item_id, batch in items:
                fleet.submit(item_id, run_link_ber_batch, batch)
            results = drain(fleet, len(items))
        assert results == reference_results(items)
        assert fleet.stats()["completed"] == len(items)

    def test_compute_gate_bounds_executing_runners(self):
        # Four workers, one compute slot: runners must never overlap,
        # while every item still completes through the shared queue.
        peak = {"now": 0, "max": 0}
        meter = threading.Lock()

        def metered_runner(batch):
            with meter:
                peak["now"] += 1
                peak["max"] = max(peak["max"], peak["now"])
            time.sleep(0.05)
            with meter:
                peak["now"] -= 1
            return {"errors": 0, "trials": 1}

        with WorkerFleet(workers=4, backend="thread",
                         compute_slots=1) as fleet:
            assert fleet.compute_slots == 1
            for i in range(8):
                fleet.submit(("gated", i), metered_runner, batches()[0])
            results = drain(fleet, 8)
        assert len(results) == 8
        assert peak["max"] == 1

    def test_compute_slots_default_respects_the_host(self):
        fleet = WorkerFleet(workers=64, backend="thread")
        assert fleet.compute_slots == min(64, os.cpu_count() or 1)
        assert fleet.stats()["compute_slots"] == fleet.compute_slots

    def test_runner_exceptions_come_back_as_error_results(self):
        with WorkerFleet(workers=1, backend="thread") as fleet:
            fleet.submit("bad", _failing_runner, batches()[0])
            results = drain(fleet, 1)
        assert "RuntimeError: boom" in results["bad"]["error"]

    def test_lower_priority_tuples_run_first(self):
        order = []
        gate = threading.Event()

        def gated_runner(batch):
            gate.wait(30.0)
            order.append(batch.point.params["tag"])
            return {"errors": 0, "trials": 1}

        def tagged_batch(tag):
            spec = SweepSpec({"snr_db": [4.0]}, constants={"tag": tag}, seed=1)
            return MeasurementBatch(list(spec)[0], 0, 1)

        with WorkerFleet(workers=1, backend="thread") as fleet:
            # One item occupies the single worker at the gate; the rest
            # queue up and must drain lowest-priority-tuple first.
            fleet.submit("gate", gated_runner, tagged_batch("gate"),
                         priority=(0,))
            time.sleep(0.1)
            fleet.submit("slow", gated_runner, tagged_batch("slow"),
                         priority=(5,))
            fleet.submit("urgent", gated_runner, tagged_batch("urgent"),
                         priority=(1,))
            fleet.submit("normal", gated_runner, tagged_batch("normal"),
                         priority=(3,))
            gate.set()
            drain(fleet, 4)
        assert order == ["gate", "urgent", "normal", "slow"]

    def test_promote_pulls_a_queued_item_forward(self):
        order = []
        gate = threading.Event()

        def gated_runner(batch):
            gate.wait(30.0)
            order.append(batch.point.params["tag"])
            return {"errors": 0, "trials": 1}

        def tagged_batch(tag):
            spec = SweepSpec({"snr_db": [4.0]}, constants={"tag": tag}, seed=1)
            return MeasurementBatch(list(spec)[0], 0, 1)

        with WorkerFleet(workers=1, backend="thread") as fleet:
            fleet.submit("gate", gated_runner, tagged_batch("gate"),
                         priority=(0,))
            time.sleep(0.1)
            fleet.submit("slow", gated_runner, tagged_batch("slow"),
                         priority=(5,))
            fleet.submit("later", gated_runner, tagged_batch("later"),
                         priority=(6,))
            assert fleet.promote("later", (1,)) is True
            assert fleet.promote("missing", (0,)) is False
            gate.set()
            results = drain(fleet, 3)
        # The promoted item ran ahead of the better-submitted "slow", and
        # its stale duplicate heap entry produced no second execution.
        assert order == ["gate", "later", "slow"]
        assert len(results) == 3

    def test_cancel_withdraws_a_queued_item_before_it_runs(self):
        ran = []
        gate = threading.Event()

        def gated_runner(batch):
            gate.wait(30.0)
            ran.append(batch.index)
            return {"errors": 0, "trials": 1}

        with WorkerFleet(workers=1, backend="thread") as fleet:
            first, second = batches()[:2]
            fleet.submit("running", gated_runner, first)
            time.sleep(0.1)  # the single worker now holds "running"
            fleet.submit("doomed", gated_runner, second)
            # Queued, untouched by any worker: cancellable exactly once.
            assert fleet.cancel("doomed") is True
            assert fleet.cancel("doomed") is False
            # Dispatched or unknown items are not.
            assert fleet.cancel("running") is False
            assert fleet.cancel("never-submitted") is False
            gate.set()
            results = drain(fleet, 1)
            assert "running" in results
            # The ledger balances: nothing lost, nothing double-freed.
            stats = fleet.stats()
            assert stats["cancelled"] == 1
            assert stats["submitted"] == 2
            assert stats["completed"] == 1
            assert stats["pending"] == 0
            # The cancelled item never produced a result and never ran.
            assert fleet.poll(timeout=0.2) == []
            assert ran == [first.index]

    def test_heartbeats_cover_every_worker(self):
        with WorkerFleet(workers=2, backend="thread") as fleet:
            beats = fleet.heartbeats()
            assert len(beats) == 2
            assert all(age < 60.0 for age in beats.values())

    def test_submit_requires_a_running_fleet(self):
        fleet = WorkerFleet(workers=1, backend="thread")
        with pytest.raises(FleetError, match="start"):
            fleet.submit("x", run_link_ber_batch, batches()[0])

    def test_stop_fails_leftover_items_instead_of_hanging(self):
        gate = threading.Event()

        def stuck_runner(batch):
            gate.wait(5.0)
            return {"errors": 0, "trials": 1}

        fleet = WorkerFleet(workers=1, backend="thread")
        fleet.start()
        fleet.submit("a", stuck_runner, batches()[0])
        fleet.submit("b", stuck_runner, batches()[1])
        time.sleep(0.05)
        gate.set()
        fleet.stop()
        results = dict(fleet.poll())
        # Whatever had not finished by stop() comes back as an error
        # result rather than silently disappearing.
        for item_id in ("a", "b"):
            if item_id in results and "error" in results[item_id]:
                assert results[item_id]["error"] == "fleet stopped"


class TestProcessFleet:
    def test_results_match_an_in_process_run(self):
        items = [(("item", i), batch) for i, batch in enumerate(batches())]
        with WorkerFleet(workers=2, backend="process",
                         mp_context="fork") as fleet:
            for item_id, batch in items:
                fleet.submit(item_id, run_link_ber_batch, batch)
            results = drain(fleet, len(items))
        assert results == reference_results(items)

    def test_worker_death_retries_the_item_and_restarts_the_worker(
            self, tmp_path):
        marker = str(tmp_path / "first-attempt-died")
        spec = SweepSpec({"snr_db": [4.0]},
                         constants={"rate_mbps": 24, "packet_bits": 600,
                                    "batch_size": 4, "kill_marker": marker},
                         seed=23)
        batch = MeasurementBatch(list(spec)[0], 0, 4)
        with WorkerFleet(workers=1, backend="process", mp_context="fork",
                         heartbeat_s=0.1) as fleet:
            fleet.submit("fragile", _kill_once_runner, batch)
            results = drain(fleet, 1, timeout=60.0)
            stats = fleet.stats()
        assert os.path.exists(marker), "the first attempt should have died"
        # The retried result is bit-for-bit the normal one: the batch
        # carries its own seed derivation, so the replacement worker
        # cannot land on different bytes.
        assert results["fragile"] == dict(run_link_ber_batch(batch))
        assert stats["retried"] == 1
        assert stats["workers_restarted"] >= 1

    def test_unpicklable_item_fails_cleanly_without_killing_the_fleet(self):
        items = batches()
        with WorkerFleet(workers=1, backend="process",
                         mp_context="fork") as fleet:
            fleet.submit("unshippable", lambda batch: None, items[0])
            results = drain(fleet, 1)
            assert "cannot be shipped" in results["unshippable"]["error"]
            # The feeder and worker both survived: real work still runs.
            fleet.submit("fine", run_link_ber_batch, items[1])
            results = drain(fleet, 1)
        assert results["fine"] == dict(run_link_ber_batch(items[1]))

    def test_worker_death_beyond_max_retries_fails_the_item(self, tmp_path):
        spec = SweepSpec({"snr_db": [4.0]},
                         constants={"always": True}, seed=23)
        batch = MeasurementBatch(list(spec)[0], 0, 4)
        with WorkerFleet(workers=1, backend="process", mp_context="fork",
                         max_retries=1, heartbeat_s=0.1) as fleet:
            fleet.submit("doomed", _always_die_runner, batch)
            results = drain(fleet, 1, timeout=60.0)
        assert "worker died" in results["doomed"]["error"]


def _always_die_runner(batch):
    os._exit(13)
