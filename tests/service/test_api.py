"""Tests for the service front door: in-process object and HTTP endpoint."""

import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service, fetch_json, serve, stream_request
from repro.service.broker import ServiceError
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(snrs=(4.0, 6.0), **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


@pytest.fixture()
def service(tmp_path):
    with Service(ResultStore(tmp_path / "store"), workers=2) as running:
        yield running


class TestInProcessService:
    def test_rows_stream_then_result_matches_serial(self, service):
        ticket = service.submit(request())
        streamed = list(ticket.rows())
        rows = ticket.result(timeout=60)
        serial = request().experiment().run(SweepExecutor("serial"))
        assert rows == serial
        # Streamed rows arrive in completion order; same content, any order.
        assert sorted(streamed, key=lambda r: r["snr_db"]) \
            == sorted(rows, key=lambda r: r["snr_db"])

    def test_characterise_is_submit_plus_result(self, service):
        rows = service.characterise(request(), timeout=60)
        assert rows == request().experiment().run(SweepExecutor("serial"))

    def test_late_subscriber_replays_the_full_event_log(self, service):
        ticket = service.submit(request())
        ticket.result(timeout=60)
        events = list(ticket.stream())  # subscribed after completion
        kinds = [event["event"] for event in events]
        assert kinds == ["row"] * (len(kinds) - 1) + ["done"]
        assert events[-1]["progress"]["points_done"] == 2

    def test_submit_requires_a_started_service(self, tmp_path):
        stopped = Service(ResultStore(tmp_path))
        with pytest.raises(ServiceError, match="start"):
            stopped.submit(request())

    def test_submit_accepts_plain_dict_requests(self, service):
        rows = service.characterise(request().to_dict(), timeout=60)
        assert rows == request().experiment().run(SweepExecutor("serial"))

    def test_status_reports_fleet_and_broker(self, service):
        service.characterise(request(), timeout=60)
        status = service.status()
        assert status["completed_requests"] == 1
        assert status["fleet"]["workers"] == 2
        assert len(status["heartbeats"]) == 2

    def test_malformed_runner_result_fails_only_its_ticket(self, tmp_path):
        # A runner violating the chunk-runner protocol (no "trials") blows
        # up while its result is folded in.  That must fail the affected
        # request with a ServiceError — not kill the pump thread and hang
        # the service: the next, well-formed request still completes.
        def broken_then_fine(batch):
            if batch.point.params.get("broken"):
                return {"errors": 1}
            return {"errors": 1, "trials": batch.num_packets * 600}

        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=broken_then_fine) as running:
            doomed = running.submit(request(constants={"batch_size": 4,
                                                       "broken": True}))
            with pytest.raises(ServiceError, match="internal error"):
                doomed.result(timeout=60)
            healthy = running.submit(request())
            assert len(healthy.result(timeout=60)) == 2
            assert running.status()["failed_requests"] == 1


class TestHTTPFrontDoor:
    @pytest.fixture()
    def base_url(self, service):
        server = serve(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield "http://%s:%d" % (host, port)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_characterise_streams_json_lines(self, service, base_url):
        events = list(stream_request(base_url, request()))
        assert events[0]["event"] == "accepted"
        assert events[0]["points"] == 2
        assert events[-1]["event"] == "done"
        rows = [event["row"] for event in events if event["event"] == "row"]
        serial = request().experiment().run(SweepExecutor("serial"))
        assert sorted(rows, key=lambda r: r["snr_db"]) \
            == sorted(serial, key=lambda r: r["snr_db"])
        # Progress rides along with every row event.
        row_events = [e for e in events if e["event"] == "row"]
        assert all("packets_spent" in e["progress"] for e in row_events)
        assert events[-1]["progress"]["batches_simulated"] > 0

    def test_second_identical_request_is_served_from_cache(self, service,
                                                           base_url):
        list(stream_request(base_url, request()))
        events = list(stream_request(base_url, request()))
        done = events[-1]
        assert done["event"] == "done"
        assert done["progress"]["batches_simulated"] == 0
        assert done["progress"]["batches_cached"] \
            == done["progress"]["batches"]

    def test_status_and_requests_endpoints(self, service, base_url):
        list(stream_request(base_url, request()))
        status = fetch_json(base_url + "/v1/status")
        assert status["completed_requests"] == 1
        assert fetch_json(base_url + "/v1/requests")["requests"] == []

    def test_malformed_request_is_a_400(self, base_url):
        http_request = urllib.request.Request(
            base_url + "/v1/characterise", data=b'{"seed": 1}',
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http_request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_path_is_a_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base_url + "/v1/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_shutdown_endpoint_stops_the_server(self, service):
        server = serve(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        reply = fetch_json("http://%s:%d/v1/shutdown" % (host, port), data={})
        assert reply == {"status": "stopping"}
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
