"""Tests for the service front door: in-process object and HTTP endpoint."""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.analysis.adaptive import StopRule, run_link_ber_batch
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import (RetryPolicy, Service, ServiceHTTPError,
                               cancel_request, fetch_json, serve,
                               stream_request)
from repro.service.broker import ServiceError
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(snrs=(4.0, 6.0), **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


@pytest.fixture()
def service(tmp_path):
    with Service(ResultStore(tmp_path / "store"), workers=2) as running:
        yield running


class TestInProcessService:
    def test_rows_stream_then_result_matches_serial(self, service):
        ticket = service.submit(request())
        streamed = list(ticket.rows())
        rows = ticket.result(timeout=60)
        serial = request().experiment().run(SweepExecutor("serial"))
        assert rows == serial
        # Streamed rows arrive in completion order; same content, any order.
        assert sorted(streamed, key=lambda r: r["snr_db"]) \
            == sorted(rows, key=lambda r: r["snr_db"])

    def test_characterise_is_submit_plus_result(self, service):
        rows = service.characterise(request(), timeout=60)
        assert rows == request().experiment().run(SweepExecutor("serial"))

    def test_late_subscriber_replays_the_full_event_log(self, service):
        ticket = service.submit(request())
        ticket.result(timeout=60)
        events = list(ticket.stream())  # subscribed after completion
        kinds = [event["event"] for event in events]
        assert kinds == ["row"] * (len(kinds) - 1) + ["done"]
        assert events[-1]["progress"]["points_done"] == 2

    def test_submit_requires_a_started_service(self, tmp_path):
        stopped = Service(ResultStore(tmp_path))
        with pytest.raises(ServiceError, match="start"):
            stopped.submit(request())

    def test_submit_accepts_plain_dict_requests(self, service):
        rows = service.characterise(request().to_dict(), timeout=60)
        assert rows == request().experiment().run(SweepExecutor("serial"))

    def test_status_reports_fleet_and_broker(self, service):
        service.characterise(request(), timeout=60)
        status = service.status()
        assert status["completed_requests"] == 1
        assert status["fleet"]["workers"] == 2
        assert len(status["heartbeats"]) == 2

    def test_malformed_runner_result_fails_only_its_ticket(self, tmp_path):
        # A runner violating the chunk-runner protocol (no "trials") blows
        # up while its result is folded in.  That must fail the affected
        # request with a ServiceError — not kill the pump thread and hang
        # the service: the next, well-formed request still completes.
        def broken_then_fine(batch):
            if batch.point.params.get("broken"):
                return {"errors": 1}
            return {"errors": 1, "trials": batch.num_packets * 600}

        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=broken_then_fine) as running:
            doomed = running.submit(request(constants={"batch_size": 4,
                                                       "broken": True}))
            with pytest.raises(ServiceError, match="internal error"):
                doomed.result(timeout=60)
            healthy = running.submit(request())
            assert len(healthy.result(timeout=60)) == 2
            assert running.status()["failed_requests"] == 1


class TestHTTPFrontDoor:
    @pytest.fixture()
    def base_url(self, service):
        server = serve(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield "http://%s:%d" % (host, port)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)

    def test_characterise_streams_json_lines(self, service, base_url):
        events = list(stream_request(base_url, request()))
        assert events[0]["event"] == "accepted"
        assert events[0]["points"] == 2
        assert events[-1]["event"] == "done"
        rows = [event["row"] for event in events if event["event"] == "row"]
        serial = request().experiment().run(SweepExecutor("serial"))
        assert sorted(rows, key=lambda r: r["snr_db"]) \
            == sorted(serial, key=lambda r: r["snr_db"])
        # Progress rides along with every row event.
        row_events = [e for e in events if e["event"] == "row"]
        assert all("packets_spent" in e["progress"] for e in row_events)
        assert events[-1]["progress"]["batches_simulated"] > 0

    def test_second_identical_request_is_served_from_cache(self, service,
                                                           base_url):
        list(stream_request(base_url, request()))
        events = list(stream_request(base_url, request()))
        done = events[-1]
        assert done["event"] == "done"
        assert done["progress"]["batches_simulated"] == 0
        assert done["progress"]["batches_cached"] \
            == done["progress"]["batches"]

    def test_status_and_requests_endpoints(self, service, base_url):
        list(stream_request(base_url, request()))
        status = fetch_json(base_url + "/v1/status")
        assert status["completed_requests"] == 1
        assert fetch_json(base_url + "/v1/requests")["requests"] == []

    def test_malformed_request_is_a_400(self, base_url):
        http_request = urllib.request.Request(
            base_url + "/v1/characterise", data=b'{"seed": 1}',
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(http_request, timeout=30)
        assert excinfo.value.code == 400

    def test_unknown_path_is_a_404(self, base_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base_url + "/v1/nope", timeout=30)
        assert excinfo.value.code == 404

    def test_shutdown_endpoint_stops_the_server(self, service):
        server = serve(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        reply = fetch_json("http://%s:%d/v1/shutdown" % (host, port), data={})
        assert reply == {"status": "stopping"}
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()


def _gated_runner(gate):
    """A runner parked at ``gate`` — same bytes as the link runner."""
    def runner(batch):
        gate.wait(30.0)
        return dict(run_link_ber_batch(batch))
    return runner


def _serve_in_thread(service, heartbeat_s=10.0):
    server = serve(service, port=0, heartbeat_s=heartbeat_s)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, "http://%s:%d" % (host, port)


def _wait_until(predicate, timeout=15.0, message="condition not reached"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, message
        time.sleep(0.05)


class TestServiceLifecycleHardening:
    def test_stop_drain_finishes_inflight_requests(self, tmp_path):
        gate = threading.Event()
        service = Service(ResultStore(tmp_path / "store"), workers=1,
                          runner=_gated_runner(gate)).start()
        ticket = service.submit(request())
        threading.Timer(0.2, gate.set).start()
        service.stop(drain=True, timeout=60.0)
        # Nothing in flight was failed: the drain waited it out.
        assert ticket.done.is_set() and not ticket.cancelled
        assert ticket.result() == request().experiment(
            runner=_gated_runner(gate)).run(SweepExecutor("serial"))

    def test_wedged_pump_raises_and_blocks_restart(self, tmp_path):
        service = Service(ResultStore(tmp_path / "store"), workers=1,
                          stop_timeout_s=0.2)
        service.start()
        release = threading.Event()
        entered = threading.Event()

        def stuck_pump(timeout=0.0):
            entered.set()
            release.wait(30.0)
            return 0

        service.broker.pump = stuck_pump
        assert entered.wait(5.0), "pump thread never entered the stuck pump"
        with pytest.raises(ServiceError, match="failed to stop"):
            service.stop()
        # A wedged service refuses to restart rather than doubling pumps.
        with pytest.raises(ServiceError, match="restarted"):
            service.start()
        release.set()

    def test_metrics_snapshot_includes_fleet_and_store(self, service):
        service.characterise(request(), timeout=60)
        metrics = service.metrics()
        assert metrics["requests"]["completed"] == 1
        assert metrics["batches"]["simulated"] > 0
        assert metrics["fleet"]["workers"] == 2
        assert len(metrics["heartbeats"]) == 2
        assert metrics["store_root"] == service.store.root

    def test_service_cancel_passthrough(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate)) as running:
            ticket = running.submit(request())
            assert running.cancel(ticket.key) is True
            assert running.cancel(ticket.key) is False
            assert ticket.cancelled
            gate.set()


class TestHTTPHardening:
    def test_saturated_submit_is_a_429_with_retry_after(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate),
                     max_inflight_batches=1) as running:
            server, thread, base_url = _serve_in_thread(running)
            try:
                held = running.submit(request([4.0]))
                with pytest.raises(ServiceHTTPError) as excinfo:
                    list(stream_request(base_url, request([6.0])))
                error = excinfo.value
                assert error.status == 429 and error.saturated
                assert error.retry_after_s >= 1.0
                assert "saturated" in error.body["error"]
                # Retrying after the in-flight work drains succeeds, with
                # rows bit-for-bit equal to an unloaded run.
                gate.set()
                held.result(timeout=60)
                events = list(stream_request(base_url, request([6.0])))
                rows = [e["row"] for e in events if e["event"] == "row"]
                serial = request([6.0]).experiment(
                    runner=_gated_runner(gate)).run(SweepExecutor("serial"))
                assert sorted(rows, key=lambda r: r["snr_db"]) == serial
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_metrics_endpoint(self, service):
        server, thread, base_url = _serve_in_thread(service)
        try:
            list(stream_request(base_url, request()))
            metrics = fetch_json(base_url + "/v1/metrics")
            assert metrics["requests"]["completed"] == 1
            assert metrics["admission"]["open"] is True
            assert metrics["batches"]["simulated"] > 0
            assert metrics["fleet"]["workers"] == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    def test_cancel_endpoint_round_trip(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate)) as running:
            server, thread, base_url = _serve_in_thread(running)
            try:
                ticket = running.submit(request())
                reply = cancel_request(base_url, ticket.key)
                assert reply == {"request": ticket.key, "cancelled": True}
                assert ticket.cancelled
                # A second cancel (or a bogus key) is an honest 404.
                with pytest.raises(ServiceHTTPError) as excinfo:
                    cancel_request(base_url, ticket.key)
                assert excinfo.value.status == 404
                gate.set()
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_disconnect_mid_stream_cancels_the_request(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate)) as running:
            server, thread, base_url = _serve_in_thread(running,
                                                        heartbeat_s=0.1)
            try:
                host, port = server.server_address[:2]
                conn = http.client.HTTPConnection(host, port, timeout=30)
                conn.request("POST", "/v1/characterise",
                             body=json.dumps(request().to_dict()),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                accepted = json.loads(response.fp.readline())
                assert accepted["event"] == "accepted"
                # Hang up mid-stream: the keep-alive heartbeat detects it
                # and routes the disconnect into the cancel path.  (The
                # response holds the socket via its makefile — both must
                # close for the peer to see the hang-up.)
                response.close()
                conn.close()
                _wait_until(
                    lambda: running.broker.cancelled_requests == 1,
                    message="disconnect was never routed into cancel")
                assert running.status()["in_flight_requests"] == 0
                gate.set()
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_detached_client_disconnect_keeps_the_request(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate)) as running:
            server, thread, base_url = _serve_in_thread(running,
                                                        heartbeat_s=0.1)
            try:
                host, port = server.server_address[:2]
                conn = http.client.HTTPConnection(host, port, timeout=30)
                conn.request("POST", "/v1/characterise?detach=1",
                             body=json.dumps(request().to_dict()),
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                accepted = json.loads(response.fp.readline())
                assert accepted["detach"] is True
                response.close()
                conn.close()
                time.sleep(0.5)  # several heartbeats: disconnect detected
                # The fire-and-forget escape hatch: still running.
                assert running.status()["in_flight_requests"] == 1
                gate.set()
                _wait_until(
                    lambda: running.broker.completed_requests == 1,
                    message="detached request did not run to completion")
                assert running.broker.cancelled_requests == 0
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_mid_stream_fault_emits_a_terminal_error_event(self, tmp_path):
        # A runner leaking an unserialisable extra poisons the row event
        # at the JSON layer — exactly the mid-stream server fault the
        # contract covers: the client must see a terminal "error" line,
        # never a silent truncation.
        def leaky_runner(batch):
            result = dict(run_link_ber_batch(batch))
            result["opaque"] = object()
            return result

        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=leaky_runner) as running:
            server, thread, base_url = _serve_in_thread(running)
            try:
                events = list(stream_request(base_url, request([4.0])))
                assert events[0]["event"] == "accepted"
                assert events[-1]["event"] == "error"
                assert "TypeError" in events[-1]["error"]
                # The fault was at the JSON layer only: the broker side
                # of the request had already completed normally, and the
                # handler's post-fault cancel was a clean no-op.
                assert running.broker.completed_requests == 1
                assert running.broker.cancelled_requests == 0
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=10)

    def test_shutdown_drain_finishes_inflight_first(self, tmp_path):
        gate = threading.Event()
        with Service(ResultStore(tmp_path / "store"), workers=1,
                     runner=_gated_runner(gate)) as running:
            server, thread, base_url = _serve_in_thread(running)
            ticket = running.submit(request([4.0]))
            reply = fetch_json(base_url + "/v1/shutdown?drain=1", data={})
            assert reply == {"status": "draining"}
            # Admission is closed the moment the drain starts.
            with pytest.raises(ServiceHTTPError) as excinfo:
                list(stream_request(base_url, request([6.0])))
            assert excinfo.value.status == 503
            assert "draining" in excinfo.value.body["error"]
            gate.set()
            thread.join(timeout=30)
            assert not thread.is_alive()
            server.server_close()
            # The in-flight request finished before the server stopped.
            assert ticket.done.is_set()
            assert ticket.result() == request([4.0]).experiment(
                runner=_gated_runner(gate)).run(SweepExecutor("serial"))


class _CaptureHandler(BaseHTTPRequestHandler):
    """Scripted peer for the client helpers: records requests, replies
    with a canned 429 on ``/err``, a 429-then-200 script on ``/flaky``
    and 200 elsewhere."""

    captured = []
    flaky_failures = 0

    def log_message(self, fmt, *args):
        pass

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        type(self).captured.append(
            (self.path, self.headers.get("Content-Type"),
             self.rfile.read(length)))
        saturated = self.path.startswith("/err")
        if self.path.startswith("/flaky"):
            if type(self).flaky_failures > 0:
                type(self).flaky_failures -= 1
                saturated = True
        if saturated:
            body = json.dumps({"error": "service saturated: go away",
                               "retry_after_s": 7.0}).encode()
            self.send_response(429)
            self.send_header("Retry-After", "7")
        else:
            body = b'{"ok": true}'
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture()
def capture_url():
    _CaptureHandler.captured = []
    _CaptureHandler.flaky_failures = 0
    server = ThreadingHTTPServer(("127.0.0.1", 0), _CaptureHandler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield "http://%s:%d" % (host, port)
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


class TestClientHelpers:
    def test_fetch_json_posts_with_content_type(self, capture_url):
        assert fetch_json(capture_url + "/ok", data={"x": 1}) == {"ok": True}
        path, content_type, body = _CaptureHandler.captured[-1]
        assert content_type == "application/json"
        assert json.loads(body) == {"x": 1}

    def test_fetch_json_surfaces_the_error_body(self, capture_url):
        with pytest.raises(ServiceHTTPError) as excinfo:
            fetch_json(capture_url + "/err", data={})
        error = excinfo.value
        assert error.status == 429 and error.saturated
        assert error.body["error"] == "service saturated: go away"
        assert error.retry_after_s == 7.0
        assert "429" in str(error) and "go away" in str(error)

    def test_stream_request_surfaces_the_error_body(self, capture_url):
        with pytest.raises(ServiceHTTPError) as excinfo:
            list(stream_request(capture_url + "/err", request()))
        assert excinfo.value.status == 429

class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_doubles_caps_and_honours_retry_after(self):
        policy = RetryPolicy(base_s=1.0, max_s=4.0, jitter=0.0)
        assert policy.delay_s(0) == 1.0
        assert policy.delay_s(1) == 2.0
        assert policy.delay_s(5) == 4.0  # capped
        # The server's Retry-After floors the wait — never less.
        assert policy.delay_s(0, retry_after_s=7.0) == 7.0
        assert policy.delay_s(5, retry_after_s=2.0) == 4.0

    def test_delay_jitter_stays_within_the_window(self):
        policy = RetryPolicy(base_s=8.0, jitter=0.5,
                             rng=__import__("random").Random(7))
        delays = [policy.delay_s(0) for _ in range(50)]
        assert all(4.0 <= delay <= 8.0 for delay in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_fetch_json_retries_saturation_then_surfaces(self, capture_url):
        sleeps = []
        policy = RetryPolicy(attempts=3, base_s=0.01, jitter=0.0,
                             sleep=sleeps.append)
        with pytest.raises(ServiceHTTPError) as excinfo:
            fetch_json(capture_url + "/err", data={}, retry=policy)
        assert excinfo.value.status == 429
        # Three tries hit the wire; the two waits honoured Retry-After.
        assert len(_CaptureHandler.captured) == 3
        assert sleeps == [7.0, 7.0]
        assert policy.retries == 2

    def test_fetch_json_succeeds_once_the_server_recovers(self, capture_url):
        _CaptureHandler.flaky_failures = 2
        policy = RetryPolicy(attempts=5, base_s=0.01, jitter=0.0,
                             sleep=lambda _s: None)
        assert fetch_json(capture_url + "/flaky", data={},
                          retry=policy) == {"ok": True}
        assert len(_CaptureHandler.captured) == 3
        assert policy.retries == 2

    def test_non_retryable_status_surfaces_immediately(self, capture_url):
        sleeps = []
        policy = RetryPolicy(attempts=5, statuses=(503,),
                             sleep=sleeps.append)
        with pytest.raises(ServiceHTTPError):
            fetch_json(capture_url + "/err", data={}, retry=policy)
        assert len(_CaptureHandler.captured) == 1
        assert sleeps == []

    def test_connection_failures_retry_only_when_opted_in(self):
        nowhere = "http://127.0.0.1:1/v1/status"
        sleeps = []
        policy = RetryPolicy(attempts=3, base_s=0.01, jitter=0.0,
                             connect=True, sleep=sleeps.append)
        with pytest.raises(urllib.error.URLError):
            fetch_json(nowhere, retry=policy)
        assert len(sleeps) == 2
        # Without connect=True the first failure surfaces untouched.
        strict = RetryPolicy(attempts=3, sleep=sleeps.append)
        with pytest.raises(urllib.error.URLError):
            fetch_json(nowhere, retry=strict)
        assert len(sleeps) == 2

    def test_stream_request_retries_the_submit(self, capture_url):
        sleeps = []
        policy = RetryPolicy(attempts=2, base_s=0.01, jitter=0.0,
                             sleep=sleeps.append)
        with pytest.raises(ServiceHTTPError):
            list(stream_request(capture_url + "/err", request(),
                                retry=policy))
        assert len(_CaptureHandler.captured) == 2
        assert sleeps == [7.0]

    def test_stream_request_retry_delivers_rows(self, service):
        # Against the real service: a policy on a healthy endpoint is
        # invisible — the stream completes with bit-for-bit rows.
        server, thread, base_url = _serve_in_thread(service)
        try:
            policy = RetryPolicy(attempts=3, base_s=0.01)
            events = list(stream_request(base_url, request(),
                                         retry=policy))
            rows = [e["row"] for e in events if e["event"] == "row"]
            serial = request().experiment().run(SweepExecutor("serial"))
            assert sorted(rows, key=lambda r: r["snr_db"]) == serial
            assert policy.retries == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
