"""Tests for the cluster subsystem: store leases, remote workers, and
the multi-replica acceptance harness.

Everything here leans on one fact: batch ``k`` of a point is a pure
function of ``(spec, point, k)``, so leases and remote scheduling can
only change *where* a batch's bytes come from — every test closes with
a bit-for-bit comparison against the serial ``Experiment.run``.
"""

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.analysis.adaptive import StopRule, batch_store_key
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service, fetch_json, serve, stream_request
from repro.service.cluster import LEASE_DIRNAME, LeaseManager
from repro.service.fleet import FleetError, WorkerFleet
from repro.service.requests import CharacterisationRequest
from repro.service.worker import WorkerAgent

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)

#: Overlapping windows for the two-replica tests: 5.5 and 8.0 are shared.
SNRS_A = (4.0, 5.5, 8.0)
SNRS_B = (5.5, 8.0, 9.5)

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def request(snrs=(4.0, 6.0), **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


def first_round_keys(req):
    """``(digest, point_key, batch_index)`` for each first-round batch."""
    experiment = req.experiment()
    digest = experiment.store_digest()
    return [(digest, batch_store_key(batch), batch.index)
            for batch in experiment.trajectory().start_round()]


def scratch_batch():
    """A real MeasurementBatch outside every test window (for hold items)."""
    return request([2.5]).experiment().trajectory().start_round()[0]


def _gated_stub(gate):
    """A runner parked at ``gate``; its result subscribes to nothing."""
    def runner(batch):
        gate.wait(60.0)
        return {"errors": 0, "trials": 1}
    return runner


def _stub_runner(batch):
    """A trivial runner for items a test resolves by hand."""
    return {"errors": 0, "trials": 1}


def _serve_in_thread(service, worker_ping_s=0.2):
    server = serve(service, port=0, heartbeat_s=5.0,
                   worker_ping_s=worker_ping_s)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, "http://%s:%d" % (host, port)


def _wait_until(predicate, timeout=30.0, message="condition not reached"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, message
        time.sleep(0.05)


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------- #
# LeaseManager unit tests (no clock: `now` is always explicit)
# ---------------------------------------------------------------------- #
class TestLeaseManager:
    KEY = ("cafe" * 16, (24, 0, 4, 0), 3)

    def test_ttl_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_s"):
            LeaseManager(tmp_path, ttl_s=0.0)

    def test_for_store_nests_under_the_store_root(self, tmp_path):
        manager = LeaseManager.for_store(tmp_path, owner="a")
        assert manager.root == os.path.join(str(tmp_path), LEASE_DIRNAME)

    def test_acquire_free_then_contended(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        assert a.acquire(*self.KEY, now=100.0) is True
        assert b.acquire(*self.KEY, now=101.0) is False
        assert a.held == 1 and b.held == 0
        assert a.acquired == 1 and b.contended == 1
        holder = b.holder(*self.KEY, now=101.0)
        assert holder["owner"] == "a"
        assert holder["expires_in_s"] == pytest.approx(29.0)

    def test_reacquire_is_idempotent_and_restamps(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        assert a.acquire(*self.KEY, now=100.0)
        assert a.acquire(*self.KEY, now=120.0)  # same owner: re-stamped
        assert a.held == 1
        record = a.holder(*self.KEY, now=120.0)
        assert record["acquired_at"] == 120.0

    def test_stale_lease_is_reclaimed(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=10.0)
        b = LeaseManager(tmp_path, owner="b", ttl_s=10.0)
        assert a.acquire(*self.KEY, now=100.0)
        assert b.acquire(*self.KEY, now=105.0) is False
        assert b.acquire(*self.KEY, now=111.0) is True  # past a's TTL
        assert b.reclaimed_stale == 1 and b.held == 1
        # The original owner discovers the loss at refresh time.
        assert a.refresh(now=200.0, min_interval_s=0.0) == 0
        assert a.lost == 1 and a.held == 0
        # ... and must not unlink the new owner's lease.
        assert a.release(*self.KEY) is False
        assert b.holder(*self.KEY, now=111.0)["owner"] == "b"

    def test_unparseable_lease_file_is_reclaimed_once_old(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        path = a._path(*self.KEY)
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json {")  # a crash mid-write
        os.utime(path, (0.0, 0.0))  # aged past any TTL
        assert a.acquire(*self.KEY, now=100.0) is True
        assert a.reclaimed_stale == 1

    def test_young_unreadable_lease_file_is_contended_not_reclaimed(
            self, tmp_path):
        # O_CREAT|O_EXCL makes a lease file visible before its creator
        # stamps it under the flock: an examiner reading empty bytes
        # from a *young* file must contend (the stamp is coming), not
        # reclaim — reclaiming would hand the lease to both replicas.
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        path = a._path(*self.KEY)
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8"):
            pass  # empty: exactly what a mid-creation examiner sees
        now = time.time()
        assert a.acquire(*self.KEY, now=now) is False
        assert a.contended == 1 and a.reclaimed_stale == 0
        # The same file aged past the TTL is a crashed creator: reclaim.
        os.utime(path, (now - 31.0, now - 31.0))
        assert a.acquire(*self.KEY, now=now) is True
        assert a.reclaimed_stale == 1

    def test_release_unlinks_only_our_lease(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        assert a.release(*self.KEY) is False  # never held: a quiet no-op
        assert a.acquire(*self.KEY, now=100.0)
        assert a.release(*self.KEY) is True
        assert a.released == 1 and a.held == 0
        assert a.holder(*self.KEY, now=100.0) is None
        assert not os.path.exists(a._path(*self.KEY))

    def test_refresh_restamps_held_leases_and_throttles(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        other = ("beef" * 16, (24, 0, 4, 0), 0)
        assert a.acquire(*self.KEY, now=100.0)
        assert a.acquire(*other, now=100.0)
        assert a.refresh(now=120.0, min_interval_s=0.0) == 2
        assert a.holder(*self.KEY, now=120.0)["acquired_at"] == 120.0
        # Within the throttle window the refresh is a no-op.
        assert a.refresh(now=121.0, min_interval_s=10.0) == 0

    def test_release_all_clears_the_held_set(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=30.0)
        other = ("beef" * 16, (24, 0, 4, 0), 0)
        assert a.acquire(*self.KEY, now=100.0)
        assert a.acquire(*other, now=100.0)
        assert a.release_all() == 2
        assert a.held == 0
        b = LeaseManager(tmp_path, owner="b", ttl_s=30.0)
        assert b.acquire(*self.KEY, now=100.0)  # truly free again

    def test_stats_shape(self, tmp_path):
        a = LeaseManager(tmp_path, owner="a", ttl_s=5.0)
        assert a.stats() == {
            "owner": "a", "ttl_s": 5.0, "held": 0, "acquired": 0,
            "contended": 0, "reclaimed_stale": 0, "released": 0, "lost": 0,
        }


# ---------------------------------------------------------------------- #
# Broker lease integration: park, answer, reclaim, cancel
# ---------------------------------------------------------------------- #
class TestBrokerLeases:
    def _service(self, root, replica_id, **overrides):
        kwargs = dict(workers=2, lease_ttl_s=10.0, replica_id=replica_id,
                      poll_s=0.02)
        kwargs.update(overrides)
        service = Service(str(root), **kwargs)
        service.broker.lease_poll_s = 0.05
        return service

    def test_parked_batch_is_answered_from_the_store(self, tmp_path):
        # A fake peer holds every lease for the point, so this replica
        # can never simulate; the peer's "result" arrives by writing the
        # store out-of-band, exactly like a winning replica would.
        req = request([4.0])
        shared = tmp_path / "store"
        peer = LeaseManager.for_store(shared, owner="peer", ttl_s=60.0)
        with self._service(shared, "waiter") as service:
            for digest, point_key, _ in first_round_keys(req):
                for index in range(8):
                    assert peer.acquire(digest, point_key, index)
            ticket = service.submit(req)
            _wait_until(lambda: service.broker.lease_waited_batches >= 1,
                        message="the held batch never parked")
            serial = req.experiment(store=ResultStore(str(shared))).run(
                SweepExecutor("serial"))
            rows = ticket.result(timeout=60)
            assert rows == serial
            assert service.broker.total_simulated_batches == 0
            assert service.broker.lease_answered_batches >= 1
            assert service.broker.lease_reclaimed_batches == 0

    def test_stale_lease_is_reclaimed_and_simulated_locally(self, tmp_path):
        req = request([4.0])
        shared = tmp_path / "store"
        peer = LeaseManager.for_store(shared, owner="crashed", ttl_s=1.0)
        with self._service(shared, "survivor") as service:
            (digest, point_key, batch_index) = first_round_keys(req)[0]
            assert peer.acquire(digest, point_key, batch_index)
            ticket = service.submit(req)
            _wait_until(lambda: service.broker.lease_waited_batches >= 1,
                        message="the held batch never parked")
            # The peer never refreshes: past its TTL the survivor
            # reclaims the lease and simulates the batch itself.
            rows = ticket.result(timeout=60)
            assert rows == req.experiment().run(SweepExecutor("serial"))
            assert service.broker.lease_reclaimed_batches >= 1
            assert service.leases.stats()["reclaimed_stale"] >= 1

    def test_killed_replica_lease_is_recovered(self, tmp_path):
        # The crash path for real: a subprocess replica takes the lease,
        # is SIGKILLed mid-batch (no cleanup runs), and the survivor
        # must recover via TTL expiry — rows bit-for-bit regardless.
        req = request([4.0])
        shared = tmp_path / "store"
        digest, point_key, batch_index = first_round_keys(req)[0]
        script = (
            "import sys, time\n"
            "from repro.service.cluster import LeaseManager\n"
            "manager = LeaseManager.for_store(sys.argv[1], owner='doomed',\n"
            "                                 ttl_s=1.0)\n"
            "point = tuple(int(w) for w in sys.argv[3].split(','))\n"
            "assert manager.acquire(sys.argv[2], point, int(sys.argv[4]))\n"
            "print('held', flush=True)\n"
            "time.sleep(120)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(shared), digest,
             ",".join(str(int(w)) for w in point_key), str(batch_index)],
            stdout=subprocess.PIPE, text=True, env=_subprocess_env())
        try:
            assert proc.stdout.readline().strip() == "held"
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=10)
            with self._service(shared, "survivor") as service:
                ticket = service.submit(req)
                rows = ticket.result(timeout=60)
                assert rows == req.experiment().run(SweepExecutor("serial"))
                stats = service.leases.stats()
                assert (service.broker.lease_reclaimed_batches >= 1
                        or stats["reclaimed_stale"] >= 1)
                assert stats["held"] == 0  # everything released on delivery
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()

    def test_cancel_while_parked_releases_the_waiters(self, tmp_path):
        req = request([4.0])
        shared = tmp_path / "store"
        peer = LeaseManager.for_store(shared, owner="peer", ttl_s=60.0)
        with self._service(shared, "waiter") as service:
            digest, point_key, batch_index = first_round_keys(req)[0]
            assert peer.acquire(digest, point_key, batch_index)
            ticket = service.submit(req)
            _wait_until(lambda: service.broker.lease_waited_batches >= 1,
                        message="the held batch never parked")
            assert service.cancel(ticket.key) is True
            _wait_until(
                lambda: service.status()["lease_waiting_batches"] == 0,
                message="cancel left batches parked")
            # The service stays healthy: an unrelated ask completes.
            rows = service.characterise(request([9.0]), timeout=60)
            assert rows == request([9.0]).experiment().run(
                SweepExecutor("serial"))

    def test_two_replicas_share_one_store_bit_for_bit(self, tmp_path):
        # The in-process acceptance core: two lease-enabled services on
        # one store, overlapping windows, submitted concurrently.  Rows
        # must equal the serial runs and no batch may be simulated twice
        # across the pair — the total equals the one-service union.
        shared = tmp_path / "shared"
        with Service(str(tmp_path / "union"), workers=2) as reference:
            reference.submit(request(SNRS_A)).result(timeout=120)
            reference.submit(request(SNRS_B)).result(timeout=120)
            union = reference.broker.total_simulated_batches
        serial_a = request(SNRS_A).experiment().run(SweepExecutor("serial"))
        serial_b = request(SNRS_B).experiment().run(SweepExecutor("serial"))
        with self._service(shared, "r1") as r1, \
                self._service(shared, "r2") as r2:
            ticket_a = r1.submit(request(SNRS_A))
            ticket_b = r2.submit(request(SNRS_B))
            assert ticket_a.result(timeout=120) == serial_a
            assert ticket_b.result(timeout=120) == serial_b
            simulated = (r1.broker.total_simulated_batches
                         + r2.broker.total_simulated_batches)
            assert simulated == union
            # Every parked batch resolved: answered by the peer's store
            # append or reclaimed after its lease lapsed — none linger.
            for broker in (r1.broker, r2.broker):
                assert (broker.lease_answered_batches
                        + broker.lease_reclaimed_batches
                        == broker.lease_waited_batches)
                assert broker.status()["lease_waiting_batches"] == 0

    def test_metrics_cluster_document_shape(self, tmp_path):
        with self._service(tmp_path / "store", "r1") as service:
            service.characterise(request([4.0]), timeout=60)
            cluster = service.metrics()["cluster"]
            assert cluster["replica"] == "r1"
            assert cluster["leases"]["enabled"] is True
            assert cluster["leases"]["owner"] == "r1"
            assert cluster["leases"]["acquired"] >= 1
            assert cluster["leases"]["held"] == 0
            assert cluster["remote_workers"]["attached"] == {}
        # Lease-disabled services publish the same stable shape.
        with Service(str(tmp_path / "plain"), workers=1) as plain:
            cluster = plain.metrics()["cluster"]
            assert cluster["replica"] is None
            assert cluster["leases"]["enabled"] is False
            assert set(cluster["remote_workers"]) >= {
                "attached", "attached_total", "completed", "requeued"}


# ---------------------------------------------------------------------- #
# Remote workers at the fleet layer (no HTTP)
# ---------------------------------------------------------------------- #
class TestRemoteWorkerHandle:
    @pytest.fixture()
    def busy_fleet(self):
        """A one-worker fleet whose local worker is parked on a gate."""
        gate = threading.Event()
        fleet = WorkerFleet(workers=1).start()
        fleet.submit("hold", _gated_stub(gate), scratch_batch())
        _wait_until(lambda: len(fleet._inflight) == 1,
                    message="the local worker never took the hold item")
        yield fleet, gate
        gate.set()
        fleet.stop()

    def test_register_requires_a_running_fleet(self):
        fleet = WorkerFleet(workers=1)
        with pytest.raises(FleetError, match="not running"):
            fleet.register_remote("w")

    def test_pull_complete_roundtrip(self, busy_fleet):
        fleet, _gate = busy_fleet
        handle = fleet.register_remote("w1")
        assert fleet.capacity == 2
        assert handle.next_task(timeout=0.1) is None  # nothing queued yet
        fleet.submit("job", _stub_runner, scratch_batch())
        item = handle.next_task(timeout=5.0)
        assert item is not None and item.item_id == "job"
        assert handle.executing
        assert handle.complete(item.seq, {"errors": 1, "trials": 400}) is True
        assert not handle.executing and handle.completed == 1
        assert fleet.remote_completed == 1
        results = fleet.poll(timeout=5.0)
        assert ("job", {"errors": 1, "trials": 400}) in results
        stats = fleet.remote_stats()
        assert stats["attached"]["w1"]["completed"] == 1
        assert stats["attached_total"] == 1

    def test_detach_requeues_and_refuses_the_stale_result(self, busy_fleet):
        fleet, _gate = busy_fleet
        handle = fleet.register_remote("w1")
        fleet.submit("job", _stub_runner, scratch_batch())
        item = handle.next_task(timeout=5.0)
        assert handle.detach(requeue=True) is True  # presumed dead
        assert handle.detach(requeue=True) is False  # idempotent
        assert fleet.remote_requeued == 1 and fleet.retried == 1
        # The stale completion must be refused: the item may already be
        # re-executing elsewhere.
        assert handle.complete(item.seq, {"errors": 0, "trials": 400}) is False
        # A successor pulls the requeued item and resolves it for real.
        successor = fleet.register_remote("w2")
        retried = successor.next_task(timeout=5.0)
        assert retried is not None and retried.item_id == "job"
        assert retried.attempts == 2
        assert successor.complete(retried.seq, {"errors": 2, "trials": 400})
        assert ("job", {"errors": 2, "trials": 400}) in fleet.poll(timeout=5.0)

    def test_detach_past_the_retry_cap_fails_the_item(self, tmp_path):
        gate = threading.Event()
        fleet = WorkerFleet(workers=1, max_retries=0).start()
        try:
            fleet.submit("hold", _gated_stub(gate), scratch_batch())
            _wait_until(lambda: len(fleet._inflight) == 1)
            handle = fleet.register_remote("w1")
            fleet.submit("job", _stub_runner, scratch_batch())
            item = handle.next_task(timeout=5.0)
            assert item is not None
            handle.detach(requeue=True)
            results = dict(fleet.poll(timeout=5.0))
            assert "remote worker w1 detached" in results["job"]["error"]
        finally:
            gate.set()
            fleet.stop()

    def test_reattach_under_the_same_name_evicts_the_stale_handle(
            self, busy_fleet):
        fleet, _gate = busy_fleet
        first = fleet.register_remote("w")
        fleet.submit("job", _stub_runner, scratch_batch())
        item = first.next_task(timeout=5.0)
        assert item is not None
        second = fleet.register_remote("w")  # latest attach wins
        assert first.detached and not second.detached
        assert fleet.remote_handle("w") is second
        assert fleet.remote_requeued == 1
        retried = second.next_task(timeout=5.0)
        assert retried is not None and retried.item_id == "job"
        assert second.complete(retried.seq, {"errors": 0, "trials": 400})

    def test_reap_overdue_remotes_is_the_silent_death_watchdog(
            self, busy_fleet):
        fleet, _gate = busy_fleet
        handle = fleet.register_remote("w1")
        # Idle remotes are never reaped, however silent: no item at risk.
        assert fleet.reap_overdue_remotes(0.0) == 0
        fleet.submit("job", _stub_runner, scratch_batch())
        item = handle.next_task(timeout=5.0)
        assert item is not None
        assert handle.beat() is True  # a beat keeps it alive...
        assert fleet.reap_overdue_remotes(10.0) == 0
        assert fleet.reap_overdue_remotes(0.0) == 1  # ...but not forever
        assert handle.detached and fleet.remote_requeued == 1
        assert handle.beat() is False


# ---------------------------------------------------------------------- #
# Remote workers over the real HTTP boundary
# ---------------------------------------------------------------------- #
class TestRemoteWorkerHTTP:
    def test_agent_executes_the_work_bit_for_bit(self, tmp_path):
        gate = threading.Event()
        service = Service(ResultStore(tmp_path / "store"), workers=1,
                          poll_s=0.02).start()
        server, thread, base_url = _serve_in_thread(service)
        agent = WorkerAgent(base_url, name="hands", heartbeat_s=0.2)
        agent_thread = threading.Thread(
            target=agent.run, kwargs={"retries": 3, "backoff_s": 0.1},
            daemon=True)
        try:
            # Park the only local worker: every request batch must travel
            # through the remote agent.
            service.fleet.submit("hold", _gated_stub(gate), scratch_batch())
            _wait_until(lambda: len(service.fleet._inflight) == 1)
            agent_thread.start()
            _wait_until(
                lambda: service.fleet.remote_handle("hands") is not None,
                message="the agent never attached")
            ticket = service.submit(request())
            rows = ticket.result(timeout=120)
            assert rows == request().experiment().run(SweepExecutor("serial"))
            assert service.fleet.remote_completed >= 1
            assert agent.completed == service.fleet.remote_completed
            metrics = service.metrics()
            remote = metrics["cluster"]["remote_workers"]
            assert remote["attached"]["hands"]["completed"] >= 1
            assert remote["completed"] >= 1
        finally:
            gate.set()
            service.stop()  # the agent sees bye reason "stopped" and exits
            agent_thread.join(timeout=10)
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert not agent_thread.is_alive()

    def test_agent_killed_mid_batch_is_requeued_bit_for_bit(self, tmp_path):
        # An agent that dies holding an item — os._exit the moment a task
        # arrives, before any result is posted.  The service must notice
        # the broken stream, requeue through the retry path, and the
        # local fleet must finish with rows identical to serial.
        dying_agent = (
            "import os, sys\n"
            "from repro.service.worker import WorkerAgent\n"
            "class Dying(WorkerAgent):\n"
            "    def _execute(self, event):\n"
            "        os._exit(9)\n"
            "Dying(sys.argv[1], name='doomed', heartbeat_s=0.2)"
            ".run(retries=0)\n"
        )
        gate = threading.Event()
        service = Service(ResultStore(tmp_path / "store"), workers=1,
                          poll_s=0.02).start()
        server, thread, base_url = _serve_in_thread(service)
        service.fleet.submit("hold", _gated_stub(gate), scratch_batch())
        _wait_until(lambda: len(service.fleet._inflight) == 1)
        proc = subprocess.Popen(
            [sys.executable, "-c", dying_agent, base_url],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=_subprocess_env())
        try:
            _wait_until(
                lambda: service.fleet.remote_handle("doomed") is not None,
                message="the doomed agent never attached")
            ticket = service.submit(request([4.0]))
            _wait_until(lambda: service.fleet.remote_requeued >= 1,
                        message="the dead agent's item was never requeued")
            assert proc.wait(timeout=30) == 9
            gate.set()  # free the local worker to run the requeued item
            rows = ticket.result(timeout=120)
            assert rows == request([4.0]).experiment().run(
                SweepExecutor("serial"))
            assert service.fleet.retried >= 1
        finally:
            if proc.poll() is None:
                proc.kill()
            gate.set()
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


# ---------------------------------------------------------------------- #
# The multi-replica acceptance harness: real daemons, one store
# ---------------------------------------------------------------------- #
class TestMultiReplicaAcceptance:
    def _spawn_replica(self, store_root, replica_id):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--store",
             str(store_root), "--port", "0", "--workers", "2",
             "--lease-ttl-s", "10", "--replica-id", replica_id,
             "--heartbeat-s", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=_subprocess_env())
        line = proc.stdout.readline()
        match = re.search(r"http://([0-9.]+):(\d+)", line)
        assert match, "no announce line from %s: %r" % (replica_id, line)
        return proc, "http://%s:%s" % match.groups()

    def _simulated_alone(self, root, req):
        with Service(str(root), workers=2) as service:
            service.submit(req).result(timeout=120)
            return service.broker.total_simulated_batches

    def test_two_daemons_one_store_overlapping_streams(self, tmp_path):
        serial_a = request(SNRS_A).experiment().run(SweepExecutor("serial"))
        serial_b = request(SNRS_B).experiment().run(SweepExecutor("serial"))
        alone_a = self._simulated_alone(tmp_path / "alone-a",
                                        request(SNRS_A))
        alone_b = self._simulated_alone(tmp_path / "alone-b",
                                        request(SNRS_B))
        with Service(str(tmp_path / "union"), workers=2) as reference:
            reference.submit(request(SNRS_A)).result(timeout=120)
            reference.submit(request(SNRS_B)).result(timeout=120)
            union = reference.broker.total_simulated_batches

        shared = tmp_path / "shared"
        replica_1, url_1 = self._spawn_replica(shared, "replica-1")
        replica_2, url_2 = self._spawn_replica(shared, "replica-2")
        agent = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker", "--connect",
             url_1, "--name", "acceptance-agent", "--heartbeat-s", "0.5"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=_subprocess_env())
        try:
            _wait_until(
                lambda: "acceptance-agent" in fetch_json(
                    url_1 + "/v1/metrics")["cluster"]["remote_workers"][
                        "attached"],
                message="the remote agent never attached to replica 1")

            rows, failures = {}, []

            def client(url, snrs):
                try:
                    rows[snrs] = [event["row"] for event in
                                  stream_request(url, request(snrs))
                                  if event["event"] == "row"]
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append((snrs, exc))

            clients = [
                threading.Thread(target=client, args=(url_1, SNRS_A)),
                threading.Thread(target=client, args=(url_2, SNRS_B)),
            ]
            for worker in clients:
                worker.start()
            for worker in clients:
                worker.join(timeout=300)
                assert not worker.is_alive(), "an acceptance client hung"
            assert not failures, failures

            key = lambda row: row["snr_db"]  # noqa: E731
            assert sorted(rows[SNRS_A], key=key) == serial_a
            assert sorted(rows[SNRS_B], key=key) == serial_b

            metrics_1 = fetch_json(url_1 + "/v1/metrics")
            metrics_2 = fetch_json(url_2 + "/v1/metrics")
            simulated = (metrics_1["batches"]["simulated"]
                         + metrics_2["batches"]["simulated"])
            # The dedup contract: across both replicas every unique
            # batch is simulated exactly once — the union count — which
            # is strictly fewer than two independent serial runs.
            assert simulated == union
            assert simulated < alone_a + alone_b
            for metrics, replica in ((metrics_1, "replica-1"),
                                     (metrics_2, "replica-2")):
                cluster = metrics["cluster"]
                assert cluster["replica"] == replica
                assert cluster["leases"]["enabled"] is True
                assert cluster["leases"]["waiting"] == 0
            assert metrics_1["cluster"]["remote_workers"][
                "attached_total"] >= 1
        finally:
            for url in (url_1, url_2):
                try:
                    fetch_json(url + "/v1/shutdown", data={})
                except Exception:  # noqa: BLE001 - already gone is fine
                    pass
            for proc in (replica_1, replica_2, agent):
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=10)
            replica_1.stdout.close()
            replica_2.stdout.close()
        assert replica_1.returncode == 0
        assert replica_2.returncode == 0
        # The agent saw bye "stopped" from replica 1's drain and exited
        # cleanly rather than spinning on re-attach.
        assert agent.returncode == 0

    def test_lease_files_live_under_the_store_root(self, tmp_path):
        # The on-disk protocol is part of the contract: operators point
        # replicas at one directory and the leases ride along inside it.
        shared = tmp_path / "store"
        with Service(str(shared), workers=1, lease_ttl_s=30.0,
                     replica_id="r1") as service:
            gate = threading.Event()
            service.broker.lease_poll_s = 0.05
            req = request([4.0])
            ticket = service.submit(req)
            lease_root = shared / LEASE_DIRNAME
            ticket.result(timeout=60)
            assert lease_root.is_dir()
            # All leases released after delivery: only empty namespace
            # directories (and no lease files) remain.
            leftovers = [path for path in lease_root.rglob("*.lease")]
            assert leftovers == []
            gate.set()
