"""Tests for the characterisation broker.

The acceptance contract (ISSUE 5): two concurrent overlapping requests
produce bit-for-bit the rows of serial ``Experiment.run``s of each,
while simulating strictly fewer total batches than the serial pair —
plus coalescing, warm-store instant answers, partial resume, priority
ordering and capture-mode error rows.
"""

import threading
import time

import pytest

from repro.analysis.adaptive import StopRule, run_link_ber_batch
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.broker import CharacterisationBroker, ServiceError
from repro.service.fleet import WorkerFleet
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(snrs, **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


def serial_rows(req, store=None):
    return req.experiment(store=store).run(SweepExecutor("serial"))


def pump_until_done(broker, tickets, timeout=60.0):
    deadline = time.time() + timeout
    while not all(ticket.done.is_set() for ticket in tickets):
        assert time.time() < deadline, "broker did not finish in time"
        broker.pump(timeout=0.1)


@pytest.fixture()
def broker(tmp_path):
    with WorkerFleet(workers=2, backend="thread") as fleet:
        yield CharacterisationBroker(ResultStore(tmp_path / "store"), fleet)


class TestDedupAcceptance:
    def test_concurrent_overlap_matches_serial_with_fewer_batches(
            self, broker):
        # Two requests sharing two operating points, in flight together.
        req_a = request([4.0, 5.5, 8.0])
        req_b = request([5.5, 8.0, 9.5])
        ticket_a = broker.submit(req_a)
        ticket_b = broker.submit(req_b)
        pump_until_done(broker, [ticket_a, ticket_b])

        rows_a = ticket_a.result()
        rows_b = ticket_b.result()
        # Bit-for-bit the serial Experiment rows — packets spent and stop
        # reasons included.
        assert rows_a == serial_rows(req_a)
        assert rows_b == serial_rows(req_b)

        # Strictly fewer simulated batches than the serial pair: every
        # batch of the shared points ran exactly once.
        serial_batches = (sum(row["batches"] for row in rows_a)
                          + sum(row["batches"] for row in rows_b))
        assert broker.total_simulated_batches < serial_batches
        # Where the saving came from is accounted per ticket: a shared
        # batch reached B through the in-flight merge or the store, never
        # through a second simulation.
        progress_b = ticket_b.progress()
        saved = (progress_b["batches_cached"] + progress_b["batches_shared"])
        assert saved > 0
        for ticket in (ticket_a, ticket_b):
            progress = ticket.progress()
            assert (progress["batches_cached"] + progress["batches_shared"]
                    + progress["batches_simulated"]) == progress["batches"]

    def test_disjoint_requests_do_not_dedup(self, broker):
        ticket_a = broker.submit(request([4.0]))
        ticket_b = broker.submit(request([9.5]))
        pump_until_done(broker, [ticket_a, ticket_b])
        total = (sum(r["batches"] for r in ticket_a.result())
                 + sum(r["batches"] for r in ticket_b.result()))
        assert broker.total_simulated_batches == total


class TestCoalescing:
    def test_identical_inflight_requests_share_one_ticket(self, tmp_path):
        gate = threading.Event()

        def gated_runner(batch):
            gate.wait(30.0)
            return dict(run_link_ber_batch(batch))

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path), fleet,
                                            runner=gated_runner)
            first = broker.submit(request([4.0, 6.0]))
            second = broker.submit(request([4.0, 6.0]))
            assert second is first
            assert first.progress()["coalesced_submissions"] == 1
            gate.set()
            pump_until_done(broker, [first])
        assert first.result() == request([4.0, 6.0]).experiment(
            runner=gated_runner).run(SweepExecutor("serial"))


class TestStoreIntegration:
    def test_warm_request_completes_inside_submit(self, broker):
        req = request([4.0, 6.0])
        cold = broker.submit(req)
        pump_until_done(broker, [cold])
        submitted_before = broker.fleet.submitted

        warm = broker.submit(request([4.0, 6.0]))
        # No pumping: every batch came from the store synchronously.
        assert warm.done.is_set()
        assert warm is not cold  # completed tickets are not coalesced
        assert warm.result() == cold.result()
        progress = warm.progress()
        assert progress["batches_simulated"] == 0
        assert progress["batches_cached"] == progress["batches"]
        assert broker.fleet.submitted == submitted_before
        assert progress["time_to_first_row_s"] < 1.0

    def test_tighter_request_resumes_at_the_missing_batches(self, broker):
        loose = broker.submit(request([4.0, 6.0]))
        pump_until_done(broker, [loose])
        loose_batches = sum(r["batches"] for r in loose.result())

        tight_req = request([4.0, 6.0],
                            stop=StopRule(rel_half_width=0.2, min_errors=40,
                                          max_packets=40))
        tight = broker.submit(tight_req)
        pump_until_done(broker, [tight])
        assert tight.result() == serial_rows(tight_req)
        progress = tight.progress()
        tight_batches = sum(r["batches"] for r in tight.result())
        assert progress["batches_cached"] == loose_batches
        assert progress["batches_simulated"] == tight_batches - loose_batches

    def test_service_batches_land_in_the_store_for_experiments(self, broker):
        req = request([4.0, 6.0])
        ticket = broker.submit(req)
        pump_until_done(broker, [ticket])
        # The batch Experiment front door sees what the service filed.
        experiment = req.experiment(store=broker.store)
        assert experiment.run(SweepExecutor("serial")) == ticket.result()
        assert experiment.last_store_stats["misses"] == 0


class TestScheduling:
    def test_lower_priority_number_dispatches_first(self, tmp_path):
        order = []
        gate = threading.Event()

        def recording_runner(batch):
            gate.wait(30.0)
            order.append((batch.point.params["snr_db"], batch.index))
            return dict(run_link_ber_batch(batch))

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path), fleet,
                                            runner=recording_runner)
            bulk = broker.submit(request([4.0, 4.5], priority=5))
            time.sleep(0.1)  # the single worker now sits at the gate
            urgent = broker.submit(request([9.0], priority=0))
            gate.set()
            pump_until_done(broker, [bulk, urgent])
        # The urgent request's first batch ran before the bulk request's
        # queued (non-claimed) batches: batch-granular dispatch means the
        # big ask cannot head-of-line-block the small one.
        first_urgent = order.index((9.0, 0))
        queued_bulk = [i for i, (snr, _) in enumerate(order)
                       if snr in (4.0, 4.5)][1:]  # [0] was gated, not queued
        assert queued_bulk, "bulk request should have needed more batches"
        assert first_urgent < queued_bulk[0]

    def test_urgent_subscriber_promotes_a_queued_shared_batch(self, tmp_path):
        order = []
        gate = threading.Event()

        def recording_runner(batch):
            gate.wait(30.0)
            order.append((batch.point.params["snr_db"], batch.index))
            return dict(run_link_ber_batch(batch))

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path), fleet,
                                            runner=recording_runner)
            bulk = broker.submit(request([4.0, 4.5, 5.0], priority=5))
            time.sleep(0.1)  # the single worker holds 4.0's batch 0
            urgent = broker.submit(request([5.0], priority=0))
            gate.set()
            pump_until_done(broker, [bulk, urgent])
        # The shared 5.0 batch was already queued at priority 5; the
        # urgent subscription pulled it ahead of 4.5's queued batch.
        assert order[0] == (4.0, 0)
        assert order[1] == (5.0, 0)
        assert urgent.result() == serial_rows(request([5.0]))

    def test_progress_reports_per_point_sources(self, broker):
        ticket = broker.submit(request([4.0, 6.0]))
        pump_until_done(broker, [ticket])
        progress = ticket.progress()
        assert progress["points_done"] == progress["points_total"] == 2
        for point in progress["points"]:
            assert point["stop_reason"] is not None
            assert point["cached"] + point["simulated"] + point["shared"] \
                == point["batches"]


class TestFailure:
    def test_runner_error_stops_the_point_not_the_service(self, tmp_path):
        def flaky_runner(batch):
            if batch.point.params["snr_db"] == 6.0:
                raise RuntimeError("bad operating point")
            return dict(run_link_ber_batch(batch))

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path), fleet,
                                            runner=flaky_runner)
            ticket = broker.submit(request([4.0, 6.0]))
            pump_until_done(broker, [ticket])
        rows = ticket.result()
        by_snr = {row["snr_db"]: row for row in rows}
        assert by_snr[6.0]["stop_reason"] == "error"
        assert "RuntimeError: bad operating point" in by_snr[6.0]["error"]
        assert by_snr[4.0]["stop_reason"] is not None
        assert by_snr[4.0]["stop_reason"] != "error"
        # Error batches are never persisted: the failing point left no
        # records, the healthy one left all of its batches.
        req = request([4.0, 6.0])
        view = broker.store.view(req.store_digest(runner=flaky_runner))
        spawn_keys = {
            point.coordinates["snr_db"]:
                tuple(int(w) for w in point.seed_sequence.spawn_key)
            for point in req.experiment().spec()
        }
        assert view.known_batches(spawn_keys[6.0]) == []
        assert len(view.known_batches(spawn_keys[4.0])) \
            == by_snr[4.0]["batches"]

    def test_shutdown_fails_inflight_tickets(self, tmp_path):
        gate = threading.Event()

        def gated_runner(batch):
            gate.wait(5.0)
            return dict(run_link_ber_batch(batch))

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path), fleet,
                                            runner=gated_runner)
            ticket = broker.submit(request([4.0]))
            broker.shutdown("maintenance window")
            gate.set()
        assert ticket.done.is_set()
        with pytest.raises(ServiceError, match="maintenance window"):
            ticket.result()
