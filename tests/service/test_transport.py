"""Tests for the shared-memory worker transport.

Covers the :class:`~repro.service.transport.ShmChannel` wire contract
(round trips, copy-out on receive, ring wrap-around, oversize inline
fallback, plain-pipe degradation) and its integration with the process
fleet: array payloads travel through the rings, a worker death replaces
the worker's segment, and no segment outlives the fleet.
"""

import multiprocessing
import os
import threading
import time

import numpy as np
import pytest

from repro.analysis.adaptive import run_link_ber_batch
from repro.service.fleet import WorkerFleet
from repro.service.transport import (
    DEFAULT_RING_BYTES,
    PipeChannel,
    ShmChannel,
    attach_channel,
    create_channel,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="process-backend tests pin the fork start method",
)


@pytest.fixture
def channel_pair():
    """An in-process parent/child ShmChannel pair over one small segment."""
    parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
    parent = ShmChannel.create(parent_conn, 1 << 12)
    child = ShmChannel.attach(child_conn, parent.name, 1 << 12)
    yield parent, child
    child.close()
    parent.close()
    parent_conn.close()
    child_conn.close()


class TestShmChannel:
    def test_round_trip_preserves_arrays_both_directions(self, channel_pair):
        parent, child = channel_pair
        payload = {
            "f64": np.arange(128, dtype=np.float64),
            "c64": np.full(33, 1 + 2j, dtype=np.complex64),
            "text": "header-only data",
            "count": 7,
        }
        parent.send(payload)
        received = child.recv()
        assert received["text"] == "header-only data"
        assert received["count"] == 7
        for key in ("f64", "c64"):
            assert received[key].dtype == payload[key].dtype
            np.testing.assert_array_equal(received[key], payload[key])
        child.send(received)
        echoed = parent.recv()
        np.testing.assert_array_equal(echoed["f64"], payload["f64"])

    def test_recv_copies_out_of_the_ring(self, channel_pair):
        # A later send wrapping over the same ring region must not mutate
        # an already-received array: recv copies before unpickling.
        parent, child = channel_pair
        first = np.arange(375, dtype=np.float64)   # 3000 B of a 4096 B ring
        parent.send(first)
        held = child.recv()
        parent.send(np.zeros(375, dtype=np.float64))  # wraps onto offset 0
        child.recv()
        np.testing.assert_array_equal(held, first)

    def test_ring_wrap_around_many_messages(self, channel_pair):
        parent, child = channel_pair
        for value in range(64):
            parent.send(np.full(300, value, dtype=np.float64))
            received = child.recv()
            assert received.shape == (300,)
            assert (received == value).all()

    def test_oversize_buffer_falls_back_inline(self, channel_pair):
        parent, child = channel_pair
        big = np.arange(1 << 10, dtype=np.float64)  # 8 KiB > the 4 KiB ring
        received = {}

        def reader():  # a pipe has a finite buffer: read concurrently
            received["value"] = child.recv()

        thread = threading.Thread(target=reader)
        thread.start()
        parent.send({"big": big})
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        np.testing.assert_array_equal(received["value"]["big"], big)

    def test_parent_close_unlinks_the_segment(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        parent = ShmChannel.create(parent_conn, 1 << 12)
        name = parent.name
        parent.close()
        with pytest.raises(FileNotFoundError):
            ShmChannel.attach(child_conn, name, 1 << 12)
        parent_conn.close()
        child_conn.close()


class TestFallback:
    def test_zero_ring_bytes_negotiates_a_pipe_channel(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        channel, shm_name = create_channel(parent_conn, 0)
        assert isinstance(channel, PipeChannel)
        assert shm_name is None
        peer = attach_channel(child_conn, shm_name)
        assert isinstance(peer, PipeChannel)
        channel.send({"x": np.arange(4.0)})
        np.testing.assert_array_equal(peer.recv()["x"], np.arange(4.0))
        channel.close()
        peer.close()
        parent_conn.close()
        child_conn.close()

    def test_shm_channel_is_the_default(self):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=True)
        channel, shm_name = create_channel(parent_conn, DEFAULT_RING_BYTES)
        assert isinstance(channel, ShmChannel)
        assert shm_name == channel.name
        channel.close()
        parent_conn.close()
        child_conn.close()


# Module-level runners so the fork-started workers resolve them by
# reference.
def _array_echo_runner(batch):
    return {"echo": batch["data"] * 2.0, "tag": batch["tag"]}


def _kill_once_array_runner(batch):
    """Die abruptly on the first attempt, return an array on the retry."""
    marker = batch["kill_marker"]
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("died")
        os._exit(13)
    return {"echo": batch["data"] + 1.0}


class _Batch(dict):
    def label(self):
        return "transport-batch-%s" % (self.get("tag"),)


def _drain(fleet, expected, timeout=60.0):
    results = {}
    deadline = time.time() + timeout
    while len(results) < expected:
        remaining = deadline - time.time()
        assert remaining > 0, "timed out with %d/%d results" % (
            len(results), expected)
        for item_id, result in fleet.poll(timeout=min(remaining, 0.5)):
            results[item_id] = result
    return results


def _shm_segments():
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("psm_")}
    except OSError:  # pragma: no cover - non-Linux shm layout
        return set()


class TestFleetTransport:
    def test_array_payloads_round_trip_through_the_rings(self):
        before = _shm_segments()
        with WorkerFleet(workers=2, backend="process",
                         mp_context="fork") as fleet:
            assert all(isinstance(channel, ShmChannel)
                       for channel in fleet._channels.values())
            for tag in range(6):
                fleet.submit(
                    "item-%d" % tag, _array_echo_runner,
                    _Batch(tag=tag, data=np.full(2048, float(tag))))
            results = _drain(fleet, expected=6)
        for tag in range(6):
            row = results["item-%d" % tag]
            assert row["tag"] == tag
            np.testing.assert_array_equal(
                row["echo"], np.full(2048, 2.0 * tag))
        assert _shm_segments() == before

    def test_worker_death_recreates_the_segment_and_retries(self, tmp_path):
        before = _shm_segments()
        with WorkerFleet(workers=1, backend="process", mp_context="fork",
                         max_retries=2) as fleet:
            (original_segment,) = [channel.name
                                   for channel in fleet._channels.values()]
            marker = str(tmp_path / "died-once")
            fleet.submit(
                "kill-me", _kill_once_array_runner,
                _Batch(tag="kill", kill_marker=marker,
                       data=np.arange(100, dtype=np.float64)))
            results = _drain(fleet, expected=1)
            replacement_segments = [channel.name
                                    for channel in fleet._channels.values()]
            assert fleet.retried == 1
            assert fleet.restarted >= 1
            assert original_segment not in replacement_segments
        np.testing.assert_array_equal(
            results["kill-me"]["echo"], np.arange(100, dtype=np.float64) + 1.0)
        assert _shm_segments() == before

    def test_results_match_in_process_reference(self):
        from repro.analysis.adaptive import MeasurementBatch
        from repro.analysis.sweep import SweepSpec

        spec = SweepSpec({"rate_mbps": [24], "snr_db": [5.0, 7.0]},
                         constants={"packet_bits": 600, "batch_size": 4},
                         seed=23)
        items = [("point-%d" % point.index, MeasurementBatch(point, 0, 4))
                 for point in spec.points()]
        with WorkerFleet(workers=2, backend="process",
                         mp_context="fork") as fleet:
            for item_id, batch in items:
                fleet.submit(item_id, run_link_ber_batch, batch)
            results = _drain(fleet, expected=len(items))
        assert results == {item_id: dict(run_link_ber_batch(batch))
                           for item_id, batch in items}
