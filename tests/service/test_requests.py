"""Tests for CharacterisationRequest: validation, identity, round-trips."""

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepExecutor, SweepSpec
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(**overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": [4.0, 6.0]},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


class TestValidation:
    def test_scenario_must_be_a_scenario(self):
        with pytest.raises(TypeError, match="Scenario"):
            request(scenario={"decoder": "bcjr"})

    def test_scenario_must_be_declarative(self):
        with pytest.raises(ValueError, match="decoder"):
            request(scenario=Scenario(decoder=object()))

    def test_axes_must_be_nonempty(self):
        with pytest.raises(ValueError, match="axes"):
            request(axes={})
        with pytest.raises(ValueError, match="axes"):
            request(axes={"snr_db": []})

    def test_stop_must_be_a_stop_rule(self):
        with pytest.raises(TypeError, match="StopRule"):
            request(stop={"max_packets": 16})

    def test_seed_must_be_a_plain_int(self):
        with pytest.raises(TypeError, match="seed"):
            request(seed=None)
        with pytest.raises(TypeError, match="seed"):
            request(seed=True)

    def test_unbounded_request_is_rejected(self):
        with pytest.raises(ValueError, match="max_packets"):
            request(stop=StopRule(rel_half_width=0.3))
        # ... unless a budget bounds it globally.
        request(stop=StopRule(rel_half_width=0.3), budget=64)

    def test_priority_and_deadline_validation(self):
        with pytest.raises(TypeError, match="priority"):
            request(priority="high")
        with pytest.raises(ValueError, match="deadline_s"):
            request(deadline_s=0)

    def test_batch_packets_must_be_positive(self):
        with pytest.raises(ValueError, match="batch_packets"):
            request(batch_packets=0)


class TestIdentity:
    def test_identical_requests_share_a_key(self):
        assert request().request_key() == request().request_key()
        assert request() == request()
        assert hash(request()) == hash(request())

    def test_scheduling_hints_do_not_change_the_key(self):
        plain = request()
        assert request(priority=7).request_key() == plain.request_key()
        assert request(deadline_s=1.5).request_key() == plain.request_key()

    def test_everything_that_decides_rows_changes_the_key(self):
        plain = request().request_key()
        assert request(seed=24).request_key() != plain
        assert request(axes={"rate_mbps": [24],
                             "snr_db": [4.0]}).request_key() != plain
        assert request(stop=STOP.replace(max_packets=32)).request_key() != plain
        assert request(batch_packets=8).request_key() != plain
        assert request(budget=64).request_key() != plain
        assert request(
            scenario=SCENARIO.replace(packet_bits=1704)).request_key() != plain

    def test_overlapping_requests_share_a_store_namespace(self):
        # Different axis values, same constants/seed/quantum: the store
        # namespace must coincide, or dedup across requests cannot work.
        a = request(axes={"rate_mbps": [24], "snr_db": [4.0, 6.0]})
        b = request(axes={"rate_mbps": [24], "snr_db": [6.0, 8.0]})
        assert a.store_digest() == b.store_digest()
        assert a.request_key() != b.request_key()


class TestNumpyCanonicalisation:
    def test_numpy_axes_constants_and_seed_hash_like_plain_python(self):
        import numpy as np

        numpy_request = request(
            axes={"rate_mbps": np.array([24]),
                  "snr_db": np.arange(4.0, 8.0, 2.0)},
            constants={"batch_size": np.int64(4)},
            seed=np.int64(23),
        )
        plain_request = request(
            axes={"rate_mbps": [24], "snr_db": [4.0, 6.0]},
            constants={"batch_size": 4},
            seed=23,
        )
        # request_key() requires a JSON-able canonical form; numpy values
        # must have been normalised, and to the *same* identity as their
        # plain Python spellings (value types are part of the key).
        assert numpy_request.request_key() == plain_request.request_key()
        assert numpy_request.store_digest() == plain_request.store_digest()

    def test_tuple_values_canonicalise_to_lists(self):
        # Tuples must not survive into the sweep: the request key (JSON)
        # cannot tell (4.0, 6.0) from [4.0, 6.0], so if the seed
        # derivation could, two coalescing requests would disagree on
        # their rows.  Canonicalising makes them literally the same ask.
        a = request(axes={"rate_mbps": [24], "snr_db": (4.0, 6.0)},
                    constants={"batch_size": 4, "taps": (1, 2)})
        b = request(axes={"rate_mbps": [24], "snr_db": [4.0, 6.0]},
                    constants={"batch_size": 4, "taps": [1, 2]})
        assert a.request_key() == b.request_key()
        assert a.axes == b.axes
        assert a.constants == b.constants
        assert a.store_digest() == b.store_digest()


class TestRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        original = request(priority=2, deadline_s=30.0, budget=64)
        rebuilt = CharacterisationRequest.from_dict(original.to_dict())
        assert rebuilt.request_key() == original.request_key()
        assert rebuilt.priority == 2
        assert rebuilt.deadline_s == 30.0
        assert rebuilt.stop == original.stop

    def test_from_dict_accepts_plain_json_shapes(self):
        rebuilt = CharacterisationRequest.from_dict({
            "scenario": {"decoder": "bcjr", "packet_bits": 600},
            "axes": {"rate_mbps": [24], "snr_db": [4.0, 6.0]},
            "stop": {"rel_half_width": 0.35, "min_errors": 15,
                     "max_packets": 16},
            "constants": {"batch_size": 4},
            "seed": 23,
            "batch_packets": 4,
        })
        assert rebuilt.request_key() == request().request_key()

    def test_from_dict_rejects_unknown_fields(self):
        payload = request().to_dict()
        payload["urgency"] = 11
        with pytest.raises(ValueError, match="urgency"):
            CharacterisationRequest.from_dict(payload)

    def test_from_dict_requires_the_core_fields(self):
        with pytest.raises(ValueError, match="scenario"):
            CharacterisationRequest.from_dict({"seed": 1})


class TestExperimentEquivalence:
    def test_request_experiment_matches_a_hand_built_one(self):
        ours = request().experiment().run(SweepExecutor("serial"))
        theirs = Experiment(
            scenario=SCENARIO,
            sweep=SweepSpec({"rate_mbps": [24], "snr_db": [4.0, 6.0]},
                            constants={"batch_size": 4}, seed=23),
            stop=STOP,
            batch_packets=4,
        ).run(SweepExecutor("serial"))
        assert ours == theirs
