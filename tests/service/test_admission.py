"""Tests for the broker's production hardening (ISSUE 7).

Admission control (in-flight caps and per-client quotas), typed
saturation errors with honest retry hints, client-initiated cancellation
with the released-batch ledger, graceful drain, and the metrics
document.  The invariant under test throughout: none of these mechanisms
may ever change a surviving request's rows — they only decide *whether*
work is admitted and *when* abandoned work is handed back.
"""

import threading
import time

import pytest

from repro.analysis.adaptive import StopRule, run_link_ber_batch
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.broker import (CharacterisationBroker, ClientQuota,
                                  ServiceError, ServiceSaturated)
from repro.service.fleet import WorkerFleet
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)


def request(snrs=(4.0, 6.0), **overrides):
    kwargs = dict(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


def pump_until_done(broker, tickets, timeout=60.0):
    deadline = time.time() + timeout
    while not all(ticket.done.is_set() for ticket in tickets):
        assert time.time() < deadline, "broker did not finish in time"
        broker.pump(timeout=0.1)


def gated(gate):
    """A runner parked at ``gate`` — same bytes as the link runner."""
    def gated_runner(batch):
        gate.wait(30.0)
        return dict(run_link_ber_batch(batch))
    return gated_runner


class TestTokenBucket:
    def test_charges_refills_and_rejects_deterministically(self):
        bucket = ClientQuota(packets_per_s=10, burst_packets=20).bucket()
        # A full bucket affords its burst exactly once.
        assert bucket.try_take(20, now=0.0) == 0.0
        # Short 5 tokens: the wait is the refill time for the shortfall.
        assert bucket.try_take(5, now=0.0) == pytest.approx(0.5)
        # One second later 10 tokens refilled; 5 are affordable again.
        assert bucket.try_take(5, now=1.0) == 0.0
        # Above the burst is never affordable, whatever the level.
        assert bucket.try_take(21, now=100.0) is None

    def test_quota_validates_its_shape(self):
        with pytest.raises(ValueError, match="packets_per_s"):
            ClientQuota(packets_per_s=0, burst_packets=10)
        with pytest.raises(ValueError, match="burst_packets"):
            ClientQuota(packets_per_s=1, burst_packets=0)


class TestPacketCost:
    def test_cost_is_the_tighter_of_budget_and_grid_cap(self):
        assert request([4.0, 6.0]).packet_cost() == 2 * STOP.max_packets
        assert request([4.0, 6.0], budget=5).packet_cost() == 5
        assert request([4.0], budget=1000).packet_cost() == STOP.max_packets


class TestSaturation:
    def test_inflight_batch_cap_rejects_with_retry_hint(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate),
                max_inflight_batches=1)
            held = broker.submit(request([4.0]))
            with pytest.raises(ServiceSaturated) as excinfo:
                broker.submit(request([6.0]))
            assert excinfo.value.retry_after_s >= 1.0
            assert broker.rejected_saturated == 1
            # An identical ask coalesces for free even at saturation.
            assert broker.submit(request([4.0])) is held
            # After the in-flight work drains, the retry succeeds and its
            # rows are bit-for-bit what an unloaded run produces.
            gate.set()
            pump_until_done(broker, [held])
            retried = broker.submit(request([6.0]))
            pump_until_done(broker, [retried])
        assert retried.result() == request([6.0]).experiment(
            runner=gated(gate)).run(SweepExecutor("serial"))
        assert held.result() == request([4.0]).experiment(
            runner=gated(gate)).run(SweepExecutor("serial"))

    def test_request_cap_rejects_the_second_request(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate),
                max_requests=1)
            held = broker.submit(request([4.0]))
            with pytest.raises(ServiceSaturated, match="request"):
                broker.submit(request([6.0]))
            gate.set()
            pump_until_done(broker, [held])
            # Capacity freed: the same ask is now admitted.
            pump_until_done(broker, [broker.submit(request([6.0]))])

    def test_caps_must_be_positive(self, tmp_path):
        with WorkerFleet(workers=1, backend="thread") as fleet:
            store = ResultStore(tmp_path / "store")
            with pytest.raises(ValueError, match="max_inflight_batches"):
                CharacterisationBroker(store, fleet, max_inflight_batches=0)
            with pytest.raises(ValueError, match="max_requests"):
                CharacterisationBroker(store, fleet, max_requests=0)


class TestClientQuota:
    def test_quota_is_charged_per_client(self, tmp_path):
        cost = request([4.0, 6.0]).packet_cost()  # 32 packets
        with WorkerFleet(workers=2, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet,
                quota=ClientQuota(packets_per_s=1, burst_packets=cost))
            first = broker.submit(request([4.0, 6.0], client_id="alice"))
            # Alice's bucket is empty; her next distinct ask must wait.
            with pytest.raises(ServiceSaturated, match="alice") as excinfo:
                broker.submit(request([5.0, 7.0], client_id="alice"))
            assert excinfo.value.retry_after_s > 0
            assert broker.rejected_quota == 1
            # Bob has his own bucket and is admitted immediately.
            second = broker.submit(request([5.0, 7.0], client_id="bob"))
            pump_until_done(broker, [first, second])
        assert second.result() == request([5.0, 7.0]).experiment(
        ).run(SweepExecutor("serial"))

    def test_ask_above_the_burst_is_never_admissible(self, tmp_path):
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet,
                quota=(1000.0, 8.0))  # tuple form coerces to ClientQuota
            with pytest.raises(ServiceError, match="never"):
                broker.submit(request([4.0, 6.0], client_id="alice"))
            assert broker.rejected_quota == 1
            # A budget below the burst brings the same grid under quota.
            affordable = broker.submit(request([4.0, 6.0], budget=8,
                                               client_id="alice"))
            pump_until_done(broker, [affordable])


class TestCancellation:
    def test_cancel_releases_exclusive_unstarted_batches(self, tmp_path):
        # The ISSUE acceptance shape: two overlapping requests share the
        # 5.5 batch through the in-flight merge; cancelling the second
        # frees only its exclusive un-started 8.0 work, and the survivor
        # still produces bit-for-bit serial rows.
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            survivor = broker.submit(request([4.0, 5.5]))
            time.sleep(0.1)  # the single worker now holds 4.0's batch 0
            doomed = broker.submit(request([5.5, 8.0]))
            assert doomed.progress()["batches_shared"] == 1

            assert broker.cancel(doomed.key) is True
            # The ledger shows exactly the exclusive queued batch freed.
            assert broker.released_batches == 1
            assert fleet.stats()["cancelled"] == 1
            assert broker.cancelled_requests == 1
            assert doomed.cancelled and doomed.done.is_set()
            with pytest.raises(ServiceError, match="cancelled by client"):
                doomed.result()
            events = list(doomed.stream())
            assert events[-1]["event"] == "cancelled"

            # Cancelling again (or an unknown key) is a clean no-op.
            assert broker.cancel(doomed.key) is False
            assert broker.cancel("no-such-request") is False

            gate.set()
            pump_until_done(broker, [survivor])
        assert survivor.result() == request([4.0, 5.5]).experiment(
            runner=gated(gate)).run(SweepExecutor("serial"))

    def test_coalesced_interest_protects_the_shared_ticket(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            ticket = broker.submit(request([4.0]))
            twin = broker.submit(request([4.0]))
            assert twin is ticket and ticket.interest == 2
            # One consumer hanging up must not kill its twin's stream.
            assert ticket.cancel() is True
            assert not ticket.cancelled
            gate.set()
            pump_until_done(broker, [ticket])
        assert ticket.result() == request([4.0]).experiment(
            runner=gated(gate)).run(SweepExecutor("serial"))
        assert broker.cancelled_requests == 0

    def test_last_interest_unit_releases_for_real(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            ticket = broker.submit(request([4.0, 6.0]))
            broker.submit(request([4.0, 6.0]))  # interest 2
            assert ticket.cancel() is True
            assert ticket.cancel() is True      # last unit: released
            assert ticket.cancelled
            assert broker.cancelled_requests == 1
            gate.set()

    def test_fused_group_is_withdrawn_only_when_fully_orphaned(
            self, tmp_path):
        # With the built-in link runner a round's same-shape batches ride
        # one fused fleet item; cancelling their only subscriber while
        # the item is still queued must withdraw it and release every
        # member batch in the ledger.
        blocker_gate = threading.Event()

        def blocker(_batch):
            blocker_gate.wait(30.0)
            return {"errors": 0, "trials": 1}

        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path / "store"),
                                            fleet)
            fleet.submit("blocker", blocker, None)
            time.sleep(0.1)  # the single worker is parked on the blocker
            ticket = broker.submit(request([4.0, 6.0]))
            dispatched = ticket.progress()["batches_simulated"]
            assert dispatched == 2

            assert broker.cancel(ticket.key) is True
            assert broker.released_batches == dispatched
            assert broker.status()["inflight_batches"] == 0
            assert fleet.stats()["cancelled"] >= 1
            blocker_gate.set()
            # The stray blocker result must not confuse the broker.
            broker.pump(timeout=1.0)

    def test_executing_batch_still_lands_in_the_store(self, tmp_path):
        # Work a worker already holds is never wasted: after the only
        # subscriber cancels, the executing batch completes, persists,
        # and a later identical request replays it from the store.
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            ticket = broker.submit(request([4.0]))
            time.sleep(0.1)  # batch 0 is executing
            assert broker.cancel(ticket.key) is True
            gate.set()
            deadline = time.time() + 30.0
            while fleet.stats()["completed"] < 1:
                assert time.time() < deadline
                broker.pump(timeout=0.1)
            broker.pump(timeout=0.2)
            warm = broker.submit(request([4.0]))
            # The executing batch was persisted on completion, so the
            # retry resumes past it instead of re-simulating it.
            assert warm.progress()["batches_cached"] >= 1
            pump_until_done(broker, [warm])
        assert warm.result() == request([4.0]).experiment(
            runner=gated(gate)).run(SweepExecutor("serial"))


class TestDrainAndAdmissionGate:
    def test_drain_finishes_inflight_and_blocks_new_work(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            ticket = broker.submit(request([4.0]))
            broker.close_admission()
            with pytest.raises(ServiceError, match="draining"):
                broker.submit(request([6.0]))
            # Someone must keep pumping while drain blocks (the Service
            # pump thread, in the assembled service).
            pump = threading.Thread(
                target=pump_until_done, args=(broker, [ticket]), daemon=True)
            pump.start()
            gate.set()
            assert broker.drain(timeout=30.0) is True
            pump.join(timeout=30.0)
            assert ticket.result() == request([4.0]).experiment(
                runner=gated(gate)).run(SweepExecutor("serial"))
            # Re-opening admission restores normal service.
            broker.open_admission()
            pump_until_done(broker, [broker.submit(request([6.0]))])

    def test_drain_deadline_reports_failure(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate))
            broker.submit(request([4.0]))
            assert broker.drain(timeout=0.2) is False
            gate.set()


class TestMetrics:
    def test_metrics_exports_every_ledger(self, tmp_path):
        gate = threading.Event()
        with WorkerFleet(workers=2, backend="thread") as fleet:
            broker = CharacterisationBroker(
                ResultStore(tmp_path / "store"), fleet, runner=gated(gate),
                max_inflight_batches=64, max_requests=8,
                quota=ClientQuota(packets_per_s=1000, burst_packets=1000))
            gate.set()
            done = broker.submit(request([4.0], client_id="alice"))
            pump_until_done(broker, [done])
            gate.clear()
            # Three batches onto two workers: one stays queued, so the
            # cancel below has something to release into the ledger.
            held = broker.submit(request([6.0, 8.0, 9.0]))
            time.sleep(0.1)
            broker.cancel(held.key)
            gate.set()

            metrics = broker.metrics()
        admission = metrics["admission"]
        assert admission["open"] is True
        assert admission["max_inflight_batches"] == 64
        assert admission["max_requests"] == 8
        assert admission["rejected_saturated"] == 0
        assert admission["retry_after_s"] >= 1.0
        assert "alice" in admission["quota"]["buckets"]
        requests = metrics["requests"]
        assert requests == {"in_flight": 0, "completed": 1, "failed": 0,
                            "cancelled": 1, "admitted": 2}
        batches = metrics["batches"]
        assert batches["simulated"] >= 1
        assert batches["released"] >= 1
        assert batches["delivered"] <= (batches["cached"] + batches["shared"]
                                        + batches["simulated"]
                                        + batches["leased"])
        assert metrics["fleet"]["workers"] == 2
        for stats in metrics["stores"].values():
            assert set(stats) == {"records", "hits", "misses"}

    def test_status_reports_admission_state(self, tmp_path):
        with WorkerFleet(workers=1, backend="thread") as fleet:
            broker = CharacterisationBroker(ResultStore(tmp_path / "store"),
                                            fleet)
            broker.close_admission()
            status = broker.status()
        assert status["admission_open"] is False
        assert status["rejected_saturated"] == 0
        assert status["cancelled_requests"] == 0
