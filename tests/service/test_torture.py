"""Concurrent-client torture test for the hardened service front door.

N clients stream overlapping requests over HTTP while one client hangs
up mid-stream and another request is cancelled explicitly.  The
surviving clients' rows must be bit-for-bit what a serial
``Experiment.run`` produces — cancellation and disconnects may only
decide *when* abandoned work is handed back, never what anyone else's
bytes are — and the broker/fleet ledgers must balance: nothing lost,
nothing double-freed.
"""

import http.client
import json
import threading
import time

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service.api import Service, serve, stream_request
from repro.service.requests import CharacterisationRequest

SCENARIO = Scenario(decoder="bcjr", packet_bits=600)
STOP = StopRule(rel_half_width=0.35, min_errors=15, max_packets=16)

#: Five surviving clients with overlapping SNR windows (plenty of shared
#: batches), one disconnecting client and one explicitly cancelled one —
#: both overlap the survivors *and* own exclusive points, so releasing
#: their claims exercises the shared/exclusive split.
SURVIVOR_WINDOWS = [
    [4.0, 5.5],
    [5.5, 7.0],
    [7.0, 8.5],
    [4.0, 7.0],
    [5.5, 8.5],
]
DISCONNECT_WINDOW = [5.5, 9.5, 10.0]
CANCEL_WINDOW = [7.0, 3.0, 9.0]


def request(snrs):
    return CharacterisationRequest(
        scenario=SCENARIO,
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=STOP,
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )


def serial_rows(snrs):
    return request(snrs).experiment().run(SweepExecutor("serial"))


def test_torture_survivors_bitforbit_and_ledgers_balance(tmp_path):
    store = ResultStore(tmp_path / "store")
    with Service(store, workers=4) as service:
        server = serve(service, port=0, heartbeat_s=0.1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base_url = "http://%s:%d" % (host, port)
        try:
            results = {}
            failures = []

            def stream_client(index, snrs):
                try:
                    rows = [event["row"]
                            for event in stream_request(base_url,
                                                        request(snrs))
                            if event["event"] == "row"]
                    results[index] = rows
                except Exception as exc:  # pragma: no cover - diagnostics
                    failures.append((index, exc))

            def disconnect_client():
                try:
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    conn.request(
                        "POST", "/v1/characterise",
                        body=json.dumps(request(DISCONNECT_WINDOW).to_dict()),
                        headers={"Content-Type": "application/json"})
                    response = conn.getresponse()
                    assert json.loads(
                        response.fp.readline())["event"] == "accepted"
                    # Hang up mid-stream; both the response and the
                    # connection hold the socket.
                    response.close()
                    conn.close()
                except Exception as exc:  # pragma: no cover - diagnostics
                    failures.append(("disconnect", exc))

            def cancelling_client():
                try:
                    ticket = service.submit(request(CANCEL_WINDOW))
                    time.sleep(0.05)
                    ticket.cancel()
                except Exception as exc:  # pragma: no cover - diagnostics
                    failures.append(("cancel", exc))

            threads = [threading.Thread(target=stream_client, args=(i, snrs))
                       for i, snrs in enumerate(SURVIVOR_WINDOWS)]
            threads.append(threading.Thread(target=disconnect_client))
            threads.append(threading.Thread(target=cancelling_client))
            for worker in threads:
                worker.start()
            for worker in threads:
                worker.join(timeout=120)
                assert not worker.is_alive(), "a client thread hung"
            assert not failures, failures

            # Every surviving client's rows are bit-for-bit serial —
            # whatever the disconnect and the cancel released around them.
            for index, snrs in enumerate(SURVIVOR_WINDOWS):
                assert sorted(results[index], key=lambda r: r["snr_db"]) \
                    == serial_rows(snrs), "client %d diverged" % index

            # Let the abandoned requests' reaped/running work settle.
            deadline = time.time() + 60
            while service.broker.status()["inflight_batches"]:
                assert time.time() < deadline, "in-flight work never settled"
                time.sleep(0.05)

            # The ledgers balance: every fleet item was completed exactly
            # once or withdrawn exactly once — no item lost, none freed
            # twice.
            stats = service.fleet.stats()
            assert stats["pending"] == 0
            assert stats["submitted"] == stats["completed"] \
                + stats["cancelled"]
            assert stats["queued"] == 0 and stats["executing"] == 0
            status = service.broker.status()
            assert status["in_flight_requests"] == 0
            # Released batches and withdrawn fleet items agree: a fused
            # item frees several member batches, so released >= cancelled
            # and neither can be non-zero without the other.
            metrics = service.broker.metrics()
            assert metrics["batches"]["released"] >= stats["cancelled"]
            assert (metrics["batches"]["released"] == 0) \
                == (stats["cancelled"] == 0)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)

    # The store is coherent after the chaos: a warm re-ask of every
    # surviving window replays from disk bit-for-bit.
    with Service(store, workers=2) as service:
        for snrs in SURVIVOR_WINDOWS:
            ticket = service.submit(request(snrs))
            assert ticket.result(timeout=60) == serial_rows(snrs)
            assert ticket.progress()["batches_simulated"] == 0
