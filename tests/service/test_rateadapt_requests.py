"""Rate-adaptation requests through the service front door.

The request layer gained two dispatch points for the closed-loop
subsystem: scenario dicts tagged ``"kind": "rate_adapt"`` rebuild a
:class:`RateAdaptScenario`, and the named runner ``"rate_adapt"`` resolves
to the closed-loop chunk-runner.  These tests pin the serialisation
contract (old request keys unchanged, new ones distinct) and that a
service-run characterisation matches the in-process experiment bit for
bit.
"""

import json

import pytest

from repro.analysis.adaptive import StopRule
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.mac.rateadapt import RateAdaptScenario
from repro.mac.rateadapt.closedloop import run_rate_adapt_batch
from repro.service.api import Service
from repro.service.requests import (CharacterisationRequest, resolve_runner,
                                    scenario_from_dict)


def rate_adapt_request(**overrides):
    kwargs = dict(
        scenario=RateAdaptScenario(decoder="bcjr", packet_bits=200,
                                   snr_db=10.0, doppler_hz=None),
        axes={"doppler_hz": [10.0, 40.0]},
        stop=StopRule(rel_half_width=None, min_errors=0, max_packets=8),
        seed=3,
        batch_packets=4,
        runner="rate_adapt",
    )
    kwargs.update(overrides)
    return CharacterisationRequest(**kwargs)


class TestResolveRunner:
    def test_none_means_the_default_link_runner(self):
        assert resolve_runner(None) is None

    def test_rate_adapt_resolves_to_the_closedloop_runner(self):
        assert resolve_runner("rate_adapt") is run_rate_adapt_batch

    def test_unknown_names_are_rejected(self):
        with pytest.raises(ValueError, match="unknown runner"):
            resolve_runner("warp_speed")


class TestScenarioFromDict:
    def test_rate_adapt_kind_rebuilds_the_right_class(self):
        scenario = RateAdaptScenario(doppler_hz=20.0)
        rebuilt = scenario_from_dict(scenario.to_dict())
        assert isinstance(rebuilt, RateAdaptScenario)
        assert rebuilt == scenario

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            scenario_from_dict({"kind": "quantum_link"})


class TestRequestSerialisation:
    def test_round_trip_preserves_key_and_scenario_class(self):
        request = rate_adapt_request()
        data = json.loads(json.dumps(request.to_dict()))
        rebuilt = CharacterisationRequest.from_dict(data)
        assert isinstance(rebuilt.scenario, RateAdaptScenario)
        assert rebuilt.request_key() == request.request_key()

    def test_default_runner_is_omitted_from_the_wire_form(self):
        # Pre-existing (link BER) requests must keep their serialised form
        # and therefore their request keys.
        from repro.analysis.scenario import Scenario

        request = CharacterisationRequest(
            scenario=Scenario(), axes={"snr_db": [5.0]},
            stop=StopRule(max_packets=64), seed=1)
        assert "runner" not in request.to_dict()
        assert request.runner is None

    def test_runner_is_part_of_the_request_key(self):
        with_runner = rate_adapt_request()
        data = with_runner.to_dict()
        assert data["runner"] == "rate_adapt"
        # Same shape, different runner -> different question -> new key.
        without = dict(data)
        without.pop("runner")
        assert CharacterisationRequest.from_dict(without).request_key() \
            != with_runner.request_key()

    def test_invalid_runner_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown runner"):
            rate_adapt_request(runner="warp_speed")

    def test_experiment_resolves_the_named_runner(self):
        assert rate_adapt_request().experiment().runner \
            is run_rate_adapt_batch


class TestServiceRateAdapt:
    def test_service_rows_match_the_inprocess_experiment(self, tmp_path):
        request = rate_adapt_request()
        baseline = request.experiment(
            store=ResultStore(tmp_path / "baseline")).run(
            SweepExecutor("serial"))
        with Service(ResultStore(tmp_path / "service"), workers=2) as service:
            result = service.characterise(request, timeout=300)
        served = json.loads(json.dumps(result, default=_json_listify))
        expected = json.loads(json.dumps(baseline, default=_json_listify))
        assert served == expected


def _json_listify(value):
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    raise TypeError("unserialisable %r" % type(value))
