"""Shared fixtures for the test suite.

Decoding is the expensive part of the library, so the fixtures default to
short packets and low packet counts; the benchmarks (not the tests) are
where statistically heavy runs live.
"""

import numpy as np
import pytest

from repro.phy.params import RATE_TABLE, rate_by_mbps


@pytest.fixture
def rng():
    """A deterministic random generator for test inputs."""
    return np.random.default_rng(12345)


@pytest.fixture
def qam16_half():
    """The QAM16 1/2 rate (24 Mb/s) used by most of the paper's experiments."""
    return rate_by_mbps(24)


@pytest.fixture
def bpsk_half():
    """The most robust rate (BPSK 1/2, 6 Mb/s)."""
    return rate_by_mbps(6)


@pytest.fixture
def qam64_three_quarters():
    """The fastest rate (QAM64 3/4, 54 Mb/s)."""
    return rate_by_mbps(54)


@pytest.fixture(params=[rate.data_rate_mbps for rate in RATE_TABLE])
def any_rate(request):
    """Parametrised fixture running a test over all eight 802.11a/g rates."""
    return rate_by_mbps(request.param)


@pytest.fixture
def small_packet_bits():
    """A packet size small enough for fast decoder tests."""
    return 96
