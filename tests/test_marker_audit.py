"""Audit: every perf benchmark must be excluded from the fast path.

CI's fast path runs ``pytest -m "not slow"``; a perf benchmark that forgets
its ``@pytest.mark.slow`` silently turns the quick suite into a minutes-long
one.  This test parses the benchmark sources so the rule is enforced the
moment a new ``test_perf_*`` file lands, not when someone notices CI got
slow.
"""

import ast
import pathlib

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"


def _is_slow_marker(node):
    """True for a ``pytest.mark.slow`` decorator (called or bare)."""
    if isinstance(node, ast.Call):
        node = node.func
    return (isinstance(node, ast.Attribute) and node.attr == "slow"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "mark"
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id == "pytest")


def _module_is_slow(tree):
    """True when the module sets a ``pytestmark`` that includes slow."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "pytestmark" in targets:
                values = (node.value.elts
                          if isinstance(node.value, (ast.List, ast.Tuple))
                          else [node.value])
                if any(_is_slow_marker(value) for value in values):
                    return True
    return False


def iter_test_functions(tree):
    """Yield every test function/method in a parsed module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name.startswith("test"):
            yield node


def test_perf_benchmarks_exist():
    assert sorted(BENCHMARKS.glob("test_perf_*.py")), \
        "no perf benchmarks found — did the layout move?"


def test_known_perf_benchmarks_are_inside_the_audited_glob():
    # Files added by later PRs must land where this audit can see them;
    # a benchmark outside the glob would silently dodge the slow-marker
    # rule above.
    names = {path.name for path in BENCHMARKS.glob("test_perf_*.py")}
    assert "test_perf_obs_overhead.py" in names
    assert "test_perf_service_throughput.py" in names


def test_every_perf_benchmark_test_is_marked_slow():
    unmarked = []
    for path in sorted(BENCHMARKS.glob("test_perf_*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        if _module_is_slow(tree):
            continue
        for function in iter_test_functions(tree):
            if not any(_is_slow_marker(d) for d in function.decorator_list):
                unmarked.append("%s::%s" % (path.name, function.name))
    assert not unmarked, (
        "perf benchmark tests missing @pytest.mark.slow (they would run "
        "in the fast path): %s" % ", ".join(unmarked))
