"""Batched-vs-scalar equivalence tests for the PHY chain.

The batch-native APIs (``transmit_batch``, ``awgn_batch``,
``front_end_batch``, ``decode_batch``) must be bit-exact -- and LLR-exact
for soft values -- against the single-packet path for every 802.11a/g rate
and every decoder, including the fading-gain and fixed-point ``llr_format``
paths.  The link simulator's results must also be independent of how a run
is split into batches.
"""

import numpy as np
import pytest

from repro.analysis.link import LinkSimulator
from repro.channel.awgn import awgn_batch
from repro.fixedpoint.fixed import llr_quantizer
from repro.phy.convolutional import depuncture
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter

PACKET_BITS = 120
NUM_PACKETS = 3

DECODERS = ["viterbi", "sova", "bcjr"]


def scalar_transmit(transmitter, bits):
    """The per-stage scalar transmit chain (the pre-batching reference)."""
    scrambled = transmitter.scramble(bits)
    coded = transmitter.encode(scrambled)
    padded = transmitter.pad(coded)
    interleaved = transmitter.interleaver.interleave(padded)
    symbols = transmitter.map_symbols(interleaved)
    return transmitter.modulator.modulate(symbols)


def scalar_front_end(receiver, samples, num_data_bits, gain=None, csi=None):
    """The per-stage scalar receive front end (the pre-batching reference)."""
    geometry = receiver.geometry(num_data_bits)
    symbols = receiver.demodulator.demodulate(samples, channel_gain=gain)
    weights = None
    if csi is not None:
        weights = np.repeat(np.asarray(csi, dtype=np.float64), 48)[: symbols.size]
    soft = receiver.demapper.demap(symbols, weights=weights)
    deinterleaved = receiver.interleaver.deinterleave(soft)
    return depuncture(
        deinterleaved[: geometry.coded_bits],
        receiver.phy_rate.code_rate,
        geometry.unpunctured_bits,
    )


@pytest.fixture
def payloads(rng):
    return rng.integers(0, 2, size=(NUM_PACKETS, PACKET_BITS), dtype=np.uint8)


class TestTransmitBatch:
    def test_bit_exact_vs_scalar_stages(self, any_rate, payloads):
        transmitter = Transmitter(any_rate)
        batch = transmitter.transmit_batch(payloads)
        assert batch.shape == (
            NUM_PACKETS,
            transmitter.geometry(PACKET_BITS).num_samples,
        )
        for i, bits in enumerate(payloads):
            assert np.array_equal(batch[i], scalar_transmit(transmitter, bits))

    def test_transmit_wrapper_is_batch_of_one(self, qam16_half, payloads):
        transmitter = Transmitter(qam16_half)
        assert np.array_equal(
            transmitter.transmit(payloads[0]),
            transmitter.transmit_batch(payloads[:1])[0],
        )

    def test_rejects_flat_input(self, qam16_half, payloads):
        with pytest.raises(ValueError):
            Transmitter(qam16_half).transmit_batch(payloads[0])


class TestFrontEndAndDecodeBatch:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_awgn_path_matches_scalar(self, any_rate, decoder, payloads, rng):
        receiver = Receiver(any_rate, decoder=decoder)
        samples = Transmitter(any_rate).transmit_batch(payloads)
        noisy = awgn_batch(samples, 8.0, rng=rng)

        batch_soft = receiver.front_end_batch(noisy, PACKET_BITS)
        for i in range(NUM_PACKETS):
            assert np.array_equal(
                batch_soft[i], scalar_front_end(receiver, noisy[i], PACKET_BITS)
            )
            assert np.array_equal(
                batch_soft[i], receiver.front_end(noisy[i], PACKET_BITS)
            )

        batched = receiver.decode_batch(batch_soft, PACKET_BITS)
        for i in range(NUM_PACKETS):
            single = receiver.decode_batch(batch_soft[i : i + 1], PACKET_BITS)
            assert np.array_equal(batched.bits[i], single.bits[0])
            if batched.llr is None:
                assert single.llr is None
            else:
                assert np.array_equal(batched.llr[i], single.llr[0])

    @pytest.mark.parametrize("decoder", DECODERS)
    def test_fading_and_quantized_path_matches_scalar(
        self, any_rate, decoder, payloads, rng
    ):
        receiver = Receiver(any_rate, decoder=decoder, llr_format=llr_quantizer(6))
        samples = Transmitter(any_rate).transmit_batch(payloads)
        gains = np.array([0.8 + 0.2j, 1.1 - 0.3j, 0.45 + 0.1j])
        noisy = awgn_batch(samples * gains[:, np.newaxis], 12.0, rng=rng)
        num_symbols = receiver.geometry(PACKET_BITS).num_symbols
        csi = np.broadcast_to(
            (np.abs(gains) ** 2)[:, np.newaxis], (NUM_PACKETS, num_symbols)
        )

        batch_soft = receiver.front_end_batch(
            noisy, PACKET_BITS, channel_gains=gains, csi_weights=csi
        )
        for i in range(NUM_PACKETS):
            scalar_soft = scalar_front_end(
                receiver, noisy[i], PACKET_BITS, gain=gains[i], csi=csi[i]
            )
            assert np.array_equal(batch_soft[i], scalar_soft)
            assert np.array_equal(
                batch_soft[i],
                receiver.front_end(
                    noisy[i], PACKET_BITS, channel_gain=gains[i], csi_weights=csi[i]
                ),
            )

        batched = receiver.decode_batch(batch_soft, PACKET_BITS)
        single_bits = [
            receiver.decode_batch(batch_soft[i : i + 1], PACKET_BITS).bits[0]
            for i in range(NUM_PACKETS)
        ]
        assert np.array_equal(batched.bits, np.vstack(single_bits))

    def test_receive_matches_batched_pipeline(self, qam16_half, payloads, rng):
        receiver = Receiver(qam16_half, decoder="bcjr")
        samples = Transmitter(qam16_half).transmit_batch(payloads)
        noisy = awgn_batch(samples, 9.0, rng=rng)
        batched = receiver.decode_batch(
            receiver.front_end_batch(noisy, PACKET_BITS), PACKET_BITS
        )
        for i in range(NUM_PACKETS):
            single = receiver.receive(noisy[i], PACKET_BITS)
            assert np.array_equal(batched.bits[i], single.bits)
            assert np.array_equal(batched.llr[i], single.llr)


class TestLinkSimulatorBatchInvariance:
    @pytest.mark.parametrize("decoder", DECODERS)
    def test_results_independent_of_batch_size(self, qam16_half, decoder):
        def build():
            return LinkSimulator(
                qam16_half,
                snr_db=lambda index: 6.0 + 0.5 * index,
                decoder=decoder,
                packet_bits=150,
                seed=11,
                fading_gain=lambda index: 1.0 - 0.1 * (index % 3),
            )

        reference = build().run(5, batch_size=5)
        for batch_size in (1, 2, 3):
            other = build().run(5, batch_size=batch_size)
            assert np.array_equal(reference.tx_bits, other.tx_bits)
            assert np.array_equal(reference.rx_bits, other.rx_bits)
            assert np.array_equal(reference.snr_db, other.snr_db)
            if reference.llr is not None:
                assert np.array_equal(reference.llr, other.llr)

    def test_odd_packet_sizes_are_batch_invariant(self, bpsk_half):
        # 150 bits is not a multiple of the RNG's word-buffering width, the
        # historical failure mode for chunked payload draws.
        a = LinkSimulator(bpsk_half, 5.0, packet_bits=149, seed=3).run(4, batch_size=1)
        b = LinkSimulator(bpsk_half, 5.0, packet_bits=149, seed=3).run(4, batch_size=4)
        assert np.array_equal(a.tx_bits, b.tx_bits)
        assert np.array_equal(a.rx_bits, b.rx_bits)
