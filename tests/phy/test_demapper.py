"""Unit tests for the Tosato/Bisaglia soft demapper."""

import numpy as np
import pytest

from repro.fixedpoint import FixedPointFormat
from repro.phy.demapper import Demapper, MODULATION_SCALE, axis_soft_values
from repro.phy.mapper import Mapper
from repro.phy.params import BPSK, QAM16, QAM64, QPSK


class TestAxisSoftValues:
    def test_sign_bit_follows_coordinate(self):
        soft = axis_soft_values(np.array([-2.5, 0.5]), 1)
        assert soft[0, 0] == pytest.approx(-2.5)
        assert soft[1, 0] == pytest.approx(0.5)

    def test_qam16_inner_bit_peaks_at_zero(self):
        soft = axis_soft_values(np.array([0.0, 2.0, 4.0]), 2)
        assert soft[0, 1] == pytest.approx(2.0)   # inner levels favoured
        assert soft[1, 1] == pytest.approx(0.0)   # decision boundary
        assert soft[2, 1] == pytest.approx(-2.0)  # outer levels favoured

    def test_qam64_third_bit_structure(self):
        soft = axis_soft_values(np.array([4.0, 2.0, 6.0, 0.0]), 3)
        assert soft[0, 2] == pytest.approx(2.0)
        assert soft[1, 2] == pytest.approx(0.0)
        assert soft[2, 2] == pytest.approx(0.0)
        assert soft[3, 2] == pytest.approx(-2.0)


class TestDemapperDecisions:
    @pytest.mark.parametrize("modulation", [BPSK, QPSK, QAM16, QAM64])
    def test_noiseless_hard_decisions_recover_bits(self, modulation, rng):
        """Sign of the soft output equals the transmitted bit without noise."""
        bits = rng.integers(0, 2, 120 * modulation.bits_per_symbol, dtype=np.uint8)
        symbols = Mapper(modulation).map(bits)
        soft = Demapper(modulation).demap(symbols)
        decisions = (soft > 0).astype(np.uint8)
        assert np.array_equal(decisions, bits)

    def test_soft_magnitude_grows_with_distance_from_boundary(self):
        demapper = Demapper(BPSK)
        weak = demapper.demap(np.array([0.1 + 0j]))
        strong = demapper.demap(np.array([1.0 + 0j]))
        assert abs(strong[0]) > abs(weak[0])

    def test_output_length_is_bits_per_symbol_per_symbol(self, rng):
        for modulation in (QPSK, QAM16, QAM64):
            bits = rng.integers(0, 2, 10 * modulation.bits_per_symbol, dtype=np.uint8)
            symbols = Mapper(modulation).map(bits)
            soft = Demapper(modulation).demap(symbols)
            assert soft.size == bits.size


class TestDemapperScaling:
    def test_hardware_mode_ignores_snr(self):
        a = Demapper(QAM16).demap(np.array([0.3 + 0.1j]))
        b = Demapper(QAM16).demap(np.array([0.3 + 0.1j]))
        assert np.allclose(a, b)
        assert Demapper(QAM16).llr_scale == 1.0

    def test_scaled_mode_multiplies_by_snr_and_modulation(self):
        symbols = np.array([0.3 + 0.1j])
        unscaled = Demapper(QAM16).demap(symbols)
        scaled = Demapper(QAM16, snr_db=10.0, scaled=True).demap(symbols)
        factor = 10.0 * MODULATION_SCALE["QAM16"]
        assert np.allclose(scaled, unscaled * factor)

    def test_scaled_mode_requires_snr(self):
        with pytest.raises(ValueError):
            Demapper(QAM16, scaled=True)

    def test_csi_weights_scale_per_symbol(self):
        demapper = Demapper(QPSK)
        symbols = np.array([0.5 + 0.5j, 0.5 + 0.5j])
        soft = demapper.demap(symbols, weights=np.array([1.0, 0.25]))
        assert np.allclose(soft[2:], 0.25 * soft[:2])

    def test_fixed_point_output_format_is_applied(self):
        fmt = FixedPointFormat(integer_bits=2, fraction_bits=0)
        demapper = Demapper(QAM16, output_format=fmt)
        soft = demapper.demap(np.array([10.0 + 10.0j]))
        assert np.all(soft <= fmt.max_value)
        assert np.all(soft >= fmt.min_value)
        assert np.all(soft == np.round(soft))

    def test_modulation_scale_ordering(self):
        # Denser constellations carry less energy per level spacing, so the
        # per-level scaling constant shrinks monotonically.
        assert (
            MODULATION_SCALE["BPSK"]
            >= MODULATION_SCALE["QPSK"]
            > MODULATION_SCALE["QAM16"]
            > MODULATION_SCALE["QAM64"]
        )
