"""Unit tests for the constellation mapper."""

import numpy as np
import pytest

from repro.phy.mapper import Mapper, axis_levels, map_bits
from repro.phy.params import BPSK, QAM16, QAM64, QPSK


class TestAxisLevels:
    def test_levels_are_gray_coded(self):
        # Adjacent levels must differ in exactly one bit of their index.
        for bits in (2, 3):
            levels = axis_levels(bits)
            order = np.argsort(levels)
            for a, b in zip(order, order[1:]):
                assert bin(a ^ b).count("1") == 1

    def test_unsupported_width_raises(self):
        with pytest.raises(ValueError):
            axis_levels(4)


class TestMapper:
    def test_bpsk_maps_to_plus_minus_one(self):
        symbols = map_bits(np.array([0, 1, 1, 0]), BPSK)
        assert np.allclose(symbols, [-1, 1, 1, -1])

    def test_qpsk_symbols_have_unit_energy(self, rng):
        bits = rng.integers(0, 2, 200, dtype=np.uint8)
        symbols = map_bits(bits, QPSK)
        assert np.allclose(np.abs(symbols), 1.0)

    def test_qam16_known_points(self):
        mapper = Mapper(QAM16)
        # 802.11a: b0b1 = 10 -> I = +3, b2b3 = 01 -> Q = -1.
        symbol = mapper.map(np.array([1, 0, 0, 1]))[0]
        assert symbol.real == pytest.approx(3 / np.sqrt(10))
        assert symbol.imag == pytest.approx(-1 / np.sqrt(10))

    def test_qam64_known_points(self):
        mapper = Mapper(QAM64)
        # b0b1b2 = 100 -> I = +7, b3b4b5 = 011 -> Q = -3.
        symbol = mapper.map(np.array([1, 0, 0, 0, 1, 1]))[0]
        assert symbol.real == pytest.approx(7 / np.sqrt(42))
        assert symbol.imag == pytest.approx(-3 / np.sqrt(42))

    def test_average_energy_is_one(self, rng):
        for modulation in (BPSK, QPSK, QAM16, QAM64):
            bits = rng.integers(0, 2, 6000 * modulation.bits_per_symbol // 6, dtype=np.uint8)
            bits = bits[: (bits.size // modulation.bits_per_symbol) * modulation.bits_per_symbol]
            symbols = map_bits(bits, modulation)
            assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_constellation_size(self):
        assert Mapper(QAM16).constellation().size == 16
        assert Mapper(QAM64).constellation().size == 64

    def test_constellation_points_are_distinct(self):
        for modulation in (QPSK, QAM16, QAM64):
            points = Mapper(modulation).constellation()
            assert len(np.unique(np.round(points, 9))) == points.size

    def test_bit_count_must_be_multiple_of_bits_per_symbol(self):
        with pytest.raises(ValueError):
            Mapper(QAM16).map(np.array([1, 0, 1]))

    def test_mapper_accepts_modulation_by_name(self):
        assert Mapper("QPSK").modulation == QPSK

    def test_first_half_of_bits_drive_the_real_axis(self):
        mapper = Mapper(QAM16)
        a = mapper.map(np.array([0, 0, 0, 0]))[0]
        b = mapper.map(np.array([1, 1, 0, 0]))[0]
        assert a.imag == pytest.approx(b.imag)
        assert a.real != pytest.approx(b.real)
