"""Unit tests for the convolutional encoder and the puncturing logic."""

import numpy as np
import pytest

from repro.phy.convolutional import (
    ConvolutionalCode,
    IEEE80211_CODE,
    coded_length_for_rate,
    depuncture,
    punctured_length,
    puncture,
)
from repro.phy.params import RATE_1_2, RATE_2_3, RATE_3_4


class TestConvolutionalCode:
    def test_80211_code_shape(self):
        assert IEEE80211_CODE.constraint_length == 7
        assert IEEE80211_CODE.memory == 6
        assert IEEE80211_CODE.num_states == 64
        assert IEEE80211_CODE.outputs_per_input == 2

    def test_terminated_output_length(self):
        coded = IEEE80211_CODE.encode(np.zeros(10, dtype=np.uint8))
        assert coded.size == 2 * (10 + 6)

    def test_unterminated_output_length(self):
        coded = IEEE80211_CODE.encode(np.ones(10, dtype=np.uint8), terminate=False)
        assert coded.size == 20

    def test_all_zero_input_gives_all_zero_output(self):
        coded = IEEE80211_CODE.encode(np.zeros(20, dtype=np.uint8))
        assert not coded.any()

    def test_known_impulse_response(self):
        # A single one followed by zeros produces the generator patterns
        # 133/171 (octal) read LSB-first as the registers drain.
        coded = IEEE80211_CODE.encode(np.array([1, 0, 0, 0, 0, 0, 0], dtype=np.uint8),
                                      terminate=False)
        g0_taps = [(0o133 >> d) & 1 for d in range(7)]
        g1_taps = [(0o171 >> d) & 1 for d in range(7)]
        assert list(coded[0::2][:7]) == g0_taps
        assert list(coded[1::2][:7]) == g1_taps

    def test_encoding_is_linear(self, rng):
        a = rng.integers(0, 2, 40, dtype=np.uint8)
        b = rng.integers(0, 2, 40, dtype=np.uint8)
        encoded_sum = IEEE80211_CODE.encode(a ^ b)
        assert np.array_equal(
            encoded_sum, IEEE80211_CODE.encode(a) ^ IEEE80211_CODE.encode(b)
        )

    def test_matches_bitwise_reference_encoder(self, rng):
        """The vectorised encoder equals a literal shift-register walk."""
        bits = rng.integers(0, 2, 33, dtype=np.uint8)
        state = 0
        reference = []
        padded = np.concatenate([bits, np.zeros(6, dtype=np.uint8)])
        for bit in padded:
            register = ((state << 1) | int(bit)) & 0x7F
            for generator in IEEE80211_CODE.generators:
                reference.append(bin(register & generator).count("1") & 1)
            state = register & 0x3F
        assert np.array_equal(IEEE80211_CODE.encode(bits), np.array(reference))

    def test_generator_must_fit_constraint_length(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(3, (0o133,))

    def test_constraint_length_must_be_sane(self):
        with pytest.raises(ValueError):
            ConvolutionalCode(1, (0o3,))


class TestPuncturing:
    def test_rate_half_is_identity(self, rng):
        coded = rng.integers(0, 2, 48, dtype=np.uint8)
        assert np.array_equal(puncture(coded, RATE_1_2), coded)

    def test_rate_two_thirds_drops_a_quarter(self):
        coded = np.arange(48)
        punctured = puncture(coded, RATE_2_3)
        assert punctured.size == 36

    def test_rate_three_quarters_drops_a_third(self):
        coded = np.arange(48)
        punctured = puncture(coded, RATE_3_4)
        assert punctured.size == 32

    def test_punctured_length_helper(self):
        assert punctured_length(24, RATE_1_2) == 48
        assert punctured_length(24, RATE_2_3) == 36
        assert punctured_length(24, RATE_3_4) == 32

    def test_coded_length_for_rate_includes_tail(self):
        assert coded_length_for_rate(10, RATE_1_2) == 2 * 16

    def test_depuncture_restores_positions(self, rng):
        soft = rng.normal(size=punctured_length(24, RATE_3_4))
        restored = depuncture(soft, RATE_3_4, 48)
        assert restored.size == 48
        # The surviving soft values appear unchanged and in order.
        pattern = np.tile(np.asarray(RATE_3_4.puncture_pattern), 8)
        assert np.array_equal(restored[pattern], soft)

    def test_depuncture_inserts_erasures(self, rng):
        soft = rng.normal(size=punctured_length(24, RATE_2_3))
        restored = depuncture(soft, RATE_2_3, 48, erasure=0.0)
        pattern = np.tile(np.asarray(RATE_2_3.puncture_pattern), 12)
        assert np.all(restored[~pattern] == 0.0)

    def test_depuncture_checks_length(self):
        with pytest.raises(ValueError):
            depuncture(np.zeros(10), RATE_3_4, 48)

    def test_puncture_then_depuncture_round_trip_rate_half(self, rng):
        soft = rng.normal(size=40)
        assert np.array_equal(depuncture(puncture(soft, RATE_1_2), RATE_1_2, 40), soft)
