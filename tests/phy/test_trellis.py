"""Unit tests for the trellis and the shared BMU / PMU kernels."""

import numpy as np
import pytest

from repro.phy.convolutional import ConvolutionalCode, IEEE80211_CODE
from repro.phy.trellis import (
    BranchMetricUnit,
    NEGATIVE_INFINITY_METRIC,
    PathMetricUnit,
    Trellis,
    reshape_soft_input,
)


@pytest.fixture(scope="module")
def trellis():
    return Trellis(IEEE80211_CODE)


class TestTrellisStructure:
    def test_number_of_states(self, trellis):
        assert trellis.num_states == 64

    def test_every_state_has_two_successors_and_two_predecessors(self, trellis):
        successors = trellis.next_state.reshape(-1)
        # Each state appears exactly twice as a successor.
        counts = np.bincount(successors, minlength=64)
        assert np.all(counts == 2)

    def test_next_state_is_shift_register_update(self, trellis):
        for state in (0, 1, 37, 63):
            for bit in (0, 1):
                assert trellis.next_state[state, bit] == ((state << 1) | bit) & 0x3F

    def test_prev_tables_invert_next_state(self, trellis):
        for state in range(trellis.num_states):
            for slot in range(2):
                previous = trellis.prev_state[state, slot]
                bit = trellis.prev_input[state, slot]
                assert trellis.next_state[previous, bit] == state

    def test_outputs_match_encoder(self, trellis, rng):
        """Walking the trellis reproduces the encoder output bit for bit."""
        bits = rng.integers(0, 2, 30, dtype=np.uint8)
        coded = IEEE80211_CODE.encode(bits, terminate=False)
        state = 0
        for i, bit in enumerate(bits):
            expected = coded[2 * i : 2 * i + 2]
            assert np.array_equal(trellis.outputs[state, bit], expected)
            state = trellis.next_state[state, bit]

    def test_output_signs_are_plus_minus_one(self, trellis):
        assert set(np.unique(trellis.output_signs)) == {-1.0, 1.0}

    def test_small_code_trellis(self):
        small = Trellis(ConvolutionalCode(3, (0o7, 0o5)))
        assert small.num_states == 4
        assert small.outputs.shape == (4, 2, 2)


class TestBranchMetricUnit:
    def test_metric_rewards_matching_signs(self, trellis):
        bmu = BranchMetricUnit(trellis)
        # Transition from state 0 with input 0 emits (0, 0): soft values that
        # strongly favour zeros should score it highest.
        soft = np.array([[-4.0, -4.0]])
        metrics = bmu.compute(soft)
        assert metrics.shape == (1, 64, 2)
        assert metrics[0, 0, 0] == pytest.approx(4.0)

    def test_metric_is_correlation(self, trellis, rng):
        bmu = BranchMetricUnit(trellis)
        soft = rng.normal(size=(3, 2))
        metrics = bmu.compute(soft)
        # Check one (state, input) pair explicitly against the definition.
        signs = trellis.output_signs[11, 1]
        assert metrics[2, 11, 1] == pytest.approx(0.5 * np.dot(signs, soft[2]))

    def test_compute_all_matches_per_step(self, trellis, rng):
        bmu = BranchMetricUnit(trellis)
        soft = rng.normal(size=(2, 5, 2))
        all_at_once = bmu.compute_all(soft)
        for t in range(5):
            assert np.allclose(all_at_once[:, t], bmu.compute(soft[:, t]))

    def test_one_dimensional_input_is_promoted(self, trellis):
        bmu = BranchMetricUnit(trellis)
        assert bmu.compute(np.array([1.0, -1.0])).shape == (1, 64, 2)


class TestPathMetricUnit:
    def test_initial_metrics_known_start(self, trellis):
        pmu = PathMetricUnit(trellis)
        metrics = pmu.initial_metrics(batch=2, known_start=True)
        assert metrics.shape == (2, 64)
        assert np.all(metrics[:, 0] == 0.0)
        assert np.all(metrics[:, 1:] == NEGATIVE_INFINITY_METRIC)

    def test_initial_metrics_uncertain_start(self, trellis):
        pmu = PathMetricUnit(trellis)
        metrics = pmu.initial_metrics(batch=1, known_start=False)
        assert np.all(metrics == 0.0)

    def test_forward_step_follows_noiseless_path(self, trellis):
        """With perfect soft values the survivor path follows the encoder."""
        pmu = PathMetricUnit(trellis)
        bmu = BranchMetricUnit(trellis)
        bits = np.array([1, 0, 1, 1, 0, 0, 1], dtype=np.uint8)
        coded = IEEE80211_CODE.encode(bits, terminate=False).astype(np.float64)
        soft = (2.0 * coded - 1.0) * 5.0
        metrics = pmu.initial_metrics(1, known_start=True)
        state = 0
        for t in range(bits.size):
            branch = bmu.compute(soft[2 * t : 2 * t + 2])
            metrics, prev_state, prev_input, delta = pmu.forward_step(metrics, branch)
            state = trellis.next_state[state, bits[t]]
            best = int(np.argmax(metrics[0]))
            assert best == state
            assert prev_input[0, best] == bits[t]
            assert np.all(delta >= 0.0)

    def test_normalize_keeps_relative_order(self, trellis, rng):
        pmu = PathMetricUnit(trellis)
        metrics = rng.normal(size=(2, 64))
        normalised = pmu.normalize(metrics)
        assert np.allclose(
            np.argsort(metrics, axis=1), np.argsort(normalised, axis=1)
        )
        assert np.all(np.max(normalised, axis=1) == 0.0)

    def test_backward_step_shape(self, trellis, rng):
        pmu = PathMetricUnit(trellis)
        bmu = BranchMetricUnit(trellis)
        beta = rng.normal(size=(3, 64))
        branch = bmu.compute(rng.normal(size=(3, 2)))
        assert pmu.backward_step(beta, branch).shape == (3, 64)


class TestReshapeSoftInput:
    def test_flat_packet_is_reshaped(self):
        soft = np.arange(10.0)
        reshaped = reshape_soft_input(soft, 2)
        assert reshaped.shape == (1, 5, 2)

    def test_batch_is_preserved(self):
        soft = np.zeros((3, 8))
        assert reshape_soft_input(soft, 2).shape == (3, 4, 2)

    def test_length_must_divide(self):
        with pytest.raises(ValueError):
            reshape_soft_input(np.zeros(7), 2)
