"""Integration tests for the full transmit and receive chains."""

import numpy as np
import pytest

from repro.channel import awgn
from repro.fixedpoint.fixed import llr_quantizer
from repro.phy import Receiver, Transmitter, receive, transmit
from repro.phy.transmitter import FrameGeometry


class TestFrameGeometry:
    def test_paper_packet_at_qam16_half(self, qam16_half):
        geometry = FrameGeometry(qam16_half, 1704)
        assert geometry.num_trellis_steps == 1710
        assert geometry.coded_bits == 3420
        assert geometry.num_symbols == 18
        assert geometry.padded_bits == 18 * 192
        assert geometry.num_samples == 18 * 80

    def test_duration_matches_symbol_count(self, bpsk_half):
        geometry = FrameGeometry(bpsk_half, 240)
        assert geometry.duration_us == pytest.approx(geometry.num_symbols * 4.0)

    def test_pad_bits_fill_the_last_symbol(self, any_rate):
        geometry = FrameGeometry(any_rate, 500)
        assert 0 <= geometry.pad_bits < any_rate.coded_bits_per_symbol
        assert geometry.coded_bits + geometry.pad_bits == geometry.padded_bits

    def test_rejects_empty_packets(self, qam16_half):
        with pytest.raises(ValueError):
            FrameGeometry(qam16_half, 0)

    def test_higher_rates_use_fewer_symbols(self, bpsk_half, qam64_three_quarters):
        slow = FrameGeometry(bpsk_half, 1704)
        fast = FrameGeometry(qam64_three_quarters, 1704)
        assert fast.num_symbols < slow.num_symbols


class TestNoiselessLink:
    def test_every_rate_and_decoder_round_trips(self, any_rate, rng):
        bits = rng.integers(0, 2, 300, dtype=np.uint8)
        samples = Transmitter(any_rate).transmit(bits)
        for decoder in ("viterbi", "sova", "bcjr"):
            result = Receiver(any_rate, decoder=decoder).receive(samples, 300)
            assert np.array_equal(result.bits, bits), decoder

    def test_convenience_wrappers(self, qam16_half, rng):
        bits = rng.integers(0, 2, 96, dtype=np.uint8)
        samples = transmit(bits, qam16_half)
        result = receive(samples, qam16_half, 96, decoder="viterbi")
        assert np.array_equal(result.bits, bits)

    def test_sample_count_matches_geometry(self, any_rate, rng):
        bits = rng.integers(0, 2, 200, dtype=np.uint8)
        transmitter = Transmitter(any_rate)
        samples = transmitter.transmit(bits)
        assert samples.size == transmitter.geometry(200).num_samples

    def test_scrambler_seed_mismatch_breaks_link(self, qam16_half, rng):
        bits = rng.integers(0, 2, 96, dtype=np.uint8)
        samples = Transmitter(qam16_half, scrambler_seed=0x7F).transmit(bits)
        receiver = Receiver(qam16_half, scrambler_seed=0x15)
        result = receiver.receive(samples, 96)
        assert not np.array_equal(result.bits, bits)

    def test_flat_fading_with_known_gain_is_transparent(self, qam16_half, rng):
        bits = rng.integers(0, 2, 192, dtype=np.uint8)
        samples = Transmitter(qam16_half).transmit(bits) * (0.4 + 0.3j)
        result = Receiver(qam16_half, decoder="viterbi").receive(
            samples, 192, channel_gain=0.4 + 0.3j
        )
        assert np.array_equal(result.bits, bits)


class TestNoisyLink:
    def test_high_snr_is_error_free(self, qam16_half, rng):
        bits = rng.integers(0, 2, 600, dtype=np.uint8)
        samples = awgn(Transmitter(qam16_half).transmit(bits), 25.0, rng=rng)
        result = Receiver(qam16_half, decoder="viterbi").receive(samples, 600)
        assert np.array_equal(result.bits, bits)

    def test_low_snr_produces_errors(self, qam64_three_quarters, rng):
        bits = rng.integers(0, 2, 600, dtype=np.uint8)
        samples = awgn(Transmitter(qam64_three_quarters).transmit(bits), 2.0, rng=rng)
        result = Receiver(qam64_three_quarters, decoder="viterbi").receive(samples, 600)
        assert np.mean(result.bits != bits) > 0.05

    def test_robust_rate_survives_snr_that_breaks_fast_rate(self, bpsk_half,
                                                            qam64_three_quarters, rng):
        """The rate-adaptation premise: 6 Mb/s works where 54 Mb/s fails."""
        bits = rng.integers(0, 2, 400, dtype=np.uint8)
        snr_db = 8.0
        slow = Receiver(bpsk_half, decoder="viterbi").receive(
            awgn(Transmitter(bpsk_half).transmit(bits), snr_db, rng=rng), 400
        )
        fast = Receiver(qam64_three_quarters, decoder="viterbi").receive(
            awgn(Transmitter(qam64_three_quarters).transmit(bits), snr_db, rng=rng), 400
        )
        assert np.array_equal(slow.bits, bits)
        assert not np.array_equal(fast.bits, bits)

    def test_soft_receive_returns_hints(self, qam16_half, rng):
        bits = rng.integers(0, 2, 300, dtype=np.uint8)
        samples = awgn(Transmitter(qam16_half).transmit(bits), 9.0, rng=rng)
        result = Receiver(qam16_half, decoder="bcjr").receive(samples, 300)
        assert result.llr is not None
        assert result.hints.shape == (300,)
        assert np.all(result.hints >= 0)

    def test_quantized_demapper_still_decodes(self, qam16_half, rng):
        bits = rng.integers(0, 2, 300, dtype=np.uint8)
        samples = awgn(Transmitter(qam16_half).transmit(bits), 14.0, rng=rng)
        receiver = Receiver(
            qam16_half, decoder="bcjr", llr_format=llr_quantizer(4, max_abs=4.0)
        )
        result = receiver.receive(samples, 300)
        assert np.mean(result.bits != bits) < 0.01


class TestFrontEndAndBatchDecoding:
    def test_front_end_length(self, qam16_half, rng):
        bits = rng.integers(0, 2, 200, dtype=np.uint8)
        samples = Transmitter(qam16_half).transmit(bits)
        soft = Receiver(qam16_half).front_end(samples, 200)
        assert soft.size == 2 * (200 + 6)

    def test_decode_batch_matches_receive(self, qam16_half, rng):
        receiver = Receiver(qam16_half, decoder="bcjr")
        transmitter = Transmitter(qam16_half)
        packets = [rng.integers(0, 2, 150, dtype=np.uint8) for _ in range(3)]
        softs, singles = [], []
        for bits in packets:
            samples = awgn(transmitter.transmit(bits), 10.0, rng=np.random.default_rng(7))
            softs.append(receiver.front_end(samples, 150))
            singles.append(receiver.receive(samples, 150).bits)
        batch = receiver.decode_batch(np.vstack(softs), 150)
        for i in range(3):
            assert np.array_equal(batch.bits[i], singles[i])

    def test_unknown_decoder_name_rejected(self, qam16_half):
        with pytest.raises(ValueError):
            Receiver(qam16_half, decoder="turbo")
