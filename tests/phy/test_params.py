"""Unit tests for the 802.11a/g rate parameters."""

import pytest

from repro.phy.params import (
    BPSK,
    CODE_RATES,
    CodeRate,
    MODULATIONS,
    NUM_DATA_SUBCARRIERS,
    QAM16,
    QAM64,
    QPSK,
    RATE_TABLE,
    rate_by_mbps,
    rate_by_name,
    rate_index,
)


class TestModulations:
    def test_bits_per_symbol(self):
        assert [m.bits_per_symbol for m in (BPSK, QPSK, QAM16, QAM64)] == [1, 2, 4, 6]

    def test_normalisation_gives_unit_energy(self):
        # K_mod values from the 802.11a standard.
        assert QPSK.normalization == pytest.approx(1 / 2**0.5)
        assert QAM16.normalization == pytest.approx(1 / 10**0.5)
        assert QAM64.normalization == pytest.approx(1 / 42**0.5)

    def test_lookup_by_name(self):
        assert MODULATIONS["QAM16"] is QAM16

    def test_equality_by_name(self):
        assert BPSK == MODULATIONS["BPSK"]
        assert BPSK != QPSK


class TestCodeRates:
    def test_fraction_values(self):
        assert float(CODE_RATES["1/2"]) == pytest.approx(0.5)
        assert float(CODE_RATES["2/3"]) == pytest.approx(2 / 3)
        assert float(CODE_RATES["3/4"]) == pytest.approx(0.75)

    def test_puncture_pattern_consistency_is_enforced(self):
        with pytest.raises(ValueError):
            CodeRate(2, 3, (True, True, True, True))  # keeps 4 of 4: that is 1/2

    def test_pattern_must_keep_something(self):
        with pytest.raises(ValueError):
            CodeRate(1, 2, (False, False))

    def test_rate_half_keeps_every_bit(self):
        assert all(CODE_RATES["1/2"].puncture_pattern)


class TestRateTable:
    def test_has_the_eight_80211g_rates(self):
        assert [r.data_rate_mbps for r in RATE_TABLE] == [6, 9, 12, 18, 24, 36, 48, 54]

    def test_coded_bits_per_symbol(self, any_rate):
        assert any_rate.coded_bits_per_symbol == (
            NUM_DATA_SUBCARRIERS * any_rate.modulation.bits_per_symbol
        )

    def test_data_bits_per_symbol_match_standard(self):
        expected = {6: 24, 9: 36, 12: 48, 18: 72, 24: 96, 36: 144, 48: 192, 54: 216}
        for rate in RATE_TABLE:
            assert rate.data_bits_per_symbol == expected[rate.data_rate_mbps]

    def test_line_rate_matches_nominal_rate(self, any_rate):
        assert any_rate.line_rate_mbps == pytest.approx(any_rate.data_rate_mbps)

    def test_rate_ordering_is_monotonic(self):
        data_bits = [r.data_bits_per_symbol for r in RATE_TABLE]
        assert data_bits == sorted(data_bits)

    def test_rate_names_are_unique(self):
        names = [r.name for r in RATE_TABLE]
        assert len(set(names)) == len(names)


class TestLookups:
    def test_rate_by_mbps(self):
        assert rate_by_mbps(54).modulation == QAM64

    def test_rate_by_mbps_unknown(self):
        with pytest.raises(KeyError):
            rate_by_mbps(11)

    def test_rate_by_name(self):
        assert rate_by_name("QAM16 3/4").data_rate_mbps == 36

    def test_rate_by_name_unknown(self):
        with pytest.raises(KeyError):
            rate_by_name("QAM256 7/8")

    def test_rate_index_round_trip(self):
        for index, rate in enumerate(RATE_TABLE):
            assert rate_index(rate) == index
