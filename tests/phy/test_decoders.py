"""Unit tests for the Viterbi, SOVA and SW-BCJR decoders.

These tests drive the decoders directly with encoded soft values (bypassing
the OFDM chain) so that coding behaviour is isolated from channel modelling.
"""

import numpy as np
import pytest

from repro.phy.bcjr import BcjrDecoder
from repro.phy.convolutional import IEEE80211_CODE
from repro.phy.sova import SovaDecoder
from repro.phy.trellis import Trellis
from repro.phy.viterbi import ViterbiDecoder

DECODER_CLASSES = [ViterbiDecoder, SovaDecoder, BcjrDecoder]


def encode_to_soft(bits, amplitude=4.0, rng=None, noise_std=0.0):
    """Encode bits and produce antipodal soft values with optional noise."""
    coded = IEEE80211_CODE.encode(np.asarray(bits, dtype=np.uint8)).astype(np.float64)
    soft = (2.0 * coded - 1.0) * amplitude
    if noise_std:
        soft = soft + rng.normal(scale=noise_std, size=soft.shape)
    return soft


@pytest.fixture(scope="module")
def shared_trellis():
    return Trellis()


class TestNoiselessDecoding:
    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_recovers_random_payload(self, decoder_cls, shared_trellis, rng):
        bits = rng.integers(0, 2, 120, dtype=np.uint8)
        soft = encode_to_soft(bits)
        result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
        assert np.array_equal(result.bits[0], bits)

    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_all_zero_and_all_one_payloads(self, decoder_cls, shared_trellis):
        for bits in (np.zeros(40, dtype=np.uint8), np.ones(40, dtype=np.uint8)):
            soft = encode_to_soft(bits)
            result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
            assert np.array_equal(result.bits[0], bits)

    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_batch_decoding_matches_individual(self, decoder_cls, shared_trellis, rng):
        packets = [rng.integers(0, 2, 60, dtype=np.uint8) for _ in range(3)]
        soft = np.vstack([encode_to_soft(p) for p in packets])
        decoder = decoder_cls(trellis=shared_trellis)
        batch = decoder.decode(soft, 60)
        for i, packet in enumerate(packets):
            single = decoder.decode(soft[i], 60)
            assert np.array_equal(batch.bits[i], packet)
            assert np.array_equal(single.bits[0], batch.bits[i])

    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_wrong_length_soft_input_is_rejected(self, decoder_cls, shared_trellis):
        with pytest.raises(ValueError):
            decoder_cls(trellis=shared_trellis).decode(np.zeros(100), 60)


class TestNoisyDecoding:
    @pytest.mark.parametrize("decoder_cls", DECODER_CLASSES)
    def test_corrects_moderate_noise(self, decoder_cls, shared_trellis, rng):
        bits = rng.integers(0, 2, 200, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=0.45)
        result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
        ber = np.mean(result.bits[0] != bits)
        # Uncoded hard decisions at this noise level would be ~1.3% BER; the
        # K=7 code should essentially eliminate the errors.
        assert ber < 0.005

    def test_soft_decoders_beat_uncoded_hard_decisions(self, shared_trellis, rng):
        bits = rng.integers(0, 2, 400, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=0.7)
        hard_input_ber = np.mean((soft > 0).astype(np.uint8) != IEEE80211_CODE.encode(bits))
        for decoder_cls in (SovaDecoder, BcjrDecoder):
            result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
            assert np.mean(result.bits[0] != bits) < hard_input_ber

    def test_erasures_from_puncturing_are_tolerated(self, shared_trellis, rng):
        """Zeroing a third of the soft values (rate 3/4 erasures) still decodes."""
        bits = rng.integers(0, 2, 150, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=2.0)
        erased = soft.copy()
        erased[3::6] = 0.0
        erased[4::6] = 0.0
        result = BcjrDecoder(trellis=shared_trellis).decode(erased, bits.size)
        assert np.mean(result.bits[0] != bits) < 0.02


class TestSoftOutputs:
    def test_viterbi_produces_no_llr(self, shared_trellis, rng):
        bits = rng.integers(0, 2, 50, dtype=np.uint8)
        result = ViterbiDecoder(trellis=shared_trellis).decode(encode_to_soft(bits), 50)
        assert result.llr is None
        assert result.hints is None
        assert ViterbiDecoder.produces_soft_output is False

    @pytest.mark.parametrize("decoder_cls", [SovaDecoder, BcjrDecoder])
    def test_llr_sign_matches_decision(self, decoder_cls, shared_trellis, rng):
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=0.5)
        result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
        decisions_from_llr = (result.llr[0] > 0).astype(np.uint8)
        # Ties (llr == 0) are allowed to disagree; there should be none here.
        assert np.array_equal(decisions_from_llr, result.bits[0])

    @pytest.mark.parametrize("decoder_cls", [SovaDecoder, BcjrDecoder])
    def test_hints_are_nonnegative(self, decoder_cls, shared_trellis, rng):
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=0.6)
        result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
        assert np.all(result.hints >= 0.0)

    @pytest.mark.parametrize("decoder_cls", [SovaDecoder, BcjrDecoder])
    def test_noiseless_bits_get_large_hints(self, decoder_cls, shared_trellis, rng):
        bits = rng.integers(0, 2, 80, dtype=np.uint8)
        clean = decoder_cls(trellis=shared_trellis).decode(encode_to_soft(bits), 80)
        noisy_soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=1.0)
        noisy = decoder_cls(trellis=shared_trellis).decode(noisy_soft, 80)
        assert np.median(clean.hints) > np.median(noisy.hints)

    @pytest.mark.parametrize("decoder_cls", [SovaDecoder, BcjrDecoder])
    def test_erroneous_bits_have_lower_hints_than_correct_bits(
        self, decoder_cls, shared_trellis, rng
    ):
        """The core SoftPHY property: hints separate good bits from bad bits."""
        bits = rng.integers(0, 2, 3000, dtype=np.uint8)
        soft = encode_to_soft(bits, amplitude=1.0, rng=rng, noise_std=1.05)
        result = decoder_cls(trellis=shared_trellis).decode(soft, bits.size)
        errors = result.bits[0] != bits
        assert errors.any() and (~errors).any()
        assert np.mean(result.hints[0][errors]) < np.mean(result.hints[0][~errors])


class TestDecoderConfiguration:
    def test_bcjr_block_length_must_be_positive(self):
        with pytest.raises(ValueError):
            BcjrDecoder(block_length=0)

    def test_bcjr_small_blocks_still_decode(self, shared_trellis, rng):
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        soft = encode_to_soft(bits)
        result = BcjrDecoder(trellis=shared_trellis, block_length=8).decode(soft, 100)
        assert np.array_equal(result.bits[0], bits)

    def test_sova_traceback_shorter_than_packet(self, shared_trellis, rng):
        bits = rng.integers(0, 2, 100, dtype=np.uint8)
        soft = encode_to_soft(bits)
        result = SovaDecoder(trellis=shared_trellis, traceback_length=16).decode(soft, 100)
        assert np.array_equal(result.bits[0], bits)

    def test_decoder_names(self):
        assert ViterbiDecoder.name == "viterbi"
        assert SovaDecoder.name == "sova"
        assert BcjrDecoder.name == "bcjr"

    def test_sova_first_traceback_defaults_to_second(self):
        decoder = SovaDecoder(traceback_length=48)
        assert decoder.first_traceback_length == 48
