"""Unit tests for OFDM modulation and demodulation."""

import numpy as np
import pytest

from repro.phy.mapper import Mapper
from repro.phy.ofdm import (
    DATA_SUBCARRIERS,
    OfdmDemodulator,
    OfdmModulator,
    PILOT_SUBCARRIERS,
    num_ofdm_symbols,
)
from repro.phy.params import QAM16, QPSK


class TestSubcarrierLayout:
    def test_48_data_subcarriers(self):
        assert len(DATA_SUBCARRIERS) == 48

    def test_pilots_not_in_data_set(self):
        assert not set(PILOT_SUBCARRIERS) & set(DATA_SUBCARRIERS)

    def test_dc_subcarrier_unused(self):
        assert 0 not in DATA_SUBCARRIERS

    def test_data_subcarriers_span_minus26_to_26(self):
        assert min(DATA_SUBCARRIERS) == -26
        assert max(DATA_SUBCARRIERS) == 26


class TestModulation:
    def test_samples_per_symbol_includes_cyclic_prefix(self):
        assert OfdmModulator().samples_per_symbol == 80
        assert OfdmModulator(cyclic_prefix=0).samples_per_symbol == 64

    def test_output_length(self, rng):
        symbols = Mapper(QPSK).map(rng.integers(0, 2, 2 * 96, dtype=np.uint8))
        samples = OfdmModulator().modulate(symbols)
        assert samples.size == 2 * 80

    def test_symbol_count_must_be_multiple_of_48(self):
        with pytest.raises(ValueError):
            OfdmModulator().modulate(np.ones(47, dtype=complex))

    def test_cyclic_prefix_is_a_copy_of_the_tail(self, rng):
        symbols = Mapper(QPSK).map(rng.integers(0, 2, 96, dtype=np.uint8))
        samples = OfdmModulator().modulate(symbols)
        assert np.allclose(samples[:16], samples[64:80])

    def test_invalid_cyclic_prefix_rejected(self):
        with pytest.raises(ValueError):
            OfdmModulator(cyclic_prefix=64)


class TestRoundTrip:
    def test_modulate_demodulate_recovers_symbols(self, rng):
        symbols = Mapper(QAM16).map(rng.integers(0, 2, 3 * 192, dtype=np.uint8))
        samples = OfdmModulator().modulate(symbols)
        recovered = OfdmDemodulator().demodulate(samples)
        assert np.allclose(recovered, symbols, atol=1e-10)

    def test_flat_channel_gain_is_equalised(self, rng):
        symbols = Mapper(QPSK).map(rng.integers(0, 2, 96, dtype=np.uint8))
        samples = OfdmModulator().modulate(symbols) * (0.5 - 0.25j)
        recovered = OfdmDemodulator().demodulate(samples, channel_gain=0.5 - 0.25j)
        assert np.allclose(recovered, symbols, atol=1e-10)

    def test_per_symbol_gain_vector(self, rng):
        symbols = Mapper(QPSK).map(rng.integers(0, 2, 2 * 96, dtype=np.uint8))
        modulator = OfdmModulator()
        samples = modulator.modulate(symbols).reshape(2, 80)
        gains = np.array([1.0 + 0j, 0.3 + 0.4j])
        faded = (samples * gains[:, None]).reshape(-1)
        recovered = OfdmDemodulator().demodulate(faded, channel_gain=gains)
        assert np.allclose(recovered, symbols, atol=1e-10)

    def test_gain_vector_length_checked(self, rng):
        symbols = Mapper(QPSK).map(rng.integers(0, 2, 96, dtype=np.uint8))
        samples = OfdmModulator().modulate(symbols)
        with pytest.raises(ValueError):
            OfdmDemodulator().demodulate(samples, channel_gain=np.ones(3, dtype=complex))

    def test_sample_count_must_be_whole_symbols(self):
        with pytest.raises(ValueError):
            OfdmDemodulator().demodulate(np.zeros(81, dtype=complex))

    def test_noise_variance_preserved_by_orthonormal_fft(self, rng):
        """White time-domain noise keeps its variance per subcarrier."""
        noise = (rng.normal(size=64 * 200) + 1j * rng.normal(size=64 * 200)) / np.sqrt(2)
        demodulated = OfdmDemodulator(cyclic_prefix=0).demodulate(noise)
        assert np.var(demodulated) == pytest.approx(1.0, rel=0.1)


class TestHelpers:
    def test_num_ofdm_symbols_rounds_up(self):
        assert num_ofdm_symbols(96, 96) == 1
        assert num_ofdm_symbols(97, 96) == 2
        assert num_ofdm_symbols(1, 192) == 1
