"""Unit tests for the 802.11a/g block interleaver."""

import numpy as np
import pytest

from repro.phy.interleaver import Interleaver, interleaver_permutation
from repro.phy.params import RATE_TABLE


class TestPermutation:
    def test_is_a_permutation(self, any_rate):
        perm = interleaver_permutation(
            any_rate.coded_bits_per_symbol, any_rate.modulation.bits_per_symbol
        )
        assert sorted(perm) == list(range(any_rate.coded_bits_per_symbol))

    def test_known_bpsk_values(self):
        # For N_CBPS = 48, N_BPSC = 1 the two permutations reduce to
        # j = 3 * (k mod 16) + floor(k / 16).
        perm = interleaver_permutation(48, 1)
        k = np.arange(48)
        assert np.array_equal(perm, 3 * (k % 16) + k // 16)

    def test_rejects_non_multiple_of_16(self):
        with pytest.raises(ValueError):
            interleaver_permutation(50, 2)

    def test_adjacent_bits_are_separated(self, any_rate):
        """Adjacent coded bits never land on adjacent positions (burst protection)."""
        perm = interleaver_permutation(
            any_rate.coded_bits_per_symbol, any_rate.modulation.bits_per_symbol
        )
        gaps = np.abs(np.diff(perm.astype(int)))
        assert gaps.min() >= 2


class TestInterleaver:
    def test_round_trip(self, any_rate, rng):
        interleaver = Interleaver(any_rate)
        bits = rng.integers(0, 2, 3 * any_rate.coded_bits_per_symbol, dtype=np.uint8)
        assert np.array_equal(
            interleaver.deinterleave(interleaver.interleave(bits)), bits
        )

    def test_round_trip_on_soft_values(self, qam16_half, rng):
        interleaver = Interleaver(qam16_half)
        soft = rng.normal(size=qam16_half.coded_bits_per_symbol)
        assert np.allclose(interleaver.deinterleave(interleaver.interleave(soft)), soft)

    def test_interleaving_actually_moves_bits(self, qam16_half):
        interleaver = Interleaver(qam16_half)
        bits = np.arange(qam16_half.coded_bits_per_symbol) % 2
        assert not np.array_equal(interleaver.interleave(bits), bits)

    def test_each_symbol_is_interleaved_independently(self, qam16_half, rng):
        interleaver = Interleaver(qam16_half)
        block = qam16_half.coded_bits_per_symbol
        first = rng.integers(0, 2, block, dtype=np.uint8)
        second = rng.integers(0, 2, block, dtype=np.uint8)
        combined = interleaver.interleave(np.concatenate([first, second]))
        assert np.array_equal(combined[:block], interleaver.interleave(first))
        assert np.array_equal(combined[block:], interleaver.interleave(second))

    def test_partial_symbol_is_rejected(self, qam16_half):
        interleaver = Interleaver(qam16_half)
        with pytest.raises(ValueError):
            interleaver.interleave(np.zeros(10, dtype=np.uint8))

    def test_block_size_tracks_rate(self):
        sizes = {Interleaver(rate).block_size for rate in RATE_TABLE}
        assert sizes == {48, 96, 192, 288}
