"""Unit tests for the 802.11 scrambler."""

import numpy as np
import pytest

from repro.phy.scrambler import Scrambler, descramble, scramble, scrambler_sequence


class TestScramblerSequence:
    def test_period_is_127(self):
        sequence = scrambler_sequence(254)
        assert np.array_equal(sequence[:127], sequence[127:254])

    def test_sequence_is_not_constant(self):
        sequence = scrambler_sequence(127)
        assert 0 < sequence.sum() < 127

    def test_all_ones_seed_matches_standard_prefix(self):
        # First bits of the 802.11 scrambler sequence for the all-ones seed.
        expected = np.array([0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1], dtype=np.uint8)
        assert np.array_equal(scrambler_sequence(12, seed=0x7F), expected)

    def test_different_seeds_give_shifted_sequences(self):
        assert not np.array_equal(
            scrambler_sequence(64, seed=0x7F), scrambler_sequence(64, seed=0x5D)
        )

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            scrambler_sequence(10, seed=0)

    def test_length_below_one_period(self):
        assert scrambler_sequence(5).size == 5


class TestScrambling:
    def test_scramble_is_an_involution(self, rng):
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        assert np.array_equal(descramble(scramble(bits)), bits)

    def test_scramble_changes_the_data(self, rng):
        bits = rng.integers(0, 2, 500, dtype=np.uint8)
        assert not np.array_equal(scramble(bits), bits)

    def test_scramble_breaks_long_runs(self):
        zeros = np.zeros(508, dtype=np.uint8)
        scrambled = scramble(zeros)
        # The scrambled all-zeros payload is the keystream: roughly balanced.
        assert 0.4 < scrambled.mean() < 0.6

    def test_seed_mismatch_corrupts_descrambling(self, rng):
        bits = rng.integers(0, 2, 200, dtype=np.uint8)
        garbled = descramble(scramble(bits, seed=0x7F), seed=0x11)
        assert not np.array_equal(garbled, bits)

    def test_scrambler_object_is_reusable(self, rng):
        scrambler = Scrambler(seed=0x2A)
        bits = rng.integers(0, 2, 64, dtype=np.uint8)
        assert np.array_equal(scrambler(scrambler(bits)), bits)

    def test_scrambler_object_rejects_bad_seed(self):
        with pytest.raises(ValueError):
            Scrambler(seed=0x100)
