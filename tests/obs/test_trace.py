"""Tests for the tracing core: spans, propagation, sink, and the CLI."""

import io
import json
import os
import threading

import pytest

from repro.obs import phases
from repro.obs.trace import (NULL_SPAN, NULL_TRACER, NullTracer, Tracer,
                             build_traces, configure, current_span, disable,
                             get_tracer, load_spans, main, parse_context,
                             set_tracer, sink_dir)


@pytest.fixture()
def tracer(tmp_path):
    """An enabled tracer into a scratch sink; restores the null tracer."""
    active = configure(tmp_path / "traces", proc="test")
    yield active
    disable()


def read_sink(trace_dir):
    records = []
    for name in sorted(os.listdir(trace_dir)):
        with open(os.path.join(trace_dir, name), encoding="utf-8") as handle:
            for line in handle:
                records.append(json.loads(line))
    return records


class TestContext:
    def test_round_trip(self, tracer):
        span = tracer.start("request")
        assert parse_context(span.context()) \
            == (span.trace_id, span.span_id)

    @pytest.mark.parametrize("bad", [
        None, 7, "", "nocolon", ":tail", "head:", "a:b\x00c",
        "x" * 65 + ":y",
    ])
    def test_malformed_contexts_are_rejected(self, bad):
        assert parse_context(bad) is None

    def test_resume_of_bad_context_is_the_null_span(self, tracer):
        assert tracer.resume(None, "simulate") is NULL_SPAN
        assert tracer.resume("garbage", "simulate") is NULL_SPAN

    def test_start_with_bad_context_opens_a_fresh_trace(self, tracer):
        span = tracer.start("request", context="not-a-context")
        assert span.enabled and span.parent_id is None


class TestSpans:
    def test_end_writes_one_record_with_attrs(self, tracer, tmp_path):
        span = tracer.start("request", points=2)
        child = span.child("batch", source="simulated")
        child.annotate(batch=3)
        child.end()
        span.end(outcome="done")
        records = read_sink(tracer.trace_dir)
        assert len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["batch"]["parent"] == span.span_id
        assert by_name["batch"]["trace"] == span.trace_id
        assert by_name["batch"]["attrs"] == {"source": "simulated",
                                             "batch": 3}
        assert by_name["request"]["attrs"] == {"points": 2,
                                               "outcome": "done"}
        assert by_name["request"]["parent"] is None
        assert all(r["proc"] == "test" for r in records)
        assert all(r["dur"] >= 0.0 for r in records)

    def test_end_is_idempotent(self, tracer):
        span = tracer.start("request")
        span.end()
        span.end()
        assert len(read_sink(tracer.trace_dir)) == 1

    def test_resume_joins_the_propagated_trace(self, tracer):
        root = tracer.start("request")
        joined = tracer.resume(root.context(), "simulate", worker="w0")
        assert joined.trace_id == root.trace_id
        assert joined.parent_id == root.span_id

    def test_with_block_sets_the_current_span(self, tracer):
        assert current_span() is None
        with tracer.start("request") as span:
            assert current_span() is span
            with span.child("batch") as child:
                assert current_span() is child
            assert current_span() is span
        assert current_span() is None

    def test_exception_in_with_block_records_the_error(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.start("request"):
                raise RuntimeError("boom")
        (record,) = read_sink(tracer.trace_dir)
        assert "boom" in record["attrs"]["error"]

    def test_event_records_a_completed_span(self, tracer):
        root = tracer.start("request")
        tracer.event("store", root, 123.0, 0.25, {"op": "put"})
        tracer.event("batch", root.context(), 124.0, 0.5)
        tracer.event("skipped", "garbage", 125.0, 0.1)  # silently dropped
        records = read_sink(tracer.trace_dir)
        names = {r["name"] for r in records}
        assert names == {"store", "batch"}
        store = next(r for r in records if r["name"] == "store")
        assert store == {"trace": root.trace_id, "span": store["span"],
                         "parent": root.span_id, "name": "store",
                         "ts": 123.0, "dur": 0.25, "proc": "test",
                         "attrs": {"op": "put"}}


class TestNullPath:
    def test_default_tracer_is_null_and_spans_are_shared(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        assert sink_dir() is None
        span = NULL_TRACER.start("request")
        assert span is NULL_SPAN
        assert span.child("x") is span
        assert span.context() is None
        assert not span  # falsy, so `if span:` guards stay cheap
        with span:
            span.annotate(a=1)
            span.end()

    def test_set_tracer_returns_the_previous_one(self, tmp_path):
        tracer = Tracer(tmp_path, proc="t")
        assert set_tracer(tracer) is NULL_TRACER
        assert get_tracer() is tracer
        assert set_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_type_is_reusable(self):
        assert NullTracer().start("x") is NULL_SPAN


class TestPhaseHook:
    def test_configure_installs_a_hook_that_nests_under_current(
            self, tracer):
        hook = phases.get_phase_hook()
        assert hook is not None
        with tracer.start("simulate") as span:
            hook("decode", 10.0, 0.125, {"packets": 8})
        records = read_sink(tracer.trace_dir)
        decode = next(r for r in records if r["name"] == "decode")
        assert decode["parent"] == span.span_id
        assert decode["dur"] == 0.125

    def test_hook_without_a_current_span_is_a_no_op(self, tracer):
        phases.get_phase_hook()("decode", 10.0, 0.125, None)
        assert read_sink(tracer.trace_dir) == []

    def test_disable_uninstalls_the_hook(self, tmp_path):
        configure(tmp_path / "t", proc="x")
        disable()
        assert phases.get_phase_hook() is None
        assert get_tracer() is NULL_TRACER

    def test_set_phase_hook_returns_previous(self):
        def noop(name, ts, dur, attrs=None):
            pass

        assert phases.set_phase_hook(noop) is None
        assert phases.set_phase_hook(None) is noop


class TestSinkLoading:
    def test_torn_lines_and_foreign_files_are_skipped(self, tmp_path):
        sink = tmp_path / "traces"
        sink.mkdir()
        (sink / "spans-a.jsonl").write_text(
            '{"trace": "t1", "span": "s1", "name": "request", '
            '"ts": 1.0, "dur": 2.0}\n'
            '{"trace": "t1", "span": "s2", "pare\n'   # torn write
            'not json at all\n')
        (sink / "notes.txt").write_text("ignored")
        spans = load_spans(str(sink))
        assert [s["span"] for s in spans] == ["s1"]

    def test_orphans_become_roots(self):
        spans = [
            {"trace": "t", "span": "root", "parent": None,
             "name": "request", "ts": 1.0, "dur": 3.0},
            {"trace": "t", "span": "kid", "parent": "root",
             "name": "batch", "ts": 1.5, "dur": 1.0},
            {"trace": "t", "span": "lost", "parent": "never-written",
             "name": "simulate", "ts": 2.0, "dur": 0.5},
        ]
        (roots, nodes) = build_traces(spans)["t"]
        assert sorted(n.record["span"] for n in roots) == ["lost", "root"]
        root = next(n for n in roots if n.record["span"] == "root")
        assert [c.record["span"] for c in root.children] == ["kid"]
        assert len(nodes) == 3


def make_sink(tmp_path):
    """A two-trace sink built through the real tracer."""
    tracer = configure(tmp_path / "traces", proc="svc")
    try:
        root = tracer.start("request", points=1)
        with tracer.resume(root.context(), "simulate",
                           worker="w0") as sim:
            tracer.event("decode", sim, sim.ts, 0.01, {"packets": 8})
        tracer.event("batch", root, root.ts, 0.02, {"source": "cached"})
        root.end(outcome="done")
        other = tracer.start("request")
        other.end(outcome="done")
        return str(tmp_path / "traces"), root.trace_id
    finally:
        disable()


class TestCLI:
    def test_ls_lists_every_trace(self, tmp_path):
        sink, trace_id = make_sink(tmp_path)
        out = io.StringIO()
        assert main(["ls", sink], out=out) == 0
        text = out.getvalue()
        assert "TRACE" in text and "ROOT" in text
        assert trace_id[:16] in text
        assert text.count("request") == 2

    def test_show_renders_a_nested_waterfall(self, tmp_path):
        sink, trace_id = make_sink(tmp_path)
        out = io.StringIO()
        assert main(["show", sink, trace_id[:8]], out=out) == 0
        lines = out.getvalue().splitlines()
        assert lines[0].startswith("trace %s" % trace_id)
        assert any("request" in line and "|" in line for line in lines)
        # Children render indented under their parent.
        assert any(line.startswith("  simulate") for line in lines)
        assert any(line.startswith("    decode") for line in lines)

    def test_summarize_attributes_stage_source_and_critical_path(
            self, tmp_path):
        sink, trace_id = make_sink(tmp_path)
        out = io.StringIO()
        assert main(["summarize", sink, trace_id[:8]], out=out) == 0
        text = out.getvalue()
        assert "by stage:" in text
        assert "decode" in text and "simulate" in text
        assert "batches by source:" in text and "cached" in text
        assert "critical path:" in text

    def test_ambiguous_and_missing_prefixes_fail_cleanly(self, tmp_path):
        sink = tmp_path / "traces"
        sink.mkdir()
        (sink / "spans-x.jsonl").write_text(
            '{"trace": "aaa1", "span": "s1", "parent": null, '
            '"name": "request", "ts": 1.0, "dur": 1.0}\n'
            '{"trace": "aaa2", "span": "s2", "parent": null, '
            '"name": "request", "ts": 2.0, "dur": 1.0}\n')
        with pytest.raises(SystemExit, match="no trace matching"):
            main(["show", str(sink), "zzzz"], out=io.StringIO())
        with pytest.raises(SystemExit, match="ambiguous"):
            main(["show", str(sink), "aaa"], out=io.StringIO())

    def test_empty_sink_reports_no_traces(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        out = io.StringIO()
        assert main(["ls", str(empty)], out=out) == 0
        assert "no traces" in out.getvalue()
        assert main(["summarize", str(empty)], out=io.StringIO()) == 1


class TestThreadSafety:
    def test_concurrent_span_writes_produce_whole_lines(self, tracer):
        def emit(worker):
            for index in range(50):
                span = tracer.start("request", worker=worker, index=index)
                span.end()

        threads = [threading.Thread(target=emit, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = read_sink(tracer.trace_dir)
        assert len(records) == 200
