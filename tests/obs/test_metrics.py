"""Tests for the metrics registry and the Prometheus text format."""

import math

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, GLOBAL, MetricsRegistry,
                               parse_exposition, render_prometheus)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_only_goes_up(self, registry):
        requests = registry.counter("t_requests_total", "Requests seen.")
        requests.inc()
        requests.inc(4)
        assert requests.unlabelled.value == 5
        with pytest.raises(ValueError, match="only go up"):
            requests.inc(-1)

    def test_gauge_goes_both_ways(self, registry):
        depth = registry.gauge("t_queue_depth", "Queue depth.")
        depth.set(7)
        depth.inc(-3)
        assert depth.unlabelled.value == 4

    def test_histogram_buckets_are_cumulative(self, registry):
        latency = registry.histogram("t_seconds", "Latency.",
                                     buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            latency.observe(value)
        child = latency.unlabelled
        samples = dict(((name, labels), value)
                       for name, labels, value in
                       child.samples("t_seconds", ()))
        assert samples[("t_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("t_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("t_seconds_bucket", (("le", "+Inf"),))] == 4
        assert samples[("t_seconds_count", ())] == 4
        assert samples[("t_seconds_sum", ())] == pytest.approx(6.05)

    def test_unsorted_buckets_are_rejected(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("t_bad", "x", buckets=(1.0, 0.1)).observe(1)

    def test_default_buckets_span_store_hits_to_fused_rounds(self):
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 30


class TestFamilies:
    def test_labels_must_match_the_declared_names(self, registry):
        family = registry.counter("t_total", "x", labelnames=("stage",))
        family.labels(stage="decode").inc()
        with pytest.raises(ValueError, match="expected labels"):
            family.labels(phase="decode")
        with pytest.raises(ValueError, match="expected labels"):
            family.labels()

    def test_unlabelled_requires_a_label_less_family(self, registry):
        family = registry.counter("t_total", "x", labelnames=("stage",))
        with pytest.raises(ValueError, match="has labels"):
            family.unlabelled

    def test_children_are_cached_per_label_values(self, registry):
        family = registry.gauge("t_gauge", "x", labelnames=("worker",))
        assert family.labels(worker="w0") is family.labels(worker="w0")
        assert family.labels(worker="w0") is not family.labels(worker="w1")

    def test_reregistration_is_idempotent_but_shape_checked(self, registry):
        first = registry.counter("t_total", "x", labelnames=("stage",))
        assert registry.counter("t_total", "x",
                                labelnames=("stage",)) is first
        with pytest.raises(ValueError, match="different shape"):
            registry.gauge("t_total", "x", labelnames=("stage",))
        with pytest.raises(ValueError, match="different shape"):
            registry.counter("t_total", "x", labelnames=("other",))

    def test_bad_metric_and_label_names_are_rejected(self, registry):
        with pytest.raises(ValueError, match="bad metric name"):
            registry.counter("0bad", "x")
        with pytest.raises(ValueError, match="bad label name"):
            registry.counter("t_total", "x", labelnames=("le gume",))

    def test_callbacks_replace_but_never_shadow_direct(self, registry):
        registry.callback("t_cb", "x", "gauge", lambda: [({}, 1)])
        registry.callback("t_cb", "x", "gauge", lambda: [({}, 2)])
        parsed = parse_exposition(registry.render())
        assert parsed["t_cb"]["samples"] == [("t_cb", {}, 2.0)]
        registry.counter("t_direct", "x")
        with pytest.raises(ValueError, match="direct family"):
            registry.callback("t_direct", "x", "gauge", lambda: [])
        with pytest.raises(ValueError, match="counter or gauge"):
            registry.callback("t_h", "x", "histogram", lambda: [])


class TestRendering:
    def test_render_round_trips_through_the_validator(self, registry):
        requests = registry.counter("t_requests_total", "Requests.",
                                    labelnames=("state",))
        requests.labels(state="completed").inc(3)
        requests.labels(state="failed").inc()
        registry.histogram("t_stage_seconds", "Stage latency.",
                           labelnames=("stage",),
                           buckets=(0.1, 1.0)).labels(
                               stage="decode").observe(0.5)
        registry.callback("t_heartbeat_age_seconds", "Heartbeat age.",
                          "gauge", lambda: [({"worker": "w0"}, 1.5)])
        text = registry.render()
        parsed = parse_exposition(text)
        assert parsed["t_requests_total"]["type"] == "counter"
        assert (("t_requests_total", {"state": "completed"}, 3.0)
                in parsed["t_requests_total"]["samples"])
        assert parsed["t_stage_seconds"]["type"] == "histogram"
        assert parsed["t_heartbeat_age_seconds"]["samples"] == [
            ("t_heartbeat_age_seconds", {"worker": "w0"}, 1.5)]

    def test_label_values_are_escaped(self, registry):
        gauge = registry.gauge("t_gauge", "x", labelnames=("name",))
        gauge.labels(name='we"ird\\path\nx').set(1)
        parsed = parse_exposition(registry.render())
        ((_, labels, _),) = parsed["t_gauge"]["samples"]
        assert labels == {"name": 'we\\"ird\\\\path\\nx'}

    def test_render_prometheus_concatenates_registries(self, registry):
        other = MetricsRegistry()
        registry.counter("t_a_total", "x").inc()
        other.counter("t_b_total", "x").inc()
        parsed = parse_exposition(render_prometheus(registry, other))
        assert set(parsed) == {"t_a_total", "t_b_total"}

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""
        assert parse_exposition("") == {}


class TestValidator:
    def test_sample_without_type_is_rejected(self):
        with pytest.raises(ValueError, match="without # TYPE"):
            parse_exposition("loose_metric 1\n")

    def test_malformed_type_line_is_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            parse_exposition("# TYPE lonely\n")
        with pytest.raises(ValueError, match="unknown type"):
            parse_exposition("# TYPE m widget\n")

    def test_malformed_labels_are_rejected(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_exposition('# TYPE m gauge\nm{x=unquoted} 1\n')

    def test_duplicate_labels_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate label"):
            parse_exposition('# TYPE m gauge\nm{a="1",a="2"} 1\n')

    def test_non_contiguous_families_are_rejected(self):
        text = ("# TYPE a gauge\na 1\n"
                "# TYPE b gauge\nb 1\n"
                "a 2\n")
        with pytest.raises(ValueError, match="not contiguous"):
            parse_exposition(text)

    def test_histogram_without_inf_bucket_is_rejected(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="1"} 1\nh_sum 0.5\nh_count 1\n')
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            parse_exposition(text)

    def test_histogram_with_non_cumulative_buckets_is_rejected(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                'h_sum 0.5\nh_count 3\n')
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_histogram_count_must_equal_inf_bucket(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\n'
                'h_sum 0.5\nh_count 9\n')
        with pytest.raises(ValueError, match="_count"):
            parse_exposition(text)

    def test_special_values_parse(self):
        parsed = parse_exposition(
            "# TYPE m gauge\nm 1\nm{k=\"inf\"} +Inf\n")
        values = [value for _, _, value in parsed["m"]["samples"]]
        assert values[0] == 1.0 and math.isinf(values[1])


class TestGlobalRegistry:
    def test_service_wide_families_are_preregistered(self):
        # Importing the store and cluster modules registers their
        # latency families in the process-global registry.
        import repro.analysis.store   # noqa: F401
        import repro.service.cluster  # noqa: F401

        parsed = parse_exposition(GLOBAL.render())
        assert "repro_store_seconds" in parsed
        assert "repro_lease_seconds" in parsed
        assert parsed["repro_store_seconds"]["type"] == "histogram"

    def test_empty_histogram_family_renders_validly(self):
        registry = MetricsRegistry()
        registry.histogram("t_unused_seconds", "Never observed.")
        parsed = parse_exposition(registry.render())
        assert parsed["t_unused_seconds"]["samples"] == []
