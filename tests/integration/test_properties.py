"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.fifo import Fifo
from repro.core.module import FunctionModule, SinkModule, SourceModule
from repro.core.network import Network
from repro.core.scheduler import DataflowScheduler
from repro.fixedpoint import FixedPointFormat
from repro.phy.convolutional import IEEE80211_CODE, depuncture, puncture
from repro.phy.interleaver import Interleaver
from repro.phy.mapper import Mapper
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.phy.params import CODE_RATES, MODULATIONS, RATE_TABLE
from repro.phy.scrambler import scramble
from repro.phy.viterbi import ViterbiDecoder
from repro.softphy.ber_estimator import ber_to_llr, llr_to_ber

bit_arrays = st.integers(min_value=1, max_value=300).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
).map(lambda raw: np.frombuffer(raw, dtype=np.uint8) % 2)


class TestFifoProperties:
    @given(st.lists(st.integers(), max_size=50), st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_fifo_is_order_preserving_under_any_interleaving(self, values, capacity):
        """Whatever the enqueue/dequeue interleaving, output order equals input order."""
        fifo = Fifo(capacity=capacity)
        out = []
        pending = list(values)
        while pending or not fifo.is_empty():
            if pending and fifo.can_enq():
                fifo.enq(pending.pop(0))
            if fifo.can_deq():
                out.append(fifo.deq())
        assert out == list(values)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_pipeline_delivers_every_token_exactly_once(self, tokens):
        network = Network("prop")
        source = SourceModule("src", list(tokens))
        stage = FunctionModule("stage", lambda x: x)
        sink = SinkModule("snk")
        network.chain([source, stage, sink])
        DataflowScheduler(network).run()
        assert sink.collected == list(tokens)


class TestScramblerAndCodingProperties:
    @given(bit_arrays, st.integers(min_value=1, max_value=127))
    @settings(max_examples=50, deadline=None)
    def test_scramble_is_involutive_for_any_seed(self, bits, seed):
        assert np.array_equal(scramble(scramble(bits, seed=seed), seed=seed), bits)

    @given(bit_arrays)
    @settings(max_examples=30, deadline=None)
    def test_encoder_output_length_and_termination(self, bits):
        coded = IEEE80211_CODE.encode(bits)
        assert coded.size == 2 * (bits.size + 6)
        # Termination: the last memory steps drive the register back to zero,
        # so encoding is deterministic in the tail regardless of payload.
        assert set(np.unique(coded)) <= {0, 1}

    @given(bit_arrays, st.sampled_from(sorted(CODE_RATES)))
    @settings(max_examples=50, deadline=None)
    def test_puncture_depuncture_preserves_surviving_soft_values(self, bits, rate_name):
        rate = CODE_RATES[rate_name]
        coded = IEEE80211_CODE.encode(bits).astype(float)
        punctured = puncture(coded, rate)
        restored = depuncture(punctured, rate, coded.size)
        # Every surviving position carries its original value; erased
        # positions carry the neutral value.
        pattern = np.resize(np.asarray(rate.puncture_pattern), coded.size)
        assert np.array_equal(restored[pattern], coded[pattern])
        assert np.all(restored[~pattern] == 0.0)

    @given(bit_arrays)
    @settings(max_examples=20, deadline=None)
    def test_viterbi_inverts_the_encoder_without_noise(self, bits):
        soft = (2.0 * IEEE80211_CODE.encode(bits) - 1.0) * 4.0
        result = ViterbiDecoder().decode(soft, bits.size)
        assert np.array_equal(result.bits[0], bits)


class TestModulationProperties:
    @given(
        st.sampled_from(sorted(MODULATIONS)),
        st.integers(min_value=1, max_value=40),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_demapper_hard_decisions_invert_the_mapper(self, name, symbols, random):
        from repro.phy.demapper import Demapper

        modulation = MODULATIONS[name]
        bits = np.array(
            [random.randint(0, 1) for _ in range(symbols * modulation.bits_per_symbol)],
            dtype=np.uint8,
        )
        mapped = Mapper(modulation).map(bits)
        soft = Demapper(modulation).demap(mapped)
        assert np.array_equal((soft > 0).astype(np.uint8), bits)

    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_interleaver_round_trip_for_every_rate(self, rate_index, num_symbols):
        rate = RATE_TABLE[rate_index]
        interleaver = Interleaver(rate)
        rng = np.random.default_rng(rate_index * 13 + num_symbols)
        bits = rng.integers(0, 2, num_symbols * rate.coded_bits_per_symbol, dtype=np.uint8)
        assert np.array_equal(interleaver.deinterleave(interleaver.interleave(bits)), bits)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_ofdm_round_trip_is_lossless(self, num_symbols, seed):
        rng = np.random.default_rng(seed)
        symbols = rng.normal(size=48 * num_symbols) + 1j * rng.normal(size=48 * num_symbols)
        samples = OfdmModulator().modulate(symbols)
        recovered = OfdmDemodulator().demodulate(samples)
        assert np.allclose(recovered, symbols, atol=1e-9)


class TestNumericProperties:
    @given(st.floats(min_value=0.0, max_value=80.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_llr_to_ber_is_monotone_and_bounded(self, llr):
        ber = float(llr_to_ber(llr))
        assert 0.0 < ber <= 0.5
        assert float(llr_to_ber(llr + 1.0)) <= ber

    @given(st.floats(min_value=1e-8, max_value=0.5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_ber_llr_round_trip(self, ber):
        recovered = float(llr_to_ber(ber_to_llr(ber)))
        assert abs(recovered - ber) <= 1e-9 + 1e-6 * ber

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.floats(min_value=-200.0, max_value=200.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_fixed_point_quantisation_invariants(self, integer_bits, fraction_bits, value):
        if integer_bits + fraction_bits == 0:
            return
        fmt = FixedPointFormat(integer_bits, fraction_bits)
        quantised = float(fmt.quantize(value))
        assert fmt.min_value <= quantised <= fmt.max_value
        if fmt.min_value <= value <= fmt.max_value:
            assert abs(quantised - value) <= fmt.resolution / 2 + 1e-12
        # Quantisation is idempotent.
        assert float(fmt.quantize(quantised)) == quantised
