"""Cross-module integration tests: the paper's claims at miniature scale.

Each test here is a scaled-down version of one of the paper's experiments,
small enough for the unit-test suite; the full-size runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis.link import LinkSimulator
from repro.core.scheduler import DataflowScheduler
from repro.mac.evaluation import SoftRateEvaluation
from repro.phy.params import rate_by_mbps
from repro.softphy.ber_estimator import BerEstimator
from repro.softphy.calibration import fit_log_linear, measure_ber_vs_hint
from repro.softphy.packet_ber import ground_truth_packet_ber, packet_ber_estimate
from repro.system.pipelines import build_cosimulation


class TestSoftPhyPipelineProperties:
    """Miniature Figure 5/6: hints predict errors, estimates track reality."""

    def test_hint_error_separation_survives_the_full_ofdm_chain(self, qam16_half):
        simulator = LinkSimulator(qam16_half, snr_db=6.5, decoder="bcjr",
                                  packet_bits=800, seed=0)
        result = simulator.run(12, batch_size=6)
        errors = result.bit_errors
        assert errors.any()
        assert result.hints[errors].mean() < result.hints[~errors].mean()

    def test_log_linear_fit_emerges_from_the_full_chain(self, qam16_half):
        measurement = measure_ber_vs_hint(
            qam16_half, 6.0, "bcjr", num_packets=20, packet_bits=800, seed=2
        )
        fit = fit_log_linear(measurement, min_bits=200)
        assert fit.slope > 0
        assert fit.r_squared > 0.5

    def test_predicted_pber_correlates_with_actual_pber(self, qam16_half):
        simulator = LinkSimulator(qam16_half, snr_db=lambda i: 5.0 + (i % 5),
                                  decoder="bcjr", packet_bits=800, seed=3)
        result = simulator.run(15, batch_size=5)
        estimator = BerEstimator("bcjr")
        predicted = estimator.packet_ber(result.hints, qam16_half.modulation)
        actual = ground_truth_packet_ber(result.tx_bits, result.rx_bits)
        # Rank correlation between prediction and truth must be clearly positive.
        order_pred = np.argsort(np.argsort(predicted))
        order_true = np.argsort(np.argsort(actual))
        correlation = np.corrcoef(order_pred, order_true)[0, 1]
        assert correlation > 0.4

    def test_packet_ber_estimate_shapes(self):
        per_bit = np.full((3, 10), 1e-3)
        assert packet_ber_estimate(per_bit).shape == (3,)


class TestDecoderComparison:
    """Miniature Section 4.4: BCJR at least matches SOVA's decode quality."""

    def test_bcjr_ber_not_worse_than_sova(self, qam16_half):
        results = {}
        for decoder in ("sova", "bcjr"):
            simulator = LinkSimulator(qam16_half, snr_db=6.0, decoder=decoder,
                                      packet_bits=800, seed=4)
            results[decoder] = simulator.run(10, batch_size=5).bit_error_rate
        assert results["bcjr"] <= results["sova"] * 1.5

    def test_soft_decoders_match_viterbi_hard_decisions_at_moderate_snr(self, qam16_half):
        bers = {}
        for decoder in ("viterbi", "sova", "bcjr"):
            simulator = LinkSimulator(qam16_half, snr_db=9.0, decoder=decoder,
                                      packet_bits=800, seed=5)
            bers[decoder] = simulator.run(6, batch_size=3).bit_error_rate
        assert max(bers.values()) - min(bers.values()) < 0.01


class TestFrameworkVersusDirectPath:
    """The LI pipeline and the direct numpy path compute the same thing."""

    def test_cosim_pipeline_matches_direct_receiver(self):
        rate = rate_by_mbps(12)
        model = build_cosimulation(rate, packet_bits=240, decoder="bcjr",
                                   snr_db=30.0, seed=1)
        rng = np.random.default_rng(9)
        payloads = [rng.integers(0, 2, 240, dtype=np.uint8) for _ in range(2)]
        outputs, _ = model.run_packets(payloads)
        # At 30 dB both paths must recover the payload exactly, so agreement
        # with the direct path is agreement on the payload.
        for payload, output in zip(payloads, outputs):
            assert np.array_equal(output["bits"], payload)

    def test_scheduling_policy_does_not_change_functional_results(self):
        rate = rate_by_mbps(6)
        rng = np.random.default_rng(11)
        payloads = [rng.integers(0, 2, 96, dtype=np.uint8) for _ in range(3)]
        outputs = {}
        for lockstep in (False, True):
            model = build_cosimulation(rate, packet_bits=96, decoder="viterbi",
                                       snr_db=16.0, seed=21, lockstep=lockstep)
            out, _ = model.run_packets(list(payloads))
            outputs[lockstep] = [o["bits"] for o in out]
        for a, b in zip(outputs[False], outputs[True]):
            assert np.array_equal(a, b)


class TestSoftRateMiniature:
    """A miniature Figure 7: SoftRate tracks a slowly fading channel."""

    def test_softrate_is_conservative_and_tracks_the_channel(self):
        rates = (rate_by_mbps(6), rate_by_mbps(12), rate_by_mbps(24), rate_by_mbps(54))
        evaluation = SoftRateEvaluation(
            snr_db=14.0, doppler_hz=20.0, num_packets=24, packet_bits=400,
            seed=5, rates=rates,
        )
        result = evaluation.run("bcjr", batch_size=8)
        outcome = result.outcome
        assert outcome.total == 24
        # The protocol must make real selections (it moves off the lowest
        # rate) and err on the safe side: overselection stays rare and most
        # packets are sent at a deliverable (<= optimal) rate.
        assert result.chosen_indices.max() > 0
        assert outcome.fraction("overselect") <= 0.35
        deliverable = np.mean(result.chosen_indices <= result.optimal_indices)
        assert deliverable >= 0.7
        assert outcome.accuracy > 0.25

    def test_achieved_throughput_bounded_by_oracle(self):
        rates = (rate_by_mbps(6), rate_by_mbps(24))
        evaluation = SoftRateEvaluation(
            snr_db=12.0, num_packets=10, packet_bits=200, seed=6, rates=rates
        )
        result = evaluation.run("sova", batch_size=5)
        assert result.achieved_throughput_mbps <= result.optimal_throughput_mbps
