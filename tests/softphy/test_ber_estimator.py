"""Unit tests for LLR-to-BER conversion and the lookup-table estimator."""

import numpy as np
import pytest

from repro.phy.params import QAM16, QPSK
from repro.softphy.ber_estimator import (
    BerEstimator,
    BerLookupTable,
    DEFAULT_SNR_CONSTANTS_DB,
    MIN_BER,
    ber_to_llr,
    llr_to_ber,
)
from repro.softphy.scaling import ScalingFactors


class TestEquationFour:
    def test_zero_llr_means_coin_flip(self):
        assert llr_to_ber(0.0) == pytest.approx(0.5)

    def test_large_llr_means_tiny_ber(self):
        assert llr_to_ber(30.0) < 1e-9 + 1e-12

    def test_monotonically_decreasing(self):
        llrs = np.linspace(0, 25, 50)
        bers = llr_to_ber(llrs)
        assert np.all(np.diff(bers) <= 0)

    def test_known_value(self):
        # LLR = ln(99) corresponds to a 1% error probability.
        assert llr_to_ber(np.log(99.0)) == pytest.approx(0.01)

    def test_output_is_clipped_to_valid_range(self):
        assert llr_to_ber(1e6) >= MIN_BER
        assert llr_to_ber(-10.0) == pytest.approx(0.5)

    def test_round_trip_with_inverse(self):
        for ber in (0.3, 0.01, 1e-4, 1e-6):
            assert llr_to_ber(ber_to_llr(ber)) == pytest.approx(ber, rel=1e-6)

    def test_log_linear_tail(self):
        """For small BER, log(BER) is linear in the LLR -- the Figure 5 shape."""
        llrs = np.array([10.0, 15.0, 20.0])
        log_bers = np.log(llr_to_ber(llrs))
        slopes = np.diff(log_bers) / np.diff(llrs)
        assert slopes[0] == pytest.approx(-1.0, rel=1e-3)
        assert slopes[1] == pytest.approx(-1.0, rel=1e-3)


class TestBerLookupTable:
    def test_lookup_matches_direct_formula(self):
        table = BerLookupTable(scale=0.5, max_hint=63)
        hints = np.array([0.0, 10.0, 30.0, 63.0])
        assert np.allclose(table.lookup(hints), llr_to_ber(0.5 * hints))

    def test_hints_beyond_range_saturate(self):
        table = BerLookupTable(scale=0.5, max_hint=63)
        assert table.lookup(200.0) == pytest.approx(llr_to_ber(0.5 * 63.0))

    def test_negative_hints_use_magnitude(self):
        table = BerLookupTable(scale=1.0)
        assert table.lookup(-5.0) == pytest.approx(table.lookup(5.0))

    def test_resolution_controls_table_size(self):
        coarse = BerLookupTable(scale=1.0, max_hint=63, resolution=1.0)
        fine = BerLookupTable(scale=1.0, max_hint=63, resolution=0.25)
        assert fine.size > coarse.size

    def test_accepts_scaling_factors_object(self):
        scaling = ScalingFactors(11.0, QAM16, "bcjr")
        table = BerLookupTable(scaling)
        assert table.scale == pytest.approx(scaling.combined)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            BerLookupTable(scale=0.0)


class TestBerEstimator:
    def test_builds_one_table_per_modulation(self):
        estimator = BerEstimator("bcjr")
        estimator.per_bit_ber(np.arange(10.0), QAM16)
        estimator.per_bit_ber(np.arange(10.0), QPSK)
        assert len(estimator._tables) == 2

    def test_table_reuse(self):
        estimator = BerEstimator("bcjr")
        assert estimator.table_for(QAM16) is estimator.table_for("QAM16")

    def test_larger_hints_mean_lower_ber(self):
        estimator = BerEstimator("bcjr")
        bers = estimator.per_bit_ber(np.array([1.0, 2.0, 3.0]), QAM16)
        assert bers[0] > bers[1] > bers[2]

    def test_very_large_hints_saturate_at_the_table_floor(self):
        estimator = BerEstimator("bcjr")
        bers = estimator.per_bit_ber(np.array([40.0, 63.0, 100.0]), QAM16)
        assert bers[0] == bers[1] == bers[2]

    def test_packet_ber_is_mean_of_per_bit(self):
        estimator = BerEstimator("bcjr")
        hints = np.array([5.0, 10.0, 15.0])
        assert estimator.packet_ber(hints, QAM16) == pytest.approx(
            estimator.per_bit_ber(hints, QAM16).mean()
        )

    def test_packet_ber_batched(self):
        estimator = BerEstimator("bcjr")
        hints = np.arange(20.0).reshape(2, 10)
        assert estimator.packet_ber(hints, QAM16).shape == (2,)

    def test_constant_snr_comes_from_modulation_table(self):
        estimator = BerEstimator("bcjr", snr_constants_db={"QAM16": 13.0})
        default = BerEstimator("bcjr")
        assert estimator.table_for(QAM16).scale > default.table_for(QAM16).scale
        assert default.snr_constants_db == DEFAULT_SNR_CONSTANTS_DB

    def test_calibrated_decoder_scales_override_defaults(self):
        custom = BerEstimator("bcjr", decoder_scales={"QAM16": 2.0})
        default = BerEstimator("bcjr")
        assert custom.table_for(QAM16).scale > default.table_for(QAM16).scale

    def test_underestimates_when_actual_snr_is_lower_than_constant(self):
        """The paper's predicted behaviour of the constant-SNR simplification."""
        constant = DEFAULT_SNR_CONSTANTS_DB["QAM16"]
        estimator = BerEstimator("bcjr")
        hint = np.array([2.0])
        estimate = estimator.per_bit_ber(hint, QAM16)[0]
        # Truth computed with the real (lower) SNR: the bit is actually less
        # reliable than the constant-SNR table claims.
        true_low_snr = llr_to_ber(
            ScalingFactors(constant - 3.0, QAM16, "bcjr").true_llr(hint)
        )[0]
        assert estimate < true_low_snr
