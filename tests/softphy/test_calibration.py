"""Unit tests for the BER-versus-hint measurement and the log-linear fit.

These use small simulations (tens of packets) -- enough to exercise the
machinery and its statistical behaviour without the cost of the full
Figure 5 benchmark.
"""

import numpy as np
import pytest

from repro.softphy.ber_estimator import llr_to_ber
from repro.softphy.calibration import (
    BerVersusHint,
    fit_log_linear,
    measure_ber_vs_hint,
)


def synthetic_measurement(scale=0.4, bits_per_bin=20_000, max_hint=30, seed=0):
    """Build a measurement whose BER follows equation 4 exactly."""
    rng = np.random.default_rng(seed)
    hints = np.arange(0.0, max_hint + 1.0)
    bers = llr_to_ber(scale * hints)
    bits = np.full(hints.size, bits_per_bin)
    errors = rng.binomial(bits_per_bin, bers)
    return BerVersusHint(hints, bits, errors, label="synthetic")


class TestBerVersusHint:
    def test_ber_is_errors_over_bits(self):
        measurement = BerVersusHint([0, 1], [100, 200], [10, 2])
        assert np.allclose(measurement.ber, [0.1, 0.01])

    def test_empty_bins_give_nan(self):
        measurement = BerVersusHint([0, 1], [100, 0], [10, 0])
        assert np.isnan(measurement.ber[1])

    def test_confidence_intervals_bracket_point_estimate(self):
        measurement = BerVersusHint([0], [1000], [50])
        low, high = measurement.confidence_intervals()
        assert low[0] < 0.05 < high[0]

    def test_reliable_mask_filters_sparse_bins(self):
        measurement = BerVersusHint([0, 1, 2], [5000, 100, 0], [50, 0, 0])
        mask = measurement.reliable_mask(min_bits=1000, min_errors=1)
        assert list(mask) == [True, False, False]

    def test_merge_accumulates_counts(self):
        a = BerVersusHint([0, 1], [10, 10], [1, 0])
        b = BerVersusHint([0, 1], [20, 20], [3, 1])
        merged = a.merge(b)
        assert list(merged.bits) == [30, 30]
        assert list(merged.errors) == [4, 1]

    def test_merge_requires_matching_bins(self):
        a = BerVersusHint([0, 1], [10, 10], [1, 0])
        b = BerVersusHint([0, 2], [10, 10], [1, 0])
        with pytest.raises(ValueError):
            a.merge(b)


class TestLogLinearFit:
    def test_recovers_synthetic_slope(self):
        # The fit runs over the whole hint range, including the bend where
        # the BER saturates towards 0.5, so the recovered slope is slightly
        # shallower than the asymptotic scale.
        measurement = synthetic_measurement(scale=0.4)
        fit = fit_log_linear(measurement, min_bits=100)
        assert fit.slope == pytest.approx(0.4, rel=0.25)
        assert fit.r_squared > 0.9

    def test_predict_ber_decreases_with_hint(self):
        fit = fit_log_linear(synthetic_measurement(scale=0.5), min_bits=100)
        assert fit.predict_ber(5.0) > fit.predict_ber(20.0)

    def test_hint_for_ber_inverts_prediction(self):
        fit = fit_log_linear(synthetic_measurement(scale=0.5), min_bits=100)
        hint = fit.hint_for_ber(1e-4)
        assert fit.predict_ber(hint) == pytest.approx(1e-4, rel=1e-6)

    def test_implied_decoder_scale_factorises_slope(self):
        fit = fit_log_linear(synthetic_measurement(scale=0.5), min_bits=100)
        implied = fit.implied_decoder_scale(snr_db=6.0, modulation="QAM16")
        from repro.softphy.scaling import modulation_scale, snr_scale

        assert implied * snr_scale(6.0) * modulation_scale("QAM16") == pytest.approx(
            fit.slope
        )

    def test_fit_needs_enough_bins(self):
        sparse = BerVersusHint([0, 1, 2], [10, 10, 10], [1, 0, 0])
        with pytest.raises(ValueError):
            fit_log_linear(sparse, min_bits=1000)


class TestMeasureBerVsHint:
    def test_measurement_runs_end_to_end(self, qam16_half):
        measurement = measure_ber_vs_hint(
            qam16_half, 6.0, "bcjr", num_packets=6, packet_bits=400, seed=0
        )
        assert measurement.bits.sum() == 6 * 400
        assert measurement.errors.sum() >= 0
        assert "bcjr" in measurement.label

    def test_low_snr_errors_concentrate_at_low_hints(self, qam16_half):
        measurement = measure_ber_vs_hint(
            qam16_half, 5.0, "bcjr", num_packets=10, packet_bits=400, seed=1
        )
        errors = measurement.errors
        assert errors.sum() > 0
        low_hint_errors = errors[: errors.size // 3].sum()
        high_hint_errors = errors[2 * errors.size // 3 :].sum()
        assert low_hint_errors >= high_hint_errors

    def test_hard_decoder_is_rejected(self, qam16_half):
        with pytest.raises(ValueError):
            measure_ber_vs_hint(
                qam16_half, 6.0, "viterbi", num_packets=2, packet_bits=200
            )
