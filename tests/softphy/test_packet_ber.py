"""Unit tests for per-packet BER computation."""

import numpy as np
import pytest

from repro.softphy.packet_ber import (
    expected_bit_errors,
    ground_truth_packet_ber,
    packet_ber_estimate,
    packet_error_probability,
)


class TestPacketBerEstimate:
    def test_mean_of_per_bit_estimates(self):
        assert packet_ber_estimate([0.1, 0.2, 0.3]) == pytest.approx(0.2)

    def test_batched_input(self):
        estimates = np.array([[0.1, 0.1], [0.4, 0.2]])
        assert np.allclose(packet_ber_estimate(estimates), [0.1, 0.3])

    def test_all_confident_bits_give_small_pber(self):
        assert packet_ber_estimate(np.full(1000, 1e-7)) == pytest.approx(1e-7)


class TestGroundTruth:
    def test_counts_differing_bits(self):
        tx = np.array([0, 1, 0, 1])
        rx = np.array([0, 1, 1, 1])
        assert ground_truth_packet_ber(tx, rx) == pytest.approx(0.25)

    def test_identical_packets_give_zero(self):
        bits = np.ones(100, dtype=np.uint8)
        assert ground_truth_packet_ber(bits, bits) == 0.0

    def test_batched(self):
        tx = np.zeros((2, 4), dtype=np.uint8)
        rx = np.array([[0, 0, 0, 0], [1, 1, 0, 0]], dtype=np.uint8)
        assert np.allclose(ground_truth_packet_ber(tx, rx), [0.0, 0.5])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ground_truth_packet_ber(np.zeros(4), np.zeros(5))


class TestPacketErrorProbability:
    def test_single_certain_error(self):
        assert packet_error_probability([1.0 - 1e-16, 0.0]) == pytest.approx(1.0)

    def test_no_errors(self):
        assert packet_error_probability(np.zeros(10)) == pytest.approx(0.0)

    def test_matches_independent_bit_model(self):
        probabilities = np.array([0.01, 0.02, 0.005])
        expected = 1.0 - np.prod(1.0 - probabilities)
        assert packet_error_probability(probabilities) == pytest.approx(expected)

    def test_small_probabilities_are_stable(self):
        probabilities = np.full(10_000, 1e-7)
        assert packet_error_probability(probabilities) == pytest.approx(1e-3, rel=0.01)

    def test_expected_bit_errors(self):
        assert expected_bit_errors([0.5, 0.25, 0.25]) == pytest.approx(1.0)
