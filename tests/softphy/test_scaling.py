"""Unit tests for the equation 5 scaling factors."""

import pytest

from repro.phy.params import QAM16, QPSK
from repro.softphy.scaling import ScalingFactors, decoder_scale, modulation_scale, snr_scale


class TestIndividualFactors:
    def test_snr_scale_is_linear_snr(self):
        assert snr_scale(0.0) == pytest.approx(1.0)
        assert snr_scale(10.0) == pytest.approx(10.0)

    def test_modulation_scale_accepts_objects_and_names(self):
        assert modulation_scale(QAM16) == modulation_scale("QAM16")

    def test_modulation_scale_unknown(self):
        with pytest.raises(KeyError):
            modulation_scale("QAM1024")

    def test_decoder_scale_known_decoders(self):
        assert decoder_scale("bcjr") > 0
        assert decoder_scale("sova") > 0
        assert decoder_scale("viterbi") == 0.0

    def test_decoder_scale_unknown(self):
        with pytest.raises(KeyError):
            decoder_scale("turbo")


class TestScalingFactors:
    def test_combined_is_product_of_three_factors(self):
        scaling = ScalingFactors(snr_db=10.0, modulation=QAM16, decoder="bcjr")
        expected = snr_scale(10.0) * modulation_scale(QAM16) * decoder_scale("bcjr")
        assert scaling.combined == pytest.approx(expected)

    def test_true_llr_applies_combined_factor(self):
        scaling = ScalingFactors(snr_db=6.0, modulation="QPSK", decoder="bcjr")
        assert scaling.true_llr(2.0) == pytest.approx(2.0 * scaling.combined)

    def test_higher_snr_gives_larger_scale(self):
        low = ScalingFactors(6.0, QAM16, "bcjr")
        high = ScalingFactors(8.0, QAM16, "bcjr")
        assert high.combined > low.combined

    def test_denser_modulation_gives_smaller_scale(self):
        qpsk = ScalingFactors(6.0, QPSK, "bcjr")
        qam16 = ScalingFactors(6.0, QAM16, "bcjr")
        assert qam16.combined < qpsk.combined

    def test_explicit_numeric_decoder_factor(self):
        scaling = ScalingFactors(6.0, QAM16, 0.5)
        assert scaling.decoder_factor == pytest.approx(0.5)
        assert scaling.decoder_name == "custom"

    def test_decoder_dependence_mirrors_figure5(self):
        """Figure 5 shows different slopes for BCJR and SOVA at the same point."""
        bcjr = ScalingFactors(6.0, QAM16, "bcjr")
        sova = ScalingFactors(6.0, QAM16, "sova")
        assert bcjr.combined != sova.combined
