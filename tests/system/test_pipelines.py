"""Tests for the assembled WiLIS co-simulation pipelines (Figure 1)."""

import numpy as np
import pytest

from repro.core.clocks import BER_UNIT_CLOCK
from repro.core.platform import Partition
from repro.core.scheduler import DataflowScheduler, MultiClockScheduler
from repro.phy.params import rate_by_mbps
from repro.system.pipelines import build_cosimulation


@pytest.fixture(scope="module")
def small_model():
    return build_cosimulation(
        rate_by_mbps(24), packet_bits=240, decoder="bcjr", snr_db=15.0, seed=7
    )


def payloads_for(model, count, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 2, model.packet_bits, dtype=np.uint8) for _ in range(count)]


class TestPipelineStructure:
    def test_figure1_module_names_are_present(self, small_model):
        names = set(small_model.network.modules)
        for expected in (
            "packet_source",
            "tx_scrambler",
            "tx_encoder",
            "tx_interleaver",
            "tx_mapper",
            "tx_ofdm_mod",
            "channel",
            "rx_front_end",
            "rx_decoder",
            "rx_ber_estimator",
            "packet_sink",
        ):
            assert expected in names

    def test_channel_lives_in_the_software_partition(self, small_model):
        channel = small_model.network.module("channel")
        assert small_model.platform.partition_of(channel) == Partition.SOFTWARE

    def test_baseband_lives_in_the_hardware_partition(self, small_model):
        for name in ("tx_encoder", "rx_decoder"):
            module = small_model.network.module(name)
            assert small_model.platform.partition_of(module) == Partition.HARDWARE

    def test_ber_estimator_runs_in_its_own_clock_domain(self, small_model):
        estimator = small_model.network.module("rx_ber_estimator")
        assert estimator.clock == BER_UNIT_CLOCK
        assert len(small_model.network.clock_crossings()) >= 1

    def test_hard_viterbi_pipeline_has_no_ber_estimator(self):
        model = build_cosimulation(rate_by_mbps(12), packet_bits=120, decoder="viterbi")
        assert "rx_ber_estimator" not in model.network.modules

    def test_network_is_fully_connected(self, small_model):
        small_model.network.validate()


class TestPipelineExecution:
    def test_packets_flow_end_to_end_without_errors_at_high_snr(self, small_model):
        payloads = payloads_for(small_model, 3)
        outputs, report = small_model.run_packets(payloads)
        assert len(outputs) == 3
        for payload, output in zip(payloads, outputs):
            assert np.array_equal(output["bits"], payload)
            assert output["pber_estimate"] is not None
        assert report.payload_bits == 3 * small_model.packet_bits

    def test_host_link_traffic_is_accounted(self, small_model):
        outputs, report = small_model.run_packets(payloads_for(small_model, 2, seed=1))
        assert report.link_bytes > 0
        assert 0.0 <= report.link_utilization <= 1.0

    def test_payload_size_is_checked(self, small_model):
        with pytest.raises(ValueError):
            small_model.run_packets([np.zeros(10, dtype=np.uint8)])

    def test_decoder_swap_changes_only_configuration(self):
        """Swapping SOVA for BCJR requires no pipeline surgery (plug-n-play)."""
        rng = np.random.default_rng(3)
        payload = rng.integers(0, 2, 240, dtype=np.uint8)
        results = {}
        for decoder in ("sova", "bcjr"):
            model = build_cosimulation(
                rate_by_mbps(24), packet_bits=240, decoder=decoder, snr_db=14.0, seed=11
            )
            outputs, _ = model.run_packets([payload])
            results[decoder] = outputs[0]["bits"]
        assert np.array_equal(results["sova"], payload)
        assert np.array_equal(results["bcjr"], payload)

    def test_rayleigh_channel_variant(self):
        model = build_cosimulation(
            rate_by_mbps(6), packet_bits=96, decoder="viterbi",
            channel="rayleigh", snr_db=20.0, seed=2,
        )
        payloads = payloads_for(model, 2, seed=4)
        outputs, _ = model.run_packets(payloads)
        assert len(outputs) == 2

    def test_multiclock_scheduler_accumulates_simulated_time(self, small_model):
        payloads = payloads_for(small_model, 1, seed=5)
        _, report = small_model.run_packets(
            payloads, scheduler=MultiClockScheduler(small_model.network)
        )
        assert report.simulated_time_us > 0

    def test_lockstep_and_decoupled_agree_on_results(self):
        rng = np.random.default_rng(6)
        payloads = [rng.integers(0, 2, 96, dtype=np.uint8) for _ in range(2)]
        decoupled = build_cosimulation(rate_by_mbps(6), 96, decoder="viterbi",
                                       snr_db=18.0, seed=8)
        lockstep = build_cosimulation(rate_by_mbps(6), 96, decoder="viterbi",
                                      snr_db=18.0, seed=8, lockstep=True)
        out_a, rep_a = decoupled.run_packets(list(payloads))
        out_b, rep_b = lockstep.run_packets(list(payloads))
        for a, b in zip(out_a, out_b):
            assert np.array_equal(a["bits"], b["bits"])
        assert rep_b.scheduler_stats.steps >= rep_a.scheduler_stats.steps
