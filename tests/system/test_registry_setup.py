"""Tests for the built-in plug-n-play implementation catalogue."""

import pytest

from repro.channel.awgn import AwgnChannel
from repro.channel.fading import RayleighFadingChannel
from repro.core.registry import ModuleRegistry
from repro.phy.bcjr import BcjrDecoder
from repro.phy.params import QAM16
from repro.phy.sova import SovaDecoder
from repro.phy.viterbi import ViterbiDecoder
from repro.softphy.ber_estimator import BerEstimator
from repro.system.registry_setup import register_default_implementations


@pytest.fixture
def registry():
    return register_default_implementations(ModuleRegistry())


class TestCatalogue:
    def test_all_roles_registered(self, registry):
        assert set(registry.roles()) >= {"decoder", "channel", "demapper", "estimator"}

    def test_three_decoders_available(self, registry):
        assert registry.implementations("decoder") == ["bcjr", "sova", "viterbi"]

    def test_decoder_factories_build_the_right_classes(self, registry):
        assert isinstance(registry.create("decoder", "viterbi"), ViterbiDecoder)
        assert isinstance(registry.create("decoder", "sova"), SovaDecoder)
        assert isinstance(registry.create("decoder", "bcjr"), BcjrDecoder)

    def test_decoder_kwargs_forwarded(self, registry):
        decoder = registry.create("decoder", "bcjr", block_length=32)
        assert decoder.block_length == 32

    def test_channels(self, registry):
        awgn = registry.create("channel", "awgn", snr_db=7.0)
        fading = registry.create("channel", "rayleigh", snr_db=9.0, doppler_hz=20.0)
        assert isinstance(awgn, AwgnChannel) and awgn.snr_db == 7.0
        assert isinstance(fading, RayleighFadingChannel) and fading.doppler_hz == 20.0

    def test_demappers(self, registry):
        hardware = registry.create("demapper", "hardware", modulation=QAM16)
        ideal = registry.create("demapper", "ideal", modulation=QAM16, snr_db=12.0)
        assert not hardware.scaled
        assert ideal.scaled

    def test_estimators(self, registry):
        lookup = registry.create("estimator", "lookup", decoder="sova")
        assert isinstance(lookup, BerEstimator)
        exact = registry.create("estimator", "exact", decoder="bcjr")
        assert hasattr(exact, "per_bit_ber")

    def test_registration_is_idempotent(self, registry):
        again = register_default_implementations(registry)
        assert again is registry
        assert again.implementations("decoder") == ["bcjr", "sova", "viterbi"]

    def test_configuration_swap_is_one_word(self, registry):
        """The paper's plug-n-play claim: swapping a decoder is configuration."""
        base = {"decoder": "sova"}
        swapped = {"decoder": "bcjr"}
        assert isinstance(
            registry.build_configuration(base)["decoder"], SovaDecoder
        )
        assert isinstance(
            registry.build_configuration(swapped)["decoder"], BcjrDecoder
        )
