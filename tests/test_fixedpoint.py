"""Unit tests for the fixed-point formats."""

import numpy as np
import pytest

from repro.fixedpoint import FixedPointFormat, quantize
from repro.fixedpoint.fixed import llr_quantizer


class TestFixedPointFormat:
    def test_total_bits_includes_sign(self):
        assert FixedPointFormat(3, 4).total_bits == 8
        assert FixedPointFormat(3, 4, signed=False).total_bits == 7

    def test_resolution(self):
        assert FixedPointFormat(2, 3).resolution == pytest.approx(0.125)

    def test_range_signed(self):
        fmt = FixedPointFormat(2, 1)
        assert fmt.max_value == pytest.approx(3.5)
        assert fmt.min_value == pytest.approx(-4.0)

    def test_range_unsigned(self):
        fmt = FixedPointFormat(2, 1, signed=False)
        assert fmt.min_value == 0.0

    def test_quantize_rounds_to_nearest(self):
        fmt = FixedPointFormat(3, 2)
        assert float(fmt.quantize(1.10)) == pytest.approx(1.0)
        assert float(fmt.quantize(1.15)) == pytest.approx(1.25)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(2, 2)
        assert float(fmt.quantize(100.0)) == pytest.approx(fmt.max_value)
        assert float(fmt.quantize(-100.0)) == pytest.approx(fmt.min_value)

    def test_quantize_preserves_shape(self, rng):
        fmt = FixedPointFormat(3, 3)
        values = rng.normal(size=(4, 5))
        assert fmt.quantize(values).shape == (4, 5)

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        fmt = FixedPointFormat(4, 4)
        values = rng.uniform(-10, 10, size=1000)
        errors = fmt.quantization_error(values)
        assert np.max(np.abs(errors)) <= fmt.resolution / 2 + 1e-12

    def test_representable_count(self):
        assert FixedPointFormat(3, 0).representable_count() == 16

    def test_equality_and_hash(self):
        assert FixedPointFormat(2, 2) == FixedPointFormat(2, 2)
        assert FixedPointFormat(2, 2) != FixedPointFormat(2, 3)
        assert len({FixedPointFormat(2, 2), FixedPointFormat(2, 2)}) == 1

    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(-1, 2)
        with pytest.raises(ValueError):
            FixedPointFormat(0, 0)

    def test_quantize_helper(self):
        assert float(quantize(0.3, 2, 1)) == pytest.approx(0.5)


class TestLlrQuantizer:
    def test_total_bits_respected(self):
        for bits in (3, 4, 6, 8):
            fmt = llr_quantizer(bits, max_abs=8.0)
            assert fmt.total_bits <= bits

    def test_range_covers_requested_magnitude(self):
        fmt = llr_quantizer(6, max_abs=8.0)
        assert fmt.max_value >= 7.0

    def test_narrow_quantizer_is_coarse(self):
        narrow = llr_quantizer(3, max_abs=4.0)
        wide = llr_quantizer(8, max_abs=4.0)
        assert narrow.resolution > wide.resolution

    def test_minimum_width_enforced(self):
        with pytest.raises(ValueError):
            llr_quantizer(1)
