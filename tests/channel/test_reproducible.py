"""Unit tests for the reproducible per-packet noise streams."""

import numpy as np

from repro.channel.reproducible import ReproducibleNoise


class TestReproducibleNoise:
    def test_same_packet_same_purpose_gives_identical_stream(self):
        noise = ReproducibleNoise(seed=5)
        a = noise.rng_for(3, "noise").normal(size=100)
        b = noise.rng_for(3, "noise").normal(size=100)
        assert np.array_equal(a, b)

    def test_prefix_property_across_different_lengths(self):
        """Evaluating the same packet at different rates shares a noise prefix."""
        noise = ReproducibleNoise(seed=5)
        short = noise.rng_for(7, "noise").normal(size=50)
        long = noise.rng_for(7, "noise").normal(size=200)
        assert np.array_equal(long[:50], short)

    def test_different_packets_are_independent(self):
        noise = ReproducibleNoise(seed=5)
        a = noise.rng_for(0, "noise").normal(size=100)
        b = noise.rng_for(1, "noise").normal(size=100)
        assert not np.array_equal(a, b)

    def test_different_purposes_are_independent(self):
        noise = ReproducibleNoise(seed=5)
        a = noise.rng_for(0, "noise").normal(size=100)
        b = noise.rng_for(0, "payload").normal(size=100)
        assert not np.array_equal(a, b)

    def test_master_seed_changes_everything(self):
        a = ReproducibleNoise(seed=1).rng_for(0, "noise").normal(size=50)
        b = ReproducibleNoise(seed=2).rng_for(0, "noise").normal(size=50)
        assert not np.array_equal(a, b)

    def test_two_instances_with_same_seed_agree(self):
        a = ReproducibleNoise(seed=9).rng_for(4, "x").normal(size=20)
        b = ReproducibleNoise(seed=9).rng_for(4, "x").normal(size=20)
        assert np.array_equal(a, b)

    def test_payload_is_binary_and_deterministic(self):
        noise = ReproducibleNoise(seed=0)
        payload = noise.payload(2, 128)
        assert payload.shape == (128,)
        assert set(np.unique(payload)) <= {0, 1}
        assert np.array_equal(payload, ReproducibleNoise(seed=0).payload(2, 128))
