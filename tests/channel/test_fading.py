"""Unit tests for the Jakes fading process and the Rayleigh fading channel."""

import numpy as np
import pytest

from repro.channel.fading import JakesFadingProcess, RayleighFadingChannel


class TestJakesFadingProcess:
    def test_mean_power_is_approximately_one(self):
        process = JakesFadingProcess(doppler_hz=20.0, seed=0)
        times = np.linspace(0.0, 20.0, 20_000)
        gains = process.gain(times)
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.15)

    def test_seed_makes_trace_reproducible(self):
        times = np.linspace(0.0, 1.0, 100)
        a = JakesFadingProcess(seed=7).gain(times)
        b = JakesFadingProcess(seed=7).gain(times)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        times = np.linspace(0.0, 1.0, 100)
        assert not np.array_equal(
            JakesFadingProcess(seed=1).gain(times), JakesFadingProcess(seed=2).gain(times)
        )

    def test_gain_varies_over_a_coherence_time(self):
        process = JakesFadingProcess(doppler_hz=20.0, seed=3)
        # Over 100 ms (several coherence times at 20 Hz) the envelope moves.
        envelope = np.abs(process.gain(np.linspace(0.0, 0.1, 50)))
        assert envelope.max() - envelope.min() > 0.1

    def test_gain_is_smooth_over_a_packet(self):
        process = JakesFadingProcess(doppler_hz=20.0, seed=3)
        # An 802.11 frame lasts well under a millisecond: the gain barely moves.
        gains = process.gain(np.array([0.010, 0.0101]))
        assert abs(gains[1] - gains[0]) < 0.02

    def test_scalar_time_returns_scalar(self):
        gain = JakesFadingProcess(seed=0).gain(0.5)
        assert np.isscalar(gain) or gain.shape == ()

    def test_envelope_db(self):
        process = JakesFadingProcess(seed=0)
        db = process.envelope_db(np.linspace(0, 1, 10))
        assert db.shape == (10,)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            JakesFadingProcess(doppler_hz=0.0)
        with pytest.raises(ValueError):
            JakesFadingProcess(num_oscillators=0)

    def test_envelope_is_rayleigh_like(self):
        """About 50% of samples should be below the mean power (Rayleigh median)."""
        process = JakesFadingProcess(doppler_hz=20.0, seed=11)
        power = np.abs(process.gain(np.linspace(0.0, 50.0, 50_000))) ** 2
        below = np.mean(power < np.log(2))  # Rayleigh power median = ln 2 * mean
        assert 0.4 < below < 0.6


class TestRayleighFadingChannel:
    def test_apply_returns_samples_and_gain(self, rng):
        channel = RayleighFadingChannel(snr_db=10.0, seed=0)
        samples = np.ones(100, dtype=complex)
        received, gain = channel.apply(samples, rng=rng)
        assert received.shape == samples.shape
        assert isinstance(complex(gain), complex)

    def test_advance_moves_the_fade(self):
        channel = RayleighFadingChannel(snr_db=10.0, doppler_hz=20.0, seed=1)
        gain_before = channel.gain_now()
        channel.advance(0.5)
        assert channel.current_time_s == pytest.approx(0.5)
        assert abs(channel.gain_now() - gain_before) > 1e-3

    def test_advance_rejects_negative_time(self):
        channel = RayleighFadingChannel(snr_db=10.0, seed=1)
        with pytest.raises(ValueError):
            channel.advance(-1.0)

    def test_instantaneous_snr_tracks_fade_depth(self):
        channel = RayleighFadingChannel(snr_db=10.0, seed=2)
        expected = 10.0 + 10.0 * np.log10(np.abs(channel.gain_now()) ** 2)
        assert channel.instantaneous_snr_db() == pytest.approx(expected)

    def test_noise_variance_from_mean_snr(self):
        channel = RayleighFadingChannel(snr_db=20.0, seed=0)
        assert channel.noise_variance == pytest.approx(0.01)
