"""Unit tests for the AWGN channel."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel, awgn, noise_variance_for_snr, snr_db_to_linear


class TestSnrConversions:
    def test_db_to_linear(self):
        assert snr_db_to_linear(0.0) == pytest.approx(1.0)
        assert snr_db_to_linear(10.0) == pytest.approx(10.0)
        assert snr_db_to_linear(3.0) == pytest.approx(1.995, rel=1e-3)

    def test_noise_variance_is_inverse_snr(self):
        assert noise_variance_for_snr(10.0) == pytest.approx(0.1)
        assert noise_variance_for_snr(0.0, signal_power=2.0) == pytest.approx(2.0)

    def test_vectorised_conversion(self):
        snrs = np.array([0.0, 10.0, 20.0])
        assert np.allclose(snr_db_to_linear(snrs), [1.0, 10.0, 100.0])


class TestAwgnFunction:
    def test_noise_power_matches_requested_snr(self, rng):
        signal = np.ones(200_000, dtype=complex)
        received = awgn(signal, 7.0, rng=rng)
        measured = np.var(received - signal)
        assert measured == pytest.approx(noise_variance_for_snr(7.0), rel=0.05)

    def test_noise_is_circularly_symmetric(self, rng):
        received = awgn(np.zeros(100_000, dtype=complex), 0.0, rng=rng)
        assert np.var(received.real) == pytest.approx(np.var(received.imag), rel=0.1)
        assert abs(np.mean(received)) < 0.02

    def test_high_snr_barely_perturbs(self, rng):
        signal = np.ones(1000, dtype=complex)
        received = awgn(signal, 60.0, rng=rng)
        assert np.max(np.abs(received - signal)) < 0.01

    def test_same_rng_seed_reproduces_noise(self):
        signal = np.ones(100, dtype=complex)
        a = awgn(signal, 5.0, rng=np.random.default_rng(3))
        b = awgn(signal, 5.0, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_signal_power_scaling(self, rng):
        signal = np.zeros(100_000, dtype=complex)
        received = awgn(signal, 10.0, rng=rng, signal_power=4.0)
        assert np.var(received) == pytest.approx(0.4, rel=0.05)


class TestAwgnChannel:
    def test_channel_applies_configured_snr(self):
        channel = AwgnChannel(snr_db=3.0, seed=1)
        signal = np.ones(100_000, dtype=complex)
        received = channel(signal)
        assert np.var(received - signal) == pytest.approx(channel.noise_variance, rel=0.05)

    def test_reset_replays_the_same_noise(self):
        channel = AwgnChannel(snr_db=5.0, seed=42)
        signal = np.ones(64, dtype=complex)
        first = channel(signal)
        channel.reset()
        second = channel(signal)
        assert np.array_equal(first, second)

    def test_samples_processed_counter(self):
        channel = AwgnChannel(snr_db=5.0, seed=0)
        channel(np.zeros(10, dtype=complex))
        channel(np.zeros(15, dtype=complex))
        assert channel.samples_processed == 25

    def test_unseeded_channels_differ(self):
        signal = np.ones(32, dtype=complex)
        assert not np.array_equal(AwgnChannel(5.0)(signal), AwgnChannel(5.0)(signal))
