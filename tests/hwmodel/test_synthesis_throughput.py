"""Unit tests for the synthesis report and the pipeline throughput model."""

import pytest

from repro.hwmodel.synthesis import SynthesisReport, synthesize
from repro.hwmodel.throughput import (
    BASEBAND_CLOCK_MHZ,
    SAMPLES_PER_SYMBOL,
    hardware_time_seconds,
    line_rate_duration_seconds,
    meets_line_rate,
    sustainable_rate_mbps,
    symbol_rate_hz,
)
from repro.hwmodel.area import DecoderAreaParameters
from repro.phy.params import RATE_TABLE, rate_by_mbps


class TestSynthesisReport:
    def test_default_report_matches_figure8_totals(self):
        report = synthesize()
        totals = report.totals()
        assert totals["bcjr"].luts == 32936
        assert totals["sova"].luts == 15114
        assert totals["viterbi"].luts == 7569

    def test_headline_ratios(self):
        report = synthesize()
        assert report.bcjr_to_sova_ratio == pytest.approx(2.18, abs=0.05)
        assert report.sova_to_viterbi_ratio == pytest.approx(2.0, abs=0.05)

    def test_table_contains_every_figure8_row(self):
        rendered = synthesize().table().render()
        for name in ("BCJR", "SOVA", "Viterbi", "Final Rev. Buf.", "Soft TU"):
            assert name in rendered

    def test_custom_parameters_change_the_report(self):
        small = synthesize(DecoderAreaParameters(block_length=32))
        assert small.totals()["bcjr"].luts < synthesize().totals()["bcjr"].luts

    def test_report_type(self):
        assert isinstance(synthesize(), SynthesisReport)


class TestThroughputModel:
    def test_symbol_rate_at_35_mhz(self):
        assert symbol_rate_hz(35.0) == pytest.approx(35e6 / 80)

    def test_every_80211g_rate_is_sustained(self):
        """The paper: the 35/60 MHz configuration reaches 54 Mb/s."""
        for rate in RATE_TABLE:
            assert meets_line_rate(rate)

    def test_sustainable_rate_exceeds_line_rate_with_headroom(self):
        rate = rate_by_mbps(54)
        assert sustainable_rate_mbps(rate) > 54.0

    def test_slow_clock_cannot_sustain_the_top_rate(self):
        rate = rate_by_mbps(54)
        assert not meets_line_rate(rate, baseband_clock_mhz=10.0)

    def test_bit_unit_clock_can_become_the_bottleneck(self):
        rate = rate_by_mbps(54)
        generous_baseband = sustainable_rate_mbps(rate, baseband_clock_mhz=1000.0,
                                                  bit_clock_mhz=60.0)
        assert generous_baseband == pytest.approx(60.0, rel=0.01)

    def test_hardware_time_for_symbols(self):
        seconds = hardware_time_seconds(rate_by_mbps(24), num_symbols=100)
        assert seconds == pytest.approx(100 * SAMPLES_PER_SYMBOL / (BASEBAND_CLOCK_MHZ * 1e6))

    def test_hardware_runs_faster_than_the_air_interface(self):
        """At 35 MHz the modelled pipeline is faster than real time."""
        assert hardware_time_seconds(rate_by_mbps(54), 100) < line_rate_duration_seconds(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            symbol_rate_hz(0.0)
        with pytest.raises(ValueError):
            hardware_time_seconds(rate_by_mbps(6), -1)
