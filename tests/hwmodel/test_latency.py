"""Unit tests for the latency model (the Section 4.3 formulas)."""

import pytest

from repro.hwmodel.latency import (
    IEEE80211_LATENCY_BOUND_US,
    LatencyReport,
    bcjr_latency_cycles,
    cycles_to_microseconds,
    decoder_latency_report,
    meets_latency_bound,
    sova_latency_cycles,
    viterbi_latency_cycles,
)


class TestSovaLatency:
    def test_paper_configuration_is_140_cycles(self):
        assert sova_latency_cycles(64, 64) == 140

    def test_formula_is_l_plus_k_plus_12(self):
        assert sova_latency_cycles(32, 48) == 32 + 48 + 12

    def test_paper_microsecond_claim(self):
        latency = cycles_to_microseconds(sova_latency_cycles(64, 64), 60.0)
        assert latency == pytest.approx(2.33, abs=0.05)
        assert latency <= 2.3 + 0.05  # "no more than 2.3 us"

    def test_positive_lengths_required(self):
        with pytest.raises(ValueError):
            sova_latency_cycles(0, 64)


class TestBcjrLatency:
    def test_paper_configuration_is_135_cycles(self):
        assert bcjr_latency_cycles(64) == 135

    def test_formula_is_2n_plus_7(self):
        assert bcjr_latency_cycles(32) == 71

    def test_paper_microsecond_claim(self):
        assert cycles_to_microseconds(bcjr_latency_cycles(64), 60.0) == pytest.approx(
            2.25, abs=0.05
        )

    def test_comparable_to_sova_at_same_window(self):
        """The paper notes the two latencies are comparable at 64."""
        assert abs(bcjr_latency_cycles(64) - sova_latency_cycles(64, 64)) <= 10

    def test_positive_block_required(self):
        with pytest.raises(ValueError):
            bcjr_latency_cycles(0)


class TestLatencyBound:
    def test_both_decoders_meet_the_80211_bound(self):
        for cycles in (sova_latency_cycles(64, 64), bcjr_latency_cycles(64)):
            assert meets_latency_bound(cycles_to_microseconds(cycles, 60.0))

    def test_bound_value(self):
        assert IEEE80211_LATENCY_BOUND_US == 25.0

    def test_very_long_windows_break_the_bound(self):
        cycles = sova_latency_cycles(1000, 1000)
        assert not meets_latency_bound(cycles_to_microseconds(cycles, 60.0))

    def test_viterbi_latency_is_shortest(self):
        assert viterbi_latency_cycles(64) < sova_latency_cycles(64, 64)
        assert viterbi_latency_cycles(64) < bcjr_latency_cycles(64)


class TestLatencyReport:
    def test_report_fields(self):
        report = LatencyReport("sova", 140, clock_mhz=60.0)
        assert report.microseconds == pytest.approx(2.33, abs=0.01)
        assert report.meets_80211_bound

    def test_decoder_latency_report_dispatch(self):
        assert decoder_latency_report("sova").cycles == 140
        assert decoder_latency_report("bcjr").cycles == 135
        assert decoder_latency_report("bcjr", block_length=32).cycles == 71
        assert decoder_latency_report("viterbi").cycles == viterbi_latency_cycles(64)

    def test_unknown_decoder_rejected(self):
        with pytest.raises(ValueError):
            decoder_latency_report("turbo")

    def test_conversion_validation(self):
        with pytest.raises(ValueError):
            cycles_to_microseconds(100, 0.0)
