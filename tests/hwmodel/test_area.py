"""Unit tests for the calibrated area model (Figure 8)."""

import pytest

from repro.hwmodel.area import (
    AreaEstimate,
    AreaModel,
    DecoderAreaParameters,
    PAPER_FIGURE8,
)


class TestCalibrationPoint:
    """At the paper's configuration the model reproduces Figure 8 exactly."""

    @pytest.fixture(scope="class")
    def model(self):
        return AreaModel(DecoderAreaParameters())

    @pytest.mark.parametrize("block,expected", sorted(PAPER_FIGURE8.items()))
    def test_every_figure8_row_is_reproduced(self, model, block, expected):
        estimate = model.estimate(block)
        assert estimate.luts == expected[0]
        assert estimate.registers == expected[1]

    def test_bcjr_is_about_twice_sova(self, model):
        assert model.area_ratio("bcjr", "sova") == pytest.approx(2.18, abs=0.1)
        assert model.area_ratio("bcjr", "sova", resource="registers") == pytest.approx(
            2.53, abs=0.1
        )

    def test_sova_is_about_twice_viterbi(self, model):
        assert model.area_ratio("sova", "viterbi") == pytest.approx(2.0, abs=0.1)

    def test_transceiver_overhead_is_about_ten_percent(self, model):
        """The paper's conclusion: SoftPHY costs ~10% of a transceiver."""
        assert 0.03 < model.transceiver_overhead("bcjr") < 0.20
        assert 0.03 < model.transceiver_overhead("sova") < 0.10


class TestParameterScaling:
    def test_longer_bcjr_blocks_cost_more_area(self):
        small = AreaModel(DecoderAreaParameters(block_length=32))
        large = AreaModel(DecoderAreaParameters(block_length=128))
        assert large.decoder_total("bcjr").luts > small.decoder_total("bcjr").luts

    def test_bcjr_area_is_dominated_by_the_reversal_buffer(self):
        model = AreaModel(DecoderAreaParameters())
        breakdown = {e.name: e for e in model.decoder_breakdown("bcjr")}
        assert (
            breakdown["final_reversal_buffer"].registers
            > 0.5 * model.decoder_total("bcjr").registers
        )

    def test_longer_sova_traceback_costs_more_area(self):
        small = AreaModel(DecoderAreaParameters(traceback_length=32))
        large = AreaModel(DecoderAreaParameters(traceback_length=128))
        assert large.decoder_total("sova").registers > small.decoder_total("sova").registers

    def test_viterbi_unaffected_by_bcjr_block_length(self):
        a = AreaModel(DecoderAreaParameters(block_length=32)).decoder_total("viterbi")
        b = AreaModel(DecoderAreaParameters(block_length=128)).decoder_total("viterbi")
        assert a.luts == b.luts

    def test_wider_soft_inputs_grow_the_bmu(self):
        narrow = AreaModel(DecoderAreaParameters(soft_input_bits=3))
        wide = AreaModel(DecoderAreaParameters(soft_input_bits=8))
        assert wide.estimate("branch_metric_unit").luts > narrow.estimate(
            "branch_metric_unit"
        ).luts

    def test_ratio_structure_is_roughly_preserved_across_block_sizes(self):
        """BCJR stays the largest decoder even at half the block length."""
        model = AreaModel(DecoderAreaParameters(block_length=32, traceback_length=32))
        assert model.area_ratio("bcjr", "sova") > 1.5
        assert model.area_ratio("sova", "viterbi") > 1.5


class TestValidation:
    def test_unknown_block_rejected(self):
        with pytest.raises(KeyError):
            AreaModel().estimate("fft")

    def test_unknown_decoder_rejected(self):
        with pytest.raises(KeyError):
            AreaModel().decoder_total("turbo")

    def test_parameters_must_be_positive(self):
        with pytest.raises(ValueError):
            DecoderAreaParameters(num_states=0)

    def test_area_estimate_addition_and_scaling(self):
        a = AreaEstimate("a", 10, 20)
        b = AreaEstimate("b", 1, 2)
        combined = a + b
        assert (combined.luts, combined.registers) == (11, 22)
        tripled = b.scaled(3, name="b3")
        assert (tripled.luts, tripled.registers) == (3, 6)
