"""Unit tests for the module graph and automatic clock-domain crossings."""

import pytest

from repro.core.clocks import BER_UNIT_CLOCK, ClockDomain, DEFAULT_CLOCK
from repro.core.errors import ConfigurationError
from repro.core.fifo import Fifo, SyncFifo
from repro.core.module import FunctionModule, SinkModule, SourceModule
from repro.core.network import Network


def simple_chain(clock_b=None):
    network = Network("test")
    source = SourceModule("src", [1, 2, 3])
    middle = FunctionModule("mid", lambda x: x + 1, clock=clock_b)
    sink = SinkModule("snk")
    network.chain([source, middle, sink])
    return network, source, middle, sink


class TestConstruction:
    def test_add_rejects_duplicate_names(self):
        network = Network("test")
        network.add(SourceModule("src"))
        with pytest.raises(ConfigurationError):
            network.add(SourceModule("src"))

    def test_connect_requires_modules_in_network(self):
        network = Network("test")
        source = SourceModule("src")
        sink = SinkModule("snk")
        network.add(source)
        with pytest.raises(ConfigurationError):
            network.connect(source, "out", sink, "in")

    def test_chain_adds_and_connects(self):
        network, source, middle, sink = simple_chain()
        assert len(network.modules) == 3
        assert len(network.connections) == 2

    def test_module_lookup_by_name(self):
        network, source, _, _ = simple_chain()
        assert network.module("src") is source
        with pytest.raises(ConfigurationError):
            network.module("missing")

    def test_default_capacity_is_two_elements(self):
        network, _, _, _ = simple_chain()
        assert all(c.fifo.capacity == 2 for c in network.connections)

    def test_connect_with_custom_capacity(self):
        network = Network("test", default_capacity=2)
        a = network.add(SourceModule("a"))
        b = network.add(SinkModule("b"))
        connection = network.connect(a, "out", b, "in", capacity=8)
        assert connection.fifo.capacity == 8


class TestClockDomainCrossing:
    def test_same_domain_uses_plain_fifo(self):
        network, _, _, _ = simple_chain()
        assert all(isinstance(c.fifo, Fifo) for c in network.connections)
        assert not network.clock_crossings()

    def test_different_domains_insert_sync_fifo(self):
        network, _, middle, _ = simple_chain(clock_b=BER_UNIT_CLOCK)
        crossings = network.clock_crossings()
        assert len(crossings) == 2  # into and out of the 60 MHz module
        assert all(isinstance(c.fifo, SyncFifo) for c in crossings)

    def test_sync_fifo_records_both_domains(self):
        network, _, middle, _ = simple_chain(clock_b=BER_UNIT_CLOCK)
        crossing = network.clock_crossings()[0]
        assert crossing.fifo.source_domain == DEFAULT_CLOCK
        assert crossing.fifo.sink_domain == BER_UNIT_CLOCK

    def test_clock_domains_enumerates_all(self):
        network, _, _, _ = simple_chain(clock_b=ClockDomain("fast", 120))
        names = {domain.name for domain in network.clock_domains()}
        assert names == {"baseband", "fast"}


class TestValidation:
    def test_validate_passes_for_complete_network(self):
        network, _, _, _ = simple_chain()
        network.validate()

    def test_validate_reports_unconnected_ports(self):
        network = Network("test")
        network.add(FunctionModule("orphan", lambda x: x))
        with pytest.raises(ConfigurationError) as excinfo:
            network.validate()
        assert "orphan" in str(excinfo.value)


class TestReset:
    def test_reset_clears_fifos_and_counters(self):
        network, source, middle, sink = simple_chain()
        source.step()
        middle.step()
        network.reset()
        assert all(c.fifo.is_empty() for c in network.connections)
        assert source.fire_count == 0
        assert middle.fire_count == 0

    def test_fifos_listing_matches_connections(self):
        network, _, _, _ = simple_chain()
        assert len(network.fifos()) == len(network.connections)
