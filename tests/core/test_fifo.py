"""Unit tests for the bounded FIFO channels."""

import pytest

from repro.core.clocks import ClockDomain
from repro.core.errors import FifoEmptyError, FifoFullError
from repro.core.fifo import Fifo, SyncFifo


class TestFifoBasics:
    def test_new_fifo_is_empty(self):
        fifo = Fifo(capacity=2)
        assert fifo.is_empty()
        assert not fifo.is_full()
        assert len(fifo) == 0

    def test_enqueue_then_dequeue_returns_same_token(self):
        fifo = Fifo()
        fifo.enq("token")
        assert fifo.deq() == "token"

    def test_fifo_preserves_order(self):
        fifo = Fifo(capacity=4)
        for value in (1, 2, 3, 4):
            fifo.enq(value)
        assert [fifo.deq() for _ in range(4)] == [1, 2, 3, 4]

    def test_first_peeks_without_removing(self):
        fifo = Fifo()
        fifo.enq("a")
        assert fifo.first() == "a"
        assert len(fifo) == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Fifo(capacity=0)

    def test_occupancy_tracks_contents(self):
        fifo = Fifo(capacity=3)
        fifo.enq(1)
        fifo.enq(2)
        assert fifo.occupancy == 2


class TestFifoBoundedness:
    def test_enqueue_on_full_fifo_raises(self):
        fifo = Fifo(capacity=1)
        fifo.enq(1)
        with pytest.raises(FifoFullError):
            fifo.enq(2)

    def test_dequeue_on_empty_fifo_raises(self):
        fifo = Fifo()
        with pytest.raises(FifoEmptyError):
            fifo.deq()

    def test_peek_on_empty_fifo_raises(self):
        fifo = Fifo()
        with pytest.raises(FifoEmptyError):
            fifo.first()

    def test_can_enq_and_can_deq_reflect_state(self):
        fifo = Fifo(capacity=1)
        assert fifo.can_enq() and not fifo.can_deq()
        fifo.enq(1)
        assert not fifo.can_enq() and fifo.can_deq()

    def test_full_then_dequeue_frees_space(self):
        fifo = Fifo(capacity=1)
        fifo.enq(1)
        fifo.deq()
        fifo.enq(2)
        assert fifo.deq() == 2


class TestFifoStatistics:
    def test_total_counters_accumulate(self):
        fifo = Fifo(capacity=2)
        fifo.enq(1)
        fifo.enq(2)
        fifo.deq()
        assert fifo.total_enqueued == 2
        assert fifo.total_dequeued == 1

    def test_high_water_records_peak_occupancy(self):
        fifo = Fifo(capacity=4)
        fifo.enq(1)
        fifo.enq(2)
        fifo.deq()
        fifo.enq(3)
        assert fifo.high_water == 2

    def test_stall_counters(self):
        fifo = Fifo(capacity=1)
        fifo.enq(1)
        with pytest.raises(FifoFullError):
            fifo.enq(2)
        assert fifo.full_stalls == 1
        fifo.deq()
        with pytest.raises(FifoEmptyError):
            fifo.deq()
        assert fifo.empty_stalls == 1

    def test_observers_see_enqueued_tokens(self):
        seen = []
        fifo = Fifo(capacity=4)
        fifo.observers.append(seen.append)
        fifo.enq("x")
        fifo.enq("y")
        assert seen == ["x", "y"]


class TestFifoBulkOperations:
    def test_clear_empties_the_fifo(self):
        fifo = Fifo(capacity=4)
        fifo.enq(1)
        fifo.clear()
        assert fifo.is_empty()

    def test_drain_returns_tokens_in_order(self):
        fifo = Fifo(capacity=4)
        for value in (1, 2, 3):
            fifo.enq(value)
        assert fifo.drain() == [1, 2, 3]
        assert fifo.is_empty()


class TestSyncFifo:
    def test_records_source_and_sink_domains(self):
        fast = ClockDomain("fast", 60)
        slow = ClockDomain("slow", 35)
        fifo = SyncFifo(slow, fast)
        assert fifo.source_domain == slow
        assert fifo.sink_domain == fast

    def test_behaves_like_a_fifo(self):
        fifo = SyncFifo(ClockDomain("a", 10), ClockDomain("b", 20), capacity=2)
        fifo.enq(1)
        fifo.enq(2)
        assert fifo.is_full()
        assert fifo.deq() == 1

    def test_has_crossing_latency(self):
        fifo = SyncFifo(ClockDomain("a", 10), ClockDomain("b", 20), sync_latency_cycles=3)
        assert fifo.sync_latency_cycles == 3
