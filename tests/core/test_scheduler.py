"""Unit tests for the dataflow and multi-clock schedulers."""

import pytest

from repro.core.clocks import ClockDomain
from repro.core.errors import SchedulerDeadlockError
from repro.core.module import FunctionModule, LIModule, SinkModule, SourceModule
from repro.core.network import Network
from repro.core.scheduler import DataflowScheduler, MultiClockScheduler


def build_pipeline(tokens, clock_map=None):
    clock_map = clock_map or {}
    network = Network("pipeline")
    source = SourceModule("src", tokens, clock=clock_map.get("src"))
    stage = FunctionModule("stage", lambda x: x * 10, clock=clock_map.get("stage"))
    sink = SinkModule("snk", clock=clock_map.get("snk"))
    network.chain([source, stage, sink])
    return network, source, stage, sink


class TestDataflowScheduler:
    def test_runs_pipeline_to_completion(self):
        network, _, _, sink = build_pipeline([1, 2, 3, 4])
        DataflowScheduler(network).run()
        assert sink.collected == [10, 20, 30, 40]

    def test_handles_more_tokens_than_fifo_capacity(self):
        network, _, _, sink = build_pipeline(list(range(50)))
        DataflowScheduler(network).run()
        assert sink.collected == [10 * i for i in range(50)]

    def test_records_firings_per_module(self):
        network, _, _, _ = build_pipeline([1, 2, 3])
        scheduler = DataflowScheduler(network)
        stats = scheduler.run()
        assert stats.firings_per_module["src"] == 3
        assert stats.firings_per_module["stage"] == 3
        assert stats.total_firings == 9

    def test_decoupled_mode_needs_fewer_passes_than_lockstep(self):
        tokens = list(range(20))
        decoupled_net, _, _, _ = build_pipeline(tokens)
        lockstep_net, _, _, _ = build_pipeline(tokens)
        decoupled = DataflowScheduler(decoupled_net).run()
        lockstep = DataflowScheduler(lockstep_net, lockstep=True).run()
        assert decoupled.steps < lockstep.steps

    def test_lockstep_produces_identical_results(self):
        tokens = list(range(15))
        net_a, _, _, sink_a = build_pipeline(tokens)
        net_b, _, _, sink_b = build_pipeline(tokens)
        DataflowScheduler(net_a).run()
        DataflowScheduler(net_b, lockstep=True).run()
        assert sink_a.collected == sink_b.collected

    def test_deadlock_is_detected(self):
        class NeedsTwoInputs(LIModule):
            """Waits for a port that is never fed."""

            def __init__(self):
                super().__init__("stuck", input_ports=("in", "extra"))

            def fire(self):  # pragma: no cover - never fires
                raise AssertionError

            def is_quiescent(self):
                return False

        network = Network("deadlock")
        source = SourceModule("src", [1])
        stuck = NeedsTwoInputs()
        network.add(source)
        network.add(stuck)
        network.connect(source, "out", stuck, "in")
        from repro.core.fifo import Fifo

        stuck.bind_input("extra", Fifo())
        with pytest.raises(SchedulerDeadlockError):
            DataflowScheduler(network).run()


class TestMultiClockScheduler:
    def test_runs_pipeline_to_completion(self):
        network, _, _, sink = build_pipeline([1, 2, 3])
        MultiClockScheduler(network).run()
        assert sink.collected == [10, 20, 30]

    def test_simulated_time_advances(self):
        network, _, _, _ = build_pipeline([1, 2, 3])
        stats = MultiClockScheduler(network).run()
        assert stats.simulated_time_us > 0

    def test_faster_domain_gets_more_cycles(self):
        fast = ClockDomain("fast", 70.0)
        network, _, _, _ = build_pipeline(
            list(range(10)), clock_map={"stage": fast}
        )
        stats = MultiClockScheduler(network).run()
        assert stats.cycles_per_domain["fast"] > stats.cycles_per_domain["baseband"]

    def test_until_callback_stops_early(self):
        network, _, _, sink = build_pipeline(list(range(100)))
        scheduler = MultiClockScheduler(network)
        scheduler.run(until=lambda: len(sink.collected) >= 5)
        assert 5 <= len(sink.collected) < 100

    def test_matches_dataflow_results(self):
        tokens = list(range(12))
        net_a, _, _, sink_a = build_pipeline(tokens)
        net_b, _, _, sink_b = build_pipeline(tokens)
        DataflowScheduler(net_a).run()
        MultiClockScheduler(net_b).run()
        assert sink_a.collected == sink_b.collected
