"""Unit tests for the plug-n-play module registry."""

import pytest

from repro.core.errors import UnknownImplementationError
from repro.core.registry import ModuleRegistry


class TestRegistration:
    def test_register_and_create(self):
        registry = ModuleRegistry()
        registry.add("decoder", "stub", lambda: "decoder-instance")
        assert registry.create("decoder", "stub") == "decoder-instance"

    def test_decorator_registration(self):
        registry = ModuleRegistry()

        @registry.register("channel", "noiseless")
        def make_channel():
            return "channel"

        assert registry.create("channel", "noiseless") == "channel"

    def test_reregistration_replaces_factory(self):
        registry = ModuleRegistry()
        registry.add("role", "impl", lambda: 1)
        registry.add("role", "impl", lambda: 2)
        assert registry.create("role", "impl") == 2

    def test_kwargs_forwarded_to_factory(self):
        registry = ModuleRegistry()
        registry.add("decoder", "parametric", lambda depth=0: depth)
        assert registry.create("decoder", "parametric", depth=7) == 7


class TestLookup:
    def test_unknown_implementation_raises_with_known_list(self):
        registry = ModuleRegistry()
        registry.add("decoder", "viterbi", lambda: None)
        with pytest.raises(UnknownImplementationError) as excinfo:
            registry.create("decoder", "turbo")
        assert "viterbi" in str(excinfo.value)

    def test_unknown_role_raises(self):
        registry = ModuleRegistry()
        with pytest.raises(UnknownImplementationError):
            registry.implementations("nonexistent")

    def test_roles_and_implementations_are_sorted(self):
        registry = ModuleRegistry()
        registry.add("b_role", "z", lambda: None)
        registry.add("a_role", "m", lambda: None)
        registry.add("a_role", "a", lambda: None)
        assert registry.roles() == ["a_role", "b_role"]
        assert registry.implementations("a_role") == ["a", "m"]

    def test_has_reports_registration(self):
        registry = ModuleRegistry()
        registry.add("role", "impl", lambda: None)
        assert registry.has("role", "impl")
        assert not registry.has("role", "other")


class TestConfigurationBuild:
    def test_build_configuration_instantiates_every_role(self):
        registry = ModuleRegistry()
        registry.add("decoder", "a", lambda **_: "decoder-a")
        registry.add("channel", "awgn", lambda **_: "channel-awgn")
        built = registry.build_configuration({"decoder": "a", "channel": "awgn"})
        assert built == {"decoder": "decoder-a", "channel": "channel-awgn"}

    def test_shared_kwargs_reach_every_factory(self):
        registry = ModuleRegistry()
        registry.add("x", "impl", lambda scale=1: ("x", scale))
        registry.add("y", "impl", lambda scale=1: ("y", scale))
        built = registry.build_configuration({"x": "impl", "y": "impl"}, scale=3)
        assert built == {"x": ("x", 3), "y": ("y", 3)}
