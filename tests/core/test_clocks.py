"""Unit tests for clock domains."""

import pytest

from repro.core.clocks import BER_UNIT_CLOCK, ClockDomain, DEFAULT_CLOCK


class TestClockDomain:
    def test_period_is_inverse_of_frequency(self):
        clock = ClockDomain("c", 50.0)
        assert clock.period_us == pytest.approx(0.02)

    def test_cycles_to_time_round_trip(self):
        clock = ClockDomain("c", 60.0)
        assert clock.us_to_cycles(clock.cycles_to_us(120)) == pytest.approx(120)

    def test_equality_is_by_name_and_frequency(self):
        assert ClockDomain("a", 35.0) == ClockDomain("a", 35.0)
        assert ClockDomain("a", 35.0) != ClockDomain("a", 36.0)
        assert ClockDomain("a", 35.0) != ClockDomain("b", 35.0)

    def test_hashable_for_use_in_sets(self):
        domains = {ClockDomain("a", 35.0), ClockDomain("a", 35.0), ClockDomain("b", 60.0)}
        assert len(domains) == 2

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)

    def test_paper_default_clocks(self):
        assert DEFAULT_CLOCK.frequency_mhz == pytest.approx(35.0)
        assert BER_UNIT_CLOCK.frequency_mhz == pytest.approx(60.0)

    def test_paper_latency_conversion(self):
        # 140 cycles at 60 MHz is about 2.3 us (Section 4.3.1).
        assert BER_UNIT_CLOCK.cycles_to_us(140) == pytest.approx(2.33, abs=0.01)
