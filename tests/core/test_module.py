"""Unit tests for the latency-insensitive module base classes."""

import pytest

from repro.core.clocks import ClockDomain, DEFAULT_CLOCK
from repro.core.errors import ConfigurationError
from repro.core.fifo import Fifo
from repro.core.module import FunctionModule, LIModule, SinkModule, SourceModule


def connected(producer, consumer, capacity=2):
    """Wire producer.out to consumer.in with a fresh FIFO and return it."""
    fifo = Fifo(capacity=capacity)
    producer.bind_output("out", fifo)
    consumer.bind_input("in", fifo)
    return fifo


class TestPortBinding:
    def test_binding_unknown_port_raises(self):
        module = LIModule("m", input_ports=("in",))
        with pytest.raises(ConfigurationError):
            module.bind_input("bogus", Fifo())

    def test_double_binding_raises(self):
        module = LIModule("m", input_ports=("in",))
        module.bind_input("in", Fifo())
        with pytest.raises(ConfigurationError):
            module.bind_input("in", Fifo())

    def test_accessing_unconnected_port_raises(self):
        module = LIModule("m", input_ports=("in",))
        with pytest.raises(ConfigurationError):
            module.input_fifo("in")

    def test_default_clock_is_baseband(self):
        assert LIModule("m").clock == DEFAULT_CLOCK

    def test_explicit_clock_is_kept(self):
        fast = ClockDomain("fast", 60)
        assert LIModule("m", clock=fast).clock == fast


class TestFiringRule:
    def test_module_with_no_ports_can_always_fire(self):
        assert LIModule("m").can_fire()

    def test_empty_input_blocks_firing(self):
        source = SourceModule("src", [])
        sink = SinkModule("snk")
        connected(source, sink)
        assert not sink.can_fire()

    def test_full_output_blocks_firing(self):
        source = SourceModule("src", [1, 2, 3])
        sink = SinkModule("snk")
        fifo = connected(source, sink, capacity=1)
        fifo.enq("existing")
        assert not source.can_fire()

    def test_unconnected_declared_ports_do_not_block(self):
        module = FunctionModule("f", lambda x: x)
        fifo_in = Fifo()
        module.bind_input("in", fifo_in)
        fifo_in.enq(1)
        # Output port left unconnected: can_fire ignores it, but firing
        # would fail, so only the guard is exercised here.
        assert module.can_fire()


class TestSourceModule:
    def test_emits_tokens_in_order(self):
        source = SourceModule("src", ["a", "b"])
        sink = SinkModule("snk")
        fifo = connected(source, sink, capacity=4)
        assert source.step()
        assert source.step()
        assert not source.step()  # exhausted
        assert fifo.drain() == ["a", "b"]

    def test_feed_appends_tokens(self):
        source = SourceModule("src")
        source.feed([1, 2])
        assert source.pending == 2

    def test_is_quiescent_when_exhausted(self):
        source = SourceModule("src", [1])
        sink = SinkModule("snk")
        connected(source, sink)
        assert not source.is_quiescent()
        source.step()
        assert source.is_quiescent()

    def test_emitted_counter(self):
        source = SourceModule("src", [1, 2, 3])
        sink = SinkModule("snk")
        connected(source, sink, capacity=4)
        while source.step():
            pass
        assert source.emitted == 3


class TestSinkModule:
    def test_collects_everything(self):
        source = SourceModule("src", [1, 2, 3])
        sink = SinkModule("snk")
        connected(source, sink, capacity=4)
        while source.step():
            pass
        while sink.step():
            pass
        assert sink.collected == [1, 2, 3]

    def test_drain_resets_collection(self):
        sink = SinkModule("snk")
        sink.collected = [1]
        assert sink.drain() == [1]
        assert sink.collected == []


class TestFunctionModule:
    def test_applies_function_to_each_token(self):
        source = SourceModule("src", [1, 2, 3])
        double = FunctionModule("dbl", lambda x: 2 * x)
        sink = SinkModule("snk")
        connected(source, double)
        fifo_out = Fifo(capacity=4)
        double.bind_output("out", fifo_out)
        sink.bind_input("in", fifo_out)
        for _ in range(3):
            source.step()
            double.step()
            sink.step()
        assert sink.collected == [2, 4, 6]

    def test_returning_none_emits_nothing(self):
        drop = FunctionModule("drop", lambda x: None)
        fifo_in, fifo_out = Fifo(), Fifo()
        drop.bind_input("in", fifo_in)
        drop.bind_output("out", fifo_out)
        fifo_in.enq("token")
        assert drop.step()
        assert fifo_out.is_empty()


class TestStepAccounting:
    def test_fire_and_stall_counters(self):
        source = SourceModule("src", [1])
        sink = SinkModule("snk")
        connected(source, sink)
        assert source.step()
        assert not source.step()
        assert source.fire_count == 1
        assert source.stall_count == 1

    def test_busy_seconds_accumulates(self):
        source = SourceModule("src", [1, 2])
        sink = SinkModule("snk")
        connected(source, sink, capacity=4)
        source.step()
        source.step()
        assert source.busy_seconds >= 0.0
        assert source.fire_count == 2
