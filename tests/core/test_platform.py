"""Unit tests for the virtual platform, host link and scratchpads."""

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.module import FunctionModule, SinkModule, SourceModule
from repro.core.network import Network
from repro.core.platform import HostLink, Partition, Scratchpad, VirtualPlatform


class TestHostLink:
    def test_transfer_accounts_bytes_by_direction(self):
        link = HostLink(bandwidth_mbytes_per_s=100.0)
        link.transfer(1000, to_hardware=True)
        link.transfer(500, to_hardware=False)
        assert link.bytes_to_hardware == 1000
        assert link.bytes_to_software == 500
        assert link.total_bytes == 1500
        assert link.transfers == 2

    def test_transfer_duration_scales_with_size(self):
        # 1 MB over a 2 MB/s link takes 0.5 s = 500000 us, plus 5 us latency.
        link = HostLink(bandwidth_mbytes_per_s=2.0, latency_us=5.0)
        assert link.transfer(1_000_000, to_hardware=True) == pytest.approx(500_005.0)

    def test_negative_transfer_rejected(self):
        link = HostLink()
        with pytest.raises(ValueError):
            link.transfer(-1, to_hardware=True)

    def test_utilization_fraction(self):
        link = HostLink(bandwidth_mbytes_per_s=700.0)
        link.transfer(70_000_000, to_hardware=True)  # 70 MB over 1 s
        assert link.utilization(1.0) == pytest.approx(0.1)

    def test_reset_clears_counters(self):
        link = HostLink()
        link.transfer(10, to_hardware=True)
        link.reset()
        assert link.total_bytes == 0

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HostLink(bandwidth_mbytes_per_s=0)

    def test_token_size_for_bit_arrays_is_packed(self):
        bits = np.zeros(800, dtype=np.uint8)
        assert HostLink.token_size_bytes(bits) == 100

    def test_token_size_for_complex_samples_uses_buffer_size(self):
        samples = np.zeros(100, dtype=np.complex128)
        assert HostLink.token_size_bytes(samples) == 1600

    def test_token_size_for_plain_objects(self):
        assert HostLink.token_size_bytes(b"abcd") == 4
        assert HostLink.token_size_bytes([1, 2, 3]) == 24
        assert HostLink.token_size_bytes(42) == 8


class TestScratchpad:
    def test_read_back_written_value(self):
        memory = Scratchpad("mem", 16)
        memory.write(3, 99)
        assert memory.read(3) == 99

    def test_unwritten_addresses_return_fill(self):
        memory = Scratchpad("mem", 16, fill=-1)
        assert memory.read(0) == -1

    def test_out_of_range_access_raises(self):
        memory = Scratchpad("mem", 4)
        with pytest.raises(IndexError):
            memory.read(4)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_block_operations(self):
        memory = Scratchpad("mem", 16)
        memory.write_block(4, [1, 2, 3])
        assert memory.read_block(4, 3) == [1, 2, 3]

    def test_access_counters_and_clear(self):
        memory = Scratchpad("mem", 8)
        memory.write(0, 1)
        memory.read(0)
        assert (memory.reads, memory.writes) == (1, 1)
        memory.clear()
        assert (memory.reads, memory.writes) == (0, 0)

    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Scratchpad("mem", 0)


class TestVirtualPlatform:
    def build(self):
        network = Network("net")
        source = network.add(SourceModule("src", [1]))
        stage = network.add(FunctionModule("hw", lambda x: x))
        sink = network.add(SinkModule("snk"))
        network.chain([source, stage, sink])
        platform = VirtualPlatform()
        platform.assign(source, Partition.SOFTWARE)
        platform.assign(stage, Partition.HARDWARE)
        platform.assign(sink, Partition.SOFTWARE)
        return network, platform, source, stage, sink

    def test_partition_assignment_and_lookup(self):
        _, platform, source, stage, _ = self.build()
        assert platform.partition_of(source) == Partition.SOFTWARE
        assert platform.partition_of(stage) == Partition.HARDWARE

    def test_double_assignment_raises(self):
        _, platform, source, _, _ = self.build()
        with pytest.raises(ConfigurationError):
            platform.assign(source, Partition.HARDWARE)

    def test_unknown_partition_name_raises(self):
        platform = VirtualPlatform()
        with pytest.raises(ConfigurationError):
            platform.assign(SourceModule("s"), "gpu")

    def test_unassigned_module_lookup_raises(self):
        platform = VirtualPlatform()
        with pytest.raises(ConfigurationError):
            platform.partition_of(SourceModule("unassigned"))

    def test_modules_in_partition(self):
        _, platform, source, stage, sink = self.build()
        assert platform.modules_in(Partition.SOFTWARE) == [source, sink]
        assert platform.modules_in(Partition.HARDWARE) == [stage]

    def test_cross_partition_connections_found(self):
        network, platform, _, _, _ = self.build()
        crossings = platform.cross_partition_connections(network)
        assert len(crossings) == 2  # sw -> hw and hw -> sw

    def test_scratchpad_created_once_per_name(self):
        platform = VirtualPlatform()
        first = platform.scratchpad("traces")
        second = platform.scratchpad("traces")
        assert first is second
