"""Unit tests for the co-simulation driver and its report."""

import numpy as np
import pytest

from repro.core.cosim import CoSimulation, CoSimulationReport
from repro.core.errors import ConfigurationError
from repro.core.module import FunctionModule, SinkModule, SourceModule
from repro.core.network import Network
from repro.core.platform import HostLink, Partition, VirtualPlatform
from repro.core.scheduler import DataflowScheduler, MultiClockScheduler


def build_cosim(tokens, link=None):
    network = Network("cosim")
    source = SourceModule("src", tokens)
    software_stage = FunctionModule("sw_channel", lambda x: x)
    hardware_stage = FunctionModule("hw_pipeline", lambda x: x * 2)
    sink = SinkModule("snk")
    network.chain([source, software_stage, hardware_stage, sink])
    platform = VirtualPlatform(host_link=link or HostLink())
    platform.assign_all([source, software_stage], Partition.SOFTWARE)
    platform.assign_all([hardware_stage, sink], Partition.HARDWARE)
    return network, platform, sink


class TestCoSimulation:
    def test_runs_and_collects_output(self):
        tokens = [np.ones(8, dtype=np.uint8) for _ in range(3)]
        network, platform, sink = build_cosim(tokens)
        report = CoSimulation(network, platform).run(payload_bits=24)
        assert len(sink.collected) == 3
        assert report.payload_bits == 24

    def test_unassigned_module_is_rejected(self):
        network = Network("incomplete")
        source = network.add(SourceModule("src", [1]))
        sink = network.add(SinkModule("snk"))
        network.connect(source, "out", sink, "in")
        platform = VirtualPlatform()
        platform.assign(source, Partition.SOFTWARE)
        with pytest.raises(ConfigurationError):
            CoSimulation(network, platform)

    def test_default_platform_places_everything_in_hardware(self):
        network = Network("default")
        source = network.add(SourceModule("src", [1]))
        sink = network.add(SinkModule("snk"))
        network.connect(source, "out", sink, "in")
        cosim = CoSimulation(network)
        report = cosim.run(payload_bits=1)
        assert report.link_bytes == 0

    def test_cross_partition_traffic_is_metered(self):
        tokens = [np.zeros(80, dtype=np.uint8) for _ in range(2)]
        network, platform, _ = build_cosim(tokens)
        report = CoSimulation(network, platform).run(payload_bits=160)
        # Two 80-bit packets cross the software->hardware boundary once each
        # (10 packed bytes per packet).
        assert report.link_bytes >= 20

    def test_rebuilding_driver_does_not_double_count_traffic(self):
        tokens = [np.zeros(80, dtype=np.uint8)]
        network, platform, _ = build_cosim(tokens)
        CoSimulation(network, platform)
        cosim = CoSimulation(network, platform)  # re-attach observers
        report = cosim.run(payload_bits=80)
        assert report.link_bytes == 10

    def test_busy_seconds_split_by_partition(self):
        tokens = [np.zeros(64, dtype=np.uint8) for _ in range(4)]
        network, platform, _ = build_cosim(tokens)
        report = CoSimulation(network, platform).run(payload_bits=256)
        assert report.hardware_busy_seconds >= 0.0
        assert report.software_busy_seconds >= 0.0
        assert report.bottleneck_partition in (Partition.HARDWARE, Partition.SOFTWARE)

    def test_works_with_multiclock_scheduler(self):
        tokens = [np.zeros(8, dtype=np.uint8) for _ in range(2)]
        network, platform, sink = build_cosim(tokens)
        scheduler = MultiClockScheduler(network)
        report = CoSimulation(network, platform, scheduler).run(payload_bits=16)
        assert len(sink.collected) == 2
        assert report.simulated_time_us > 0
        assert report.modelled_throughput_mbps is not None


class TestCoSimulationReport:
    def make_report(self, **overrides):
        values = dict(
            payload_bits=1000,
            wall_seconds=0.5,
            simulated_time_us=100.0,
            link_bytes=2000,
            link_utilization=0.1,
            hardware_firings=10,
            software_firings=5,
            scheduler_stats=None,
            hardware_busy_seconds=0.1,
            software_busy_seconds=0.3,
        )
        values.update(overrides)
        return CoSimulationReport(**values)

    def test_simulation_speed_is_bits_per_wall_second(self):
        report = self.make_report()
        assert report.simulation_speed_bps == pytest.approx(2000.0)

    def test_line_rate_ratio(self):
        report = self.make_report(wall_seconds=1.0, payload_bits=6_000_000)
        assert report.line_rate_ratio(6.0) == pytest.approx(1.0)

    def test_modelled_throughput_from_simulated_time(self):
        report = self.make_report()
        assert report.modelled_throughput_mbps == pytest.approx(10.0)

    def test_modelled_throughput_none_without_simulated_time(self):
        report = self.make_report(simulated_time_us=0.0)
        assert report.modelled_throughput_mbps is None

    def test_bottleneck_uses_busy_time(self):
        report = self.make_report(
            hardware_busy_seconds=0.4, software_busy_seconds=0.1
        )
        assert report.bottleneck_partition == Partition.HARDWARE

    def test_projected_speed_limited_by_slowest_contributor(self):
        report = self.make_report(payload_bits=1_000_000, software_busy_seconds=0.5)
        # Hardware time of 0.1 s and tiny link time: software (0.5 s) limits.
        speed = report.projected_speed_bps(hardware_seconds=0.1)
        assert speed == pytest.approx(2_000_000.0)
