"""Tests for the RateController protocol and the classic samplers."""

import zlib

import pytest

from repro.mac.rateadapt import (MinstrelController, RateController,
                                 RateFeedback, SampleRateController,
                                 controller_from_dict)
from repro.mac.softrate import SoftRateController
from repro.phy.params import RATE_TABLE, rate_by_mbps

THREE_RATES = tuple(rate_by_mbps(mbps) for mbps in (6.0, 24.0, 54.0))


def feedback_for(controller, success):
    """Feedback for the controller's own current choice.

    Works for every controller kind: samplers read the airtime field,
    SoftRate reads the PBER estimate (below its window on success, above
    it on failure).
    """
    index = controller.choose()
    airtime = getattr(controller, "airtime", None)
    airtime_us = (airtime.lossless_tx_us(controller.rates[index],
                                         controller.packet_bits)
                  if airtime is not None else 0.0)
    return RateFeedback(index, success,
                        pber_estimate=1e-9 if success else 1e-1,
                        airtime_us=airtime_us)


class TestRateFeedback:
    def test_coercion(self):
        fb = RateFeedback(3, 1, pber_estimate="1e-3", airtime_us=5)
        assert fb.rate_index == 3 and fb.success is True
        assert fb.pber_estimate == 1e-3 and fb.airtime_us == 5.0

    def test_pber_defaults_to_none(self):
        assert RateFeedback(0, False).pber_estimate is None


class TestProtocol:
    def controllers(self):
        return [
            SampleRateController(rates=THREE_RATES),
            MinstrelController(rates=THREE_RATES),
            SoftRateController(rates=THREE_RATES),
        ]

    def test_choose_is_pure(self):
        for controller in self.controllers():
            for step in range(25):
                first = controller.choose()
                assert controller.choose() == first
                assert controller.choose() == first
                controller.observe(feedback_for(controller, step % 3 != 0))

    def test_reset_restores_initial_choice(self):
        for controller in self.controllers():
            initial = controller.choose()
            for _ in range(12):
                controller.observe(feedback_for(controller, False))
            controller.reset()
            assert controller.choose() == initial

    def test_current_rate_matches_choose(self):
        for controller in self.controllers():
            assert controller.current_rate is controller.rates[controller.choose()]

    def test_round_trip_preserves_configuration(self):
        for controller in self.controllers():
            clone = controller_from_dict(controller.to_dict())
            assert type(clone) is type(controller)
            assert clone.to_dict() == controller.to_dict()
            assert clone.rates == controller.rates

    def test_identical_feedback_gives_identical_trajectories(self):
        for left, right in zip(self.controllers(), self.controllers()):
            chosen_left, chosen_right = [], []
            for step in range(60):
                chosen_left.append(left.choose())
                chosen_right.append(right.choose())
                success = (step * 7) % 5 > 1
                left.observe(feedback_for(left, success))
                right.observe(feedback_for(right, success))
            assert chosen_left == chosen_right

    def test_base_class_is_abstract(self):
        controller = RateController(rates=THREE_RATES)
        with pytest.raises(NotImplementedError):
            controller.choose()
        with pytest.raises(NotImplementedError):
            controller.observe(RateFeedback(0, True))
        with pytest.raises(NotImplementedError):
            controller.reset()
        with pytest.raises(NotImplementedError):
            controller.to_dict()

    def test_empty_rate_table_rejected(self):
        with pytest.raises(ValueError):
            RateController(rates=())


class TestSampleRate:
    def test_opens_at_the_fastest_rate(self):
        # All averages start at the lossless times, which decrease with
        # rate, so the nominally fastest rate wins the argmin.
        controller = SampleRateController(rates=THREE_RATES)
        assert controller.choose() == 2
        assert SampleRateController().choose() == len(RATE_TABLE) - 1

    def test_successive_failures_exclude_a_rate(self):
        controller = SampleRateController(
            rates=THREE_RATES, max_successive_failures=4, stats_window=200)
        for _ in range(4):
            controller.observe(feedback_for(controller, False))
        assert controller.choose() == 1

    def test_stats_window_ages_out_exclusions(self):
        controller = SampleRateController(
            rates=THREE_RATES, max_successive_failures=2, stats_window=6,
            probe_interval=50)
        for _ in range(2):
            controller.observe(feedback_for(controller, False))
        assert controller.choose() == 1
        # Four more decisions reach the 6-packet window boundary, where the
        # failure counters clear and the fast rate is eligible again.
        for _ in range(4):
            controller.observe(feedback_for(controller, True))
        assert controller.choose() == 2

    def test_failed_airtime_is_charged_to_the_next_success(self):
        controller = SampleRateController(rates=THREE_RATES)
        lossless = controller._lossless_us
        controller.observe(RateFeedback(2, False, airtime_us=lossless[2]))
        controller.observe(RateFeedback(2, True, airtime_us=lossless[2]))
        # First measurement replaces the optimistic initial value: the
        # average now prices two transmissions per delivery, which is worse
        # than the middle rate's lossless time, so the controller steps down.
        assert controller._avg_tx_us[2] == 2 * lossless[2]
        assert controller.choose() == 1

    def test_probes_candidates_that_could_beat_the_incumbent(self):
        controller = SampleRateController(rates=THREE_RATES, probe_interval=10)
        lossless = controller._lossless_us
        controller.observe(RateFeedback(2, False, airtime_us=lossless[2]))
        controller.observe(RateFeedback(2, True, airtime_us=lossless[2]))
        # Incumbent is now rate 1; only rate 2's lossless time undercuts
        # its average, so packet 10 probes rate 2.
        for packet_number in range(3, 10):
            assert controller.choose() == 1
            controller.observe(RateFeedback(1, True, airtime_us=lossless[1]))
        assert controller.decisions == 9
        assert controller.choose() == 2
        assert controller.choose() == 2  # still pure at a probe slot

    def test_all_rates_excluded_falls_back_to_most_robust(self):
        controller = SampleRateController(
            rates=THREE_RATES, max_successive_failures=1, stats_window=1000)
        for index in (2, 1, 0):
            assert controller.choose() == index
            controller.observe(feedback_for(controller, False))
        assert controller.choose() == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SampleRateController(ewma_weight=1.0)
        with pytest.raises(ValueError):
            SampleRateController(probe_interval=1)
        with pytest.raises(ValueError):
            SampleRateController(max_successive_failures=0)
        with pytest.raises(ValueError):
            SampleRateController(stats_window=0)
        with pytest.raises(ValueError):
            SampleRateController().observe(RateFeedback(99, True))

    def test_from_dict_round_trip_with_custom_airtime(self):
        controller = SampleRateController(rates=THREE_RATES, packet_bits=800,
                                          probe_interval=7, stats_window=40)
        clone = SampleRateController.from_dict(controller.to_dict())
        assert clone.to_dict() == controller.to_dict()
        assert clone.airtime == controller.airtime


class TestMinstrel:
    def test_opens_at_the_fastest_rate(self):
        # Unattempted rates read probability 1.0, so the throughput ranking
        # starts as the lossless-airtime ranking.
        assert MinstrelController(rates=THREE_RATES).choose() == 2

    def test_probability_ewma(self):
        controller = MinstrelController(rates=THREE_RATES, ewma_weight=0.75)
        assert controller.success_probability(2) == 1.0
        controller.observe(RateFeedback(2, False))
        assert controller.success_probability(2) == 0.0  # first sample replaces
        controller.observe(RateFeedback(2, True))
        assert controller.success_probability(2) == pytest.approx(0.25)
        assert controller.attempts[2] == 2 and controller.successes[2] == 1

    def test_failures_demote_the_top_rate(self):
        controller = MinstrelController(rates=THREE_RATES)
        controller.observe(RateFeedback(2, False))
        assert controller.throughput_estimate(2) == 0.0
        assert controller.choose() == 1

    def test_ranking_breaks_ties_towards_the_robust_rate(self):
        controller = MinstrelController(rates=THREE_RATES)
        for index in range(3):
            controller.observe(RateFeedback(index, False))
        assert controller._ranked() == [0, 1, 2]

    def test_retry_chain_structure(self):
        controller = MinstrelController(rates=THREE_RATES)
        assert controller.retry_chain() == [2, 1, 0]
        controller.observe(RateFeedback(2, False))
        chain = controller.retry_chain()
        assert chain[0] == 1          # max throughput after the failure
        assert chain[-1] == 0         # always ends at the most robust rate
        assert len(chain) == len(set(chain))

    def test_sampling_schedule_is_deterministic(self):
        controller = MinstrelController(rates=THREE_RATES, sample_interval=10,
                                        seed=5)
        chosen = []
        for _ in range(30):
            index = controller.choose()
            chosen.append(index)
            controller.observe(RateFeedback(index, True))
        best = 2  # every attempt succeeded, so the ranking never moves
        for sample_number in (1, 2, 3):
            token = b"minstrel:5:%d" % sample_number
            sample = zlib.crc32(token) % 3
            expected = sample if sample != best else best
            assert chosen[sample_number * 10 - 1] == expected
        non_sample = [c for i, c in enumerate(chosen) if (i + 1) % 10 != 0]
        assert set(non_sample) == {best}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            MinstrelController(ewma_weight=-0.1)
        with pytest.raises(ValueError):
            MinstrelController(sample_interval=1)
        with pytest.raises(ValueError):
            MinstrelController().observe(RateFeedback(-1, True))

    def test_from_dict_round_trip(self):
        controller = MinstrelController(rates=THREE_RATES, seed=9,
                                        sample_interval=4)
        clone = MinstrelController.from_dict(controller.to_dict())
        assert clone.to_dict() == controller.to_dict()


class TestControllerFromDict:
    def test_dispatches_all_registered_kinds(self):
        assert isinstance(controller_from_dict({"type": "samplerate"}),
                          SampleRateController)
        assert isinstance(controller_from_dict({"type": "minstrel"}),
                          MinstrelController)
        assert isinstance(controller_from_dict({"type": "softrate"}),
                          SoftRateController)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown controller type"):
            controller_from_dict({"type": "aarf"})
        with pytest.raises(ValueError, match="unknown controller type"):
            controller_from_dict({})

    def test_wrong_tag_rejected_by_class_from_dict(self):
        with pytest.raises(ValueError):
            SampleRateController.from_dict({"type": "minstrel"})
        with pytest.raises(ValueError):
            MinstrelController.from_dict({"type": "samplerate"})
