"""Tests for the declarative rate-adaptation scenario layer."""

import json

import pytest

from repro.analysis.scenario import Scenario, is_scenario_like
from repro.mac.rateadapt import RateAdaptExperiment, RateAdaptScenario
from repro.mac.rateadapt.scenario import (DEFAULT_CONTROLLERS,
                                          _default_controller_spec)


class TestScenarioValidation:
    def test_defaults_are_valid(self):
        scenario = RateAdaptScenario()
        assert scenario.decoder == "bcjr"
        assert scenario.packet_bits == 1704
        assert scenario.is_declarative is True

    def test_decoder_required(self):
        with pytest.raises(ValueError, match="decoder"):
            RateAdaptScenario(decoder=None)
        with pytest.raises(ValueError, match="decoder"):
            RateAdaptScenario(decoder="")

    def test_packet_bits_must_be_positive_integer(self):
        with pytest.raises(ValueError, match="packet_bits"):
            RateAdaptScenario(packet_bits=None)
        with pytest.raises(ValueError, match="packet_bits"):
            RateAdaptScenario(packet_bits=0)
        with pytest.raises(ValueError, match="packet_bits"):
            RateAdaptScenario(packet_bits=12.5)

    def test_sweepable_fields_accept_none(self):
        scenario = RateAdaptScenario(snr_db=None, doppler_hz=None)
        assert "snr_db" not in scenario.params()
        assert "doppler_hz" not in scenario.params()

    def test_doppler_must_be_positive_when_given(self):
        with pytest.raises(ValueError, match="doppler_hz"):
            RateAdaptScenario(doppler_hz=-1.0)

    def test_packet_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="packet_interval_s"):
            RateAdaptScenario(packet_interval_s=0.0)


class TestScenarioProtocol:
    def test_round_trip(self):
        scenario = RateAdaptScenario(decoder="sova", packet_bits=800,
                                     snr_db=None, doppler_hz=20.0)
        data = scenario.to_dict()
        assert data["kind"] == "rate_adapt"
        assert RateAdaptScenario.from_dict(data) == scenario

    def test_from_dict_rejects_wrong_kind_and_unknown_fields(self):
        with pytest.raises(ValueError, match="kind"):
            RateAdaptScenario.from_dict({"kind": "link"})
        with pytest.raises(ValueError, match="unknown RateAdaptScenario"):
            RateAdaptScenario.from_dict({"kind": "rate_adapt",
                                         "modulation": "qpsk"})

    def test_content_hash_is_stable_and_distinguishing(self):
        scenario = RateAdaptScenario(doppler_hz=20.0)
        assert scenario.content_hash() == \
            RateAdaptScenario.from_dict(scenario.to_dict()).content_hash()
        assert scenario.content_hash() != \
            scenario.replace(doppler_hz=40.0).content_hash()
        # Tagging with "kind" keeps the hash disjoint from the BER
        # Scenario namespace even if the field values ever collided.
        assert "kind" in json.dumps(scenario.to_dict())

    def test_replace(self):
        scenario = RateAdaptScenario()
        faster = scenario.replace(packet_interval_s=1e-3)
        assert faster.packet_interval_s == 1e-3
        assert scenario.packet_interval_s == 2e-3

    def test_is_scenario_like_covers_both_scenario_classes(self):
        assert is_scenario_like(RateAdaptScenario())
        assert is_scenario_like(Scenario())
        assert not is_scenario_like(object())
        assert not is_scenario_like({"kind": "rate_adapt"})


class TestDefaultControllers:
    def test_default_spec_names(self):
        for name in DEFAULT_CONTROLLERS:
            spec = _default_controller_spec(name, packet_bits=200)
            assert spec["type"] == name

    def test_samplers_inherit_the_scenario_payload_size(self):
        assert _default_controller_spec("samplerate", 200)["packet_bits"] == 200
        assert _default_controller_spec("minstrel", 512)["packet_bits"] == 512

    def test_unknown_default_controller(self):
        with pytest.raises(ValueError, match="unknown default controller"):
            _default_controller_spec("aarf", 200)


class TestExperimentValidation:
    def test_scenario_type_is_enforced(self):
        with pytest.raises(TypeError, match="RateAdaptScenario"):
            RateAdaptExperiment(Scenario(), axes={"snr_db": [5.0]})

    def test_num_packets_must_be_positive(self):
        with pytest.raises(ValueError, match="num_packets"):
            RateAdaptExperiment(RateAdaptScenario(doppler_hz=20.0),
                                axes={"snr_db": [5.0]}, num_packets=0)

    def test_controller_specs_normalised(self):
        experiment = RateAdaptExperiment(
            RateAdaptScenario(doppler_hz=20.0), axes={"snr_db": [5.0]},
            controllers=["softrate", {"type": "minstrel", "seed": 4}])
        kinds = [spec["type"] for spec in experiment.controller_specs]
        assert kinds == ["softrate", "minstrel"]
        assert experiment.controller_specs[1]["seed"] == 4
