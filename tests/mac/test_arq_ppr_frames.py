"""Unit tests for packets, acknowledgements, ARQ and partial packet recovery."""

import numpy as np
import pytest

from repro.mac.arq import ArqLinkLayer, ArqStatistics
from repro.mac.frames import Acknowledgement, Packet
from repro.mac.ppr import PartialPacketRecovery
from repro.phy.params import RATE_TABLE


def make_packet(sequence=0, size=128, rate=RATE_TABLE[0]):
    return Packet(sequence, np.zeros(size, dtype=np.uint8), rate)


class TestFrames:
    def test_packet_records_fields(self):
        packet = make_packet(sequence=3, size=64)
        assert packet.sequence == 3
        assert packet.size_bits == 64
        assert packet.rate is RATE_TABLE[0]

    def test_acknowledgement_fields(self):
        ack = Acknowledgement(3, received_ok=False, pber_estimate=1e-3)
        assert not ack.received_ok
        assert ack.pber_estimate == pytest.approx(1e-3)

    def test_acknowledgement_without_estimate(self):
        assert Acknowledgement(0, True).pber_estimate is None


class TestArq:
    def test_successful_first_attempt(self):
        arq = ArqLinkLayer(send=lambda packet, attempt: True)
        assert arq.deliver(make_packet())
        assert arq.statistics.average_transmissions == 1.0
        assert arq.statistics.efficiency == 1.0

    def test_retransmits_until_success(self):
        attempts = []

        def flaky(packet, attempt):
            attempts.append(attempt)
            return attempt == 3

        arq = ArqLinkLayer(send=flaky, max_attempts=7)
        assert arq.deliver(make_packet())
        assert attempts == [1, 2, 3]
        assert arq.statistics.average_transmissions == 3.0

    def test_gives_up_after_max_attempts(self):
        arq = ArqLinkLayer(send=lambda p, a: False, max_attempts=4)
        assert not arq.deliver(make_packet())
        assert arq.statistics.packets_abandoned == 1
        assert arq.statistics.transmissions == 4

    def test_whole_packet_retransmission_costs_full_size(self):
        """The conventional-ARQ inefficiency the paper contrasts PPR against."""
        calls = {"n": 0}

        def second_time_lucky(packet, attempt):
            calls["n"] += 1
            return attempt >= 2

        arq = ArqLinkLayer(send=second_time_lucky)
        packet = make_packet(size=1704)
        arq.deliver(packet)
        assert arq.statistics.bits_transmitted == 2 * 1704
        assert arq.statistics.efficiency == pytest.approx(0.5)

    def test_deliver_all_counts_successes(self):
        arq = ArqLinkLayer(send=lambda p, a: p.sequence != 1, max_attempts=2)
        delivered = arq.deliver_all([make_packet(sequence=i) for i in range(3)])
        assert delivered == 2

    def test_max_attempts_validation(self):
        with pytest.raises(ValueError):
            ArqLinkLayer(send=lambda p, a: True, max_attempts=0)

    def test_statistics_defaults(self):
        stats = ArqStatistics()
        assert stats.average_transmissions == 0.0
        assert stats.efficiency == 0.0

    def test_zero_traffic_session_reads_all_zero_ratios(self):
        # A session that offered no packets must not divide by zero in any
        # of the ratio properties (empty sessions happen whenever a harness
        # filters its packet source).
        stats = ArqStatistics()
        assert stats.delivery_rate == 0.0
        assert stats.average_transmissions == 0.0
        assert stats.efficiency == 0.0
        repr(stats)  # the repr formats the ratios; must not raise

    def test_abandoned_only_session_has_zero_delivery_rate(self):
        link = ArqLinkLayer(lambda packet, attempt: False, max_attempts=2)
        assert not link.deliver(make_packet(0))
        stats = link.statistics
        assert stats.delivery_rate == 0.0
        assert stats.average_transmissions == 0.0  # nothing was delivered
        assert stats.packets_abandoned == 1

    def test_delivery_rate_counts_delivered_over_offered(self):
        outcomes = iter([True, False, False, True])
        link = ArqLinkLayer(lambda packet, attempt: next(outcomes),
                            max_attempts=2)
        link.deliver(make_packet(0))  # delivered first try
        link.deliver(make_packet(1))  # fails twice -> abandoned
        link.deliver(make_packet(2))  # delivered first try
        assert link.statistics.delivery_rate == pytest.approx(2 / 3)


class TestPartialPacketRecovery:
    def test_only_suspect_chunks_are_retransmitted(self):
        ppr = PartialPacketRecovery(chunk_bits=8, ber_threshold=1e-2)
        estimates = np.full(32, 1e-6)
        estimates[10] = 0.3  # one bad bit in the second chunk
        transmitted = np.zeros(32, dtype=np.uint8)
        decoded = transmitted.copy()
        decoded[10] ^= 1
        outcome = ppr.recover(transmitted, decoded, estimates)
        assert outcome.bits_retransmitted == 8
        assert outcome.recovered
        assert outcome.retransmission_fraction == pytest.approx(0.25)

    def test_clean_packet_retransmits_nothing(self):
        ppr = PartialPacketRecovery(chunk_bits=16)
        bits = np.ones(64, dtype=np.uint8)
        outcome = ppr.recover(bits, bits, np.full(64, 1e-7))
        assert outcome.bits_retransmitted == 0
        assert outcome.recovered

    def test_residual_error_when_estimator_misses(self):
        """A wrong bit with a confident estimate escapes recovery."""
        ppr = PartialPacketRecovery(chunk_bits=8, ber_threshold=1e-2)
        transmitted = np.zeros(16, dtype=np.uint8)
        decoded = transmitted.copy()
        decoded[3] ^= 1
        outcome = ppr.recover(transmitted, decoded, np.full(16, 1e-8))
        assert not outcome.recovered
        assert outcome.residual_errors == 1

    def test_ppr_beats_full_retransmission_for_localised_errors(self):
        ppr = PartialPacketRecovery(chunk_bits=64, ber_threshold=1e-3)
        size = 1704
        estimates = np.full(size, 1e-7)
        estimates[100:110] = 0.2
        transmitted = np.zeros(size, dtype=np.uint8)
        decoded = transmitted.copy()
        decoded[100:110] ^= 1
        outcome = ppr.recover(transmitted, decoded, estimates)
        assert outcome.recovered
        assert outcome.retransmission_fraction < 0.1  # vs 1.0 for full ARQ

    def test_last_partial_chunk_is_handled(self):
        ppr = PartialPacketRecovery(chunk_bits=10, ber_threshold=1e-2)
        estimates = np.full(25, 1e-6)
        estimates[24] = 0.5
        mask = ppr.select_chunks(estimates)
        assert mask[20:].all()
        assert mask.sum() == 5

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PartialPacketRecovery(chunk_bits=0)
        with pytest.raises(ValueError):
            PartialPacketRecovery(ber_threshold=1.5)

    def test_shape_mismatch_rejected(self):
        ppr = PartialPacketRecovery()
        with pytest.raises(ValueError):
            ppr.recover(np.zeros(8), np.zeros(9), np.zeros(8))
