"""Unit tests for the SoftRate controller and the selection classifier."""

import pytest

from repro.mac.softrate import SoftRateController, classify_selection, optimal_rate_index
from repro.phy.params import RATE_TABLE, rate_by_mbps


class TestSoftRateController:
    def test_starts_at_lowest_rate_by_default(self):
        assert SoftRateController().current_rate == RATE_TABLE[0]

    def test_starts_at_requested_rate(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        assert controller.current_rate.data_rate_mbps == 24

    def test_unknown_initial_rate_rejected(self):
        with pytest.raises(ValueError):
            SoftRateController(rates=RATE_TABLE[:4], initial_rate=rate_by_mbps(54))

    def test_low_pber_steps_the_rate_up(self):
        controller = SoftRateController()
        controller.update(1e-9)
        assert controller.current_index == 1
        assert controller.rate_increases == 1

    def test_hysteresis_delays_the_step_up(self):
        controller = SoftRateController(up_hysteresis=2)
        controller.update(1e-9)
        assert controller.current_index == 0  # one good packet is not enough
        controller.update(1e-9)
        assert controller.current_index == 1

    def test_high_pber_steps_the_rate_down(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(1e-2)
        assert controller.current_rate.data_rate_mbps == 18
        assert controller.rate_decreases == 1

    def test_pber_inside_window_keeps_the_rate(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(3e-6)
        assert controller.current_rate.data_rate_mbps == 24

    def test_rate_saturates_at_both_ends(self):
        controller = SoftRateController()
        controller.update(0.5)  # already at the bottom
        assert controller.current_index == 0
        top = SoftRateController(initial_rate=RATE_TABLE[-1])
        top.update(1e-12)
        assert top.current_rate == RATE_TABLE[-1]

    def test_lost_feedback_counts_as_bad_packet(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(None)
        assert controller.current_rate.data_rate_mbps == 18

    def test_repeated_good_feedback_climbs_to_the_top(self):
        controller = SoftRateController()
        for _ in range(2 * len(RATE_TABLE)):
            controller.update(1e-9)
        assert controller.current_rate == RATE_TABLE[-1]

    def test_failed_probe_backs_off_before_probing_again(self):
        controller = SoftRateController(initial_rate=RATE_TABLE[3], backoff_packets=5)
        # A confident packet raises the rate (a probe)...
        controller.update(1e-9)
        assert controller.current_index == 4
        # ...the probe fails, so the controller drops back and then refuses
        # to probe again while the backoff is running.
        controller.update(1e-2)
        assert controller.current_index == 3
        for _ in range(4):
            controller.update(1e-9)
        assert controller.current_index == 3
        controller.update(1e-9)
        assert controller.current_index == 4

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SoftRateController(lower_pber=1e-5, upper_pber=1e-7)

    def test_hysteresis_and_backoff_validation(self):
        with pytest.raises(ValueError):
            SoftRateController(up_hysteresis=0)
        with pytest.raises(ValueError):
            SoftRateController(backoff_packets=-1)

    def test_reset_restores_initial_state(self):
        controller = SoftRateController()
        controller.update(1e-9)
        controller.reset()
        assert controller.current_index == 0
        assert controller.decisions == 0

    def test_decision_counter(self):
        controller = SoftRateController()
        controller.update(1e-6)
        controller.update(1e-6)
        assert controller.decisions == 2


class TestOptimalRateIndex:
    def test_highest_successful_rate_wins(self):
        assert optimal_rate_index([True, True, False, True, False]) == 3

    def test_no_success_defaults_to_lowest(self):
        assert optimal_rate_index([False] * 8) == 0

    def test_all_success_picks_fastest(self):
        assert optimal_rate_index([True] * 8) == 7


class TestClassification:
    def test_under_accurate_over(self):
        assert classify_selection(2, 4) == "underselect"
        assert classify_selection(4, 4) == "accurate"
        assert classify_selection(6, 4) == "overselect"
