"""Unit tests for the SoftRate controller and the selection classifier."""

import pytest

from repro.mac.softrate import SoftRateController, classify_selection, optimal_rate_index
from repro.phy.params import RATE_TABLE, rate_by_mbps


class TestSoftRateController:
    def test_starts_at_lowest_rate_by_default(self):
        assert SoftRateController().current_rate == RATE_TABLE[0]

    def test_starts_at_requested_rate(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        assert controller.current_rate.data_rate_mbps == 24

    def test_unknown_initial_rate_rejected(self):
        with pytest.raises(ValueError):
            SoftRateController(rates=RATE_TABLE[:4], initial_rate=rate_by_mbps(54))

    def test_low_pber_steps_the_rate_up(self):
        controller = SoftRateController()
        controller.update(1e-9)
        assert controller.current_index == 1
        assert controller.rate_increases == 1

    def test_hysteresis_delays_the_step_up(self):
        controller = SoftRateController(up_hysteresis=2)
        controller.update(1e-9)
        assert controller.current_index == 0  # one good packet is not enough
        controller.update(1e-9)
        assert controller.current_index == 1

    def test_high_pber_steps_the_rate_down(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(1e-2)
        assert controller.current_rate.data_rate_mbps == 18
        assert controller.rate_decreases == 1

    def test_pber_inside_window_keeps_the_rate(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(3e-6)
        assert controller.current_rate.data_rate_mbps == 24

    def test_rate_saturates_at_both_ends(self):
        controller = SoftRateController()
        controller.update(0.5)  # already at the bottom
        assert controller.current_index == 0
        top = SoftRateController(initial_rate=RATE_TABLE[-1])
        top.update(1e-12)
        assert top.current_rate == RATE_TABLE[-1]

    def test_lost_feedback_counts_as_bad_packet(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(None)
        assert controller.current_rate.data_rate_mbps == 18

    def test_repeated_good_feedback_climbs_to_the_top(self):
        controller = SoftRateController()
        for _ in range(2 * len(RATE_TABLE)):
            controller.update(1e-9)
        assert controller.current_rate == RATE_TABLE[-1]

    def test_failed_probe_backs_off_before_probing_again(self):
        controller = SoftRateController(initial_rate=RATE_TABLE[3], backoff_packets=5)
        # A confident packet raises the rate (a probe)...
        controller.update(1e-9)
        assert controller.current_index == 4
        # ...the probe fails, so the controller drops back and then refuses
        # to probe again while the backoff is running.
        controller.update(1e-2)
        assert controller.current_index == 3
        for _ in range(4):
            controller.update(1e-9)
        assert controller.current_index == 3
        controller.update(1e-9)
        assert controller.current_index == 4

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SoftRateController(lower_pber=1e-5, upper_pber=1e-7)

    def test_hysteresis_and_backoff_validation(self):
        with pytest.raises(ValueError):
            SoftRateController(up_hysteresis=0)
        with pytest.raises(ValueError):
            SoftRateController(backoff_packets=-1)

    def test_reset_restores_initial_state(self):
        controller = SoftRateController()
        controller.update(1e-9)
        controller.reset()
        assert controller.current_index == 0
        assert controller.decisions == 0

    def test_decision_counter(self):
        controller = SoftRateController()
        controller.update(1e-6)
        controller.update(1e-6)
        assert controller.decisions == 2


class TestOptimalRateIndex:
    def test_highest_successful_rate_wins(self):
        assert optimal_rate_index([True, True, False, True, False]) == 3

    def test_no_success_defaults_to_lowest(self):
        assert optimal_rate_index([False] * 8) == 0

    def test_all_success_picks_fastest(self):
        assert optimal_rate_index([True] * 8) == 7


class TestClassification:
    def test_under_accurate_over(self):
        assert classify_selection(2, 4) == "underselect"
        assert classify_selection(4, 4) == "accurate"
        assert classify_selection(6, 4) == "overselect"


class TestRateControllerProtocol:
    """SoftRate speaks the shared RateController protocol."""

    def test_choose_returns_the_current_index_and_is_pure(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        assert controller.choose() == controller.current_index
        assert controller.choose() == controller.choose()

    def test_observe_delegates_to_update(self):
        from repro.mac.rateadapt import RateFeedback

        by_update = SoftRateController()
        by_observe = SoftRateController()
        for pber in (1e-9, 1e-9, 1e-1, 1e-6, None, 1e-9):
            by_update.update(pber)
            by_observe.observe(RateFeedback(by_observe.choose(), True,
                                            pber_estimate=pber))
        assert by_observe.current_index == by_update.current_index
        assert by_observe.decisions == by_update.decisions
        assert by_observe.rate_decreases == by_update.rate_decreases

    def test_to_dict_round_trip(self):
        from repro.mac.rateadapt import controller_from_dict

        controller = SoftRateController(
            lower_pber=1e-6, upper_pber=1e-3, up_hysteresis=2,
            backoff_packets=4, initial_rate=rate_by_mbps(12),
            rates=RATE_TABLE[:5])
        clone = controller_from_dict(controller.to_dict())
        assert isinstance(clone, SoftRateController)
        assert clone.to_dict() == controller.to_dict()
        assert clone.current_index == controller.current_index

    def test_default_dict_omits_the_default_initial_rate(self):
        assert "initial_rate_mbps" not in SoftRateController().to_dict()
        assert SoftRateController(
            initial_rate=rate_by_mbps(36)).to_dict()["initial_rate_mbps"] == 36.0

    def test_reset_restores_the_configured_initial_rate(self):
        controller = SoftRateController(initial_rate=rate_by_mbps(24))
        controller.update(1e-9)
        controller.reset()
        assert controller.current_rate.data_rate_mbps == 24


class TestFigure7Regression:
    """Bit-for-bit snapshots of the Figure 7 pipeline.

    These sequences were recorded before SoftRate was refactored onto the
    RateController protocol; they pin the refactor (and any future one) to
    the exact decision stream of the original update()-driven loop.
    """

    def test_synthetic_outcomes_snapshot(self):
        import numpy as np

        from repro.mac.evaluation import SoftRateEvaluation
        from repro.mac.rateadapt import PrecomputedOutcomes

        packets = 40
        optimal = np.clip(
            np.round(3 + 2 * np.sin(np.arange(packets) / 4)).astype(int),
            0, 7)
        success = np.zeros((packets, 8), dtype=bool)
        for i, opt in enumerate(optimal):
            success[i, :opt + 1] = True
        pber = np.where(success, 1e-9, 1e-1)
        for i, opt in enumerate(optimal):
            pber[i, opt] = 1e-6
        pre = PrecomputedOutcomes(success, pber, pber.copy())

        evaluation = SoftRateEvaluation(num_packets=packets, seed=0)
        controller = SoftRateController(lower_pber=1e-7, upper_pber=1e-5,
                                        backoff_packets=3)
        result = evaluation.run("bcjr", precomputed=pre,
                                controller=controller)

        assert result.chosen_indices.tolist() == [
            0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 4, 4, 3, 3, 2, 2, 1, 1, 1,
            1, 1, 1, 2, 2, 2, 3, 3, 4, 4, 5, 5, 5, 5, 5, 5, 4, 4, 3, 3]
        assert result.optimal_indices.tolist() == [
            3, 3, 4, 4, 5, 5, 5, 5, 5, 5, 4, 4, 3, 3, 2, 2, 1, 1, 1, 1,
            1, 1, 2, 2, 2, 3, 3, 4, 4, 5, 5, 5, 5, 5, 5, 4, 4, 3, 3, 2]
        outcome = result.outcome
        assert (outcome.underselect, outcome.accurate, outcome.overselect) \
            == (9, 24, 7)

    @pytest.mark.filterwarnings("ignore")
    def test_real_decode_snapshot(self):
        from repro.mac.evaluation import SoftRateEvaluation

        rates3 = tuple(RATE_TABLE[i] for i in (0, 4, 7))
        evaluation = SoftRateEvaluation(snr_db=10.0, num_packets=6,
                                        packet_bits=200, seed=1,
                                        rates=rates3)
        precomputed = evaluation.precompute("bcjr", batch_size=3)
        result = evaluation.run("bcjr", precomputed=precomputed)
        assert result.chosen_indices.tolist() == [0, 1, 0, 0, 0, 0]
        assert result.optimal_indices.tolist() == [0, 0, 0, 0, 1, 1]
        outcome = result.outcome
        assert (outcome.underselect, outcome.accurate, outcome.overselect) \
            == (2, 3, 1)
