"""Tests for the 802.11a/g airtime model.

The frame-duration numbers are hand-computed from the 802.11a OFDM timing
(20 us PLCP preamble+SIGNAL, 4 us symbols, SERVICE+tail = 22 bits) so the
model is pinned to the standard rather than to itself.
"""

import pytest

from repro.mac.rateadapt.airtime import (ACK_BITS, AirtimeModel,
                                         default_airtime_model)
from repro.phy.params import RATE_TABLE, rate_by_mbps


class TestFrameDurations:
    def test_1500_byte_frame_at_6_mbps(self):
        # ceil((16 + 12000 + 6) / 24) = 501 symbols -> 20 + 4 * 501 us.
        model = AirtimeModel()
        assert model.data_duration_us(rate_by_mbps(6.0), 12000) == 2024.0

    def test_1500_byte_frame_at_54_mbps(self):
        # ceil(12022 / 216) = 56 symbols -> 20 + 4 * 56 us.
        model = AirtimeModel()
        assert model.data_duration_us(rate_by_mbps(54.0), 12000) == 244.0

    def test_symbol_padding_rounds_up(self):
        # 2 payload bits and 24 payload bits at 6 Mb/s both fit one or two
        # symbols: 16 + p + 6 <= 24 only for p <= 2.
        model = AirtimeModel()
        assert model.data_duration_us(rate_by_mbps(6.0), 2) == 24.0
        assert model.data_duration_us(rate_by_mbps(6.0), 3) == 28.0

    def test_payload_must_be_positive(self):
        with pytest.raises(ValueError):
            AirtimeModel().data_duration_us(rate_by_mbps(6.0), 0)

    def test_duration_never_increases_with_rate(self):
        model = AirtimeModel()
        durations = [model.data_duration_us(rate, 12000) for rate in RATE_TABLE]
        assert durations == sorted(durations, reverse=True)


class TestAckTiming:
    def test_ack_rate_is_highest_mandatory_not_exceeding_data_rate(self):
        model = AirtimeModel()
        expected = {6.0: 6.0, 9.0: 6.0, 12.0: 12.0, 18.0: 12.0,
                    24.0: 24.0, 36.0: 24.0, 48.0: 24.0, 54.0: 24.0}
        for rate in RATE_TABLE:
            assert (model.ack_rate_for(rate).data_rate_mbps
                    == expected[rate.data_rate_mbps])

    def test_ack_duration_at_24_mbps(self):
        # ceil((16 + 112 + 6) / 96) = 2 symbols -> 28 us.
        model = AirtimeModel()
        assert model.ack_duration_us(rate_by_mbps(54.0)) == 28.0

    def test_ack_duration_at_6_mbps(self):
        # ceil(134 / 24) = 6 symbols -> 44 us.
        model = AirtimeModel()
        assert model.ack_duration_us(rate_by_mbps(6.0)) == 44.0

    def test_ack_bits_are_a_14_byte_mac_frame(self):
        assert ACK_BITS == 14 * 8


class TestInterframeAndBackoff:
    def test_difs_is_sifs_plus_two_slots(self):
        assert AirtimeModel().difs_us == 34.0

    def test_first_attempt_expected_backoff(self):
        # E[uniform(0, 15)] = 7.5 slots of 9 us.
        assert AirtimeModel().expected_backoff_us(0) == 67.5

    def test_backoff_doubles_then_caps(self):
        model = AirtimeModel()
        values = [model.expected_backoff_us(a) for a in range(12)]
        assert values[1] == 0.5 * 31 * 9.0
        assert values == sorted(values)
        # (15 + 1) << 6 = 1024 hits cw_max + 1; later attempts are flat.
        cap = 0.5 * 1023 * 9.0
        assert values[6] == cap
        assert all(v == cap for v in values[6:])

    def test_backoff_can_be_disabled(self):
        model = AirtimeModel(include_backoff=False)
        assert model.expected_backoff_us(0) == 0.0
        assert model.expected_backoff_us(9) == 0.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            AirtimeModel().expected_backoff_us(-1)

    def test_contention_window_must_be_power_of_two_minus_one(self):
        with pytest.raises(ValueError):
            AirtimeModel(cw_min=16)
        with pytest.raises(ValueError):
            AirtimeModel(cw_max=1000)
        with pytest.raises(ValueError):
            AirtimeModel(cw_min=63, cw_max=31)


class TestWholeExchanges:
    def test_packet_airtime_composition(self):
        # DIFS + backoff + DATA + SIFS + ACK, all hand-computed above.
        model = AirtimeModel()
        assert model.packet_airtime_us(rate_by_mbps(6.0), 12000) == \
            34.0 + 67.5 + 2024.0 + 16.0 + 44.0
        assert model.packet_airtime_us(rate_by_mbps(54.0), 12000) == \
            34.0 + 67.5 + 244.0 + 16.0 + 28.0

    def test_lossless_is_first_attempt(self):
        model = AirtimeModel()
        for rate in RATE_TABLE:
            assert model.lossless_tx_us(rate, 1704) == \
                model.packet_airtime_us(rate, 1704, attempt=0)

    def test_throughput_below_nominal_rate(self):
        # Overhead means saturation throughput never reaches the PHY rate,
        # and bits / us is Mb/s directly.
        model = AirtimeModel()
        for rate in RATE_TABLE:
            mbps = model.throughput_mbps(rate, 12000)
            assert 0.0 < mbps < rate.data_rate_mbps
        assert model.throughput_mbps(rate_by_mbps(54.0), 12000) == \
            pytest.approx(12000 / 389.5)


class TestChunkInvariance:
    def test_airtime_is_a_pure_function_of_its_arguments(self):
        """Per-packet airtimes priced in chunks match one whole pass.

        This is the property the closed-loop driver relies on: the model
        holds no per-call state, so a trajectory's airtime column is
        bit-for-bit identical no matter how the trajectory was chunked.
        """
        model = AirtimeModel()
        # A deterministic mix of rates, payload sizes and retry counts.
        schedule = [(RATE_TABLE[(3 * i) % len(RATE_TABLE)], 1 + (i % 5) * 100,
                     i % 4) for i in range(64)]
        whole = [model.packet_airtime_us(rate, bits, attempt)
                 for rate, bits, attempt in schedule]
        boundaries = [0, 7, 20, 21, 50, len(schedule)]
        chunked = []
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            chunk_model = AirtimeModel()  # fresh instance per chunk
            chunked.extend(
                chunk_model.packet_airtime_us(rate, bits, attempt)
                for rate, bits, attempt in schedule[start:stop])
        assert chunked == whole


class TestSerialisation:
    def test_round_trip(self):
        model = AirtimeModel(slot_us=20.0, sifs_us=10.0, cw_min=31,
                             cw_max=255, include_backoff=False)
        clone = AirtimeModel.from_dict(model.to_dict())
        assert clone == model
        assert clone.to_dict() == model.to_dict()

    def test_equality(self):
        assert AirtimeModel() == default_airtime_model()
        assert AirtimeModel() != AirtimeModel(include_backoff=False)
        assert AirtimeModel() != "not a model"
