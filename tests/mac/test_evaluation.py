"""Tests for the SoftRate evaluation harness (a miniature Figure 7 run)."""

import numpy as np
import pytest

from repro.mac.evaluation import (
    PrecomputedOutcomes,
    RateSelectionOutcome,
    SoftRateEvaluation,
)
from repro.mac.softrate import SoftRateController
from repro.phy.params import RATE_TABLE, rate_by_mbps


class TestRateSelectionOutcome:
    def test_records_and_fractions(self):
        outcome = RateSelectionOutcome()
        for kind in ("accurate", "accurate", "underselect", "overselect"):
            outcome.record(kind)
        assert outcome.total == 4
        assert outcome.accuracy == pytest.approx(0.5)
        assert outcome.fraction("underselect") == pytest.approx(0.25)

    def test_unknown_classification_rejected(self):
        with pytest.raises(ValueError):
            RateSelectionOutcome().record("perfect")

    def test_as_dict_sums_to_one(self):
        outcome = RateSelectionOutcome()
        for kind in ("accurate", "overselect"):
            outcome.record(kind)
        assert sum(outcome.as_dict().values()) == pytest.approx(1.0)

    def test_empty_outcome_fractions_are_zero(self):
        assert RateSelectionOutcome().accuracy == 0.0


class TestControllerReplay:
    """Drive SoftRateEvaluation.run with hand-built precomputed outcomes."""

    def make_evaluation(self, num_packets):
        return SoftRateEvaluation(num_packets=num_packets, seed=0)

    def test_perfect_estimates_track_the_optimal_rate(self):
        packets = 30
        evaluation = self.make_evaluation(packets)
        rates = len(RATE_TABLE)
        # The channel supports index 3 throughout.  Estimates are ideal:
        # plenty of headroom below the optimum, inside the target window at
        # the optimum, and clearly bad above it.
        success = np.zeros((packets, rates), dtype=bool)
        success[:, : 3 + 1] = True
        pber = np.full((packets, rates), 1e-2)
        pber[:, :3] = 1e-9
        pber[:, 3] = 1e-6
        pre = PrecomputedOutcomes(success, pber, pber)
        controller = SoftRateController(
            lower_pber=1e-7, upper_pber=1e-5, backoff_packets=0, rates=RATE_TABLE
        )
        result = evaluation.run("bcjr", precomputed=pre, controller=controller)
        # The controller starts at the lowest rate, climbs one step per
        # packet, then stays at the optimum (the estimate there sits inside
        # the target window, so it never probes beyond it).
        assert result.outcome.underselect == 3
        assert result.outcome.accurate == packets - 3
        assert result.outcome.overselect == 0

    def test_overestimating_channel_quality_causes_overselect(self):
        packets = 10
        evaluation = self.make_evaluation(packets)
        rates = len(RATE_TABLE)
        success = np.zeros((packets, rates), dtype=bool)
        success[:, 0] = True  # only the lowest rate works
        pber = np.full((packets, rates), 1e-9)  # estimator wrongly optimistic
        pre = PrecomputedOutcomes(success, pber, pber)
        result = evaluation.run("bcjr", precomputed=pre)
        assert result.outcome.overselect > 0

    def test_custom_controller_is_respected(self):
        packets = 5
        evaluation = self.make_evaluation(packets)
        rates = len(RATE_TABLE)
        success = np.ones((packets, rates), dtype=bool)
        pre = PrecomputedOutcomes(success, np.full((packets, rates), 1e-6),
                                  np.zeros((packets, rates)))
        controller = SoftRateController(initial_rate=rate_by_mbps(54))
        result = evaluation.run("bcjr", precomputed=pre, controller=controller)
        assert result.outcome.accuracy == 1.0

    def test_throughput_metrics(self):
        packets = 4
        evaluation = self.make_evaluation(packets)
        rates = len(RATE_TABLE)
        success = np.ones((packets, rates), dtype=bool)
        pre = PrecomputedOutcomes(success, np.full((packets, rates), 1e-6),
                                  np.zeros((packets, rates)))
        result = evaluation.run("bcjr", precomputed=pre)
        assert result.achieved_throughput_mbps <= result.optimal_throughput_mbps
        assert result.optimal_throughput_mbps == pytest.approx(54.0)


class TestEndToEndSmallRun:
    def test_precompute_and_run_with_real_decoding(self):
        """A tiny but genuine Figure 7 pipeline: 6 packets, 3 rates."""
        rates = (rate_by_mbps(6), rate_by_mbps(24), rate_by_mbps(54))
        evaluation = SoftRateEvaluation(
            snr_db=10.0, num_packets=6, packet_bits=200, seed=1, rates=rates
        )
        pre = evaluation.precompute("bcjr", batch_size=3)
        assert pre.success.shape == (6, 3)
        assert np.all((pre.pber_estimate >= 0) & (pre.pber_estimate <= 1))
        # The lowest rate at 10 dB mean SNR should essentially always work
        # unless the fade is deep; the fastest rate should fail at least once.
        assert pre.success[:, 0].sum() >= pre.success[:, 2].sum()
        result = evaluation.run("bcjr", precomputed=pre)
        assert result.outcome.total == 6

    def test_fading_trace_is_reproducible(self):
        a = SoftRateEvaluation(num_packets=5, seed=3)
        b = SoftRateEvaluation(num_packets=5, seed=3)
        assert np.array_equal(a.gains, b.gains)
        c = SoftRateEvaluation(num_packets=5, seed=4)
        assert not np.array_equal(a.gains, c.gains)
