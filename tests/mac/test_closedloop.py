"""Tests for the closed-loop link: decode windows, replay, experiments.

The load-bearing property throughout is *chunk invariance*: every decoded
packet is a pure function of its absolute index, so windows tile, batch
sizes don't matter, and the declarative experiment produces bit-for-bit
identical rows across executors, worker counts, batch quanta and store
temperatures.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis.adaptive import MeasurementBatch
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.mac.evaluation import SoftRateEvaluation
from repro.mac.rateadapt import (ClosedLoopLink, MinstrelController,
                                 PrecomputedOutcomes, RateAdaptExperiment,
                                 RateAdaptScenario, RateFeedback,
                                 SampleRateController, oracle_trajectory,
                                 replay_trajectory, run_rate_adapt_batch)
from repro.mac.rateadapt.closedloop import LinkTrajectory
from repro.mac.softrate import SoftRateController
from repro.phy.params import RATE_TABLE

SMALL_RATES = RATE_TABLE[:3]


def small_link(**overrides):
    kwargs = dict(snr_db=10.0, doppler_hz=40.0, packet_bits=200, seed=7,
                  rates=SMALL_RATES, decoder="bcjr")
    kwargs.update(overrides)
    return ClosedLoopLink(**kwargs)


def synthetic_outcomes(num_packets=24, num_rates=3):
    """Deterministic outcomes whose optimal rate walks up and down."""
    optimal = np.clip(np.round(
        1 + np.sin(np.arange(num_packets) / 3.0) * (num_rates - 1)
    ).astype(int), 0, num_rates - 1)
    success = np.zeros((num_packets, num_rates), dtype=bool)
    for i, opt in enumerate(optimal):
        success[i, :opt + 1] = True
    pber = np.where(success, 1e-9, 1e-1)
    return PrecomputedOutcomes(success, pber, pber.copy()), optimal


class TestTrajectories:
    def test_oracle_tracks_the_optimal_rate(self):
        outcomes, optimal = synthetic_outcomes()
        oracle = oracle_trajectory(outcomes, 200, rates=SMALL_RATES)
        assert oracle.name == "oracle"
        assert np.array_equal(oracle.chosen_indices, optimal)
        assert np.array_equal(oracle.optimal_indices, optimal)
        assert oracle.delivered.all()  # every synthetic packet has a rate
        assert oracle.selection_fractions()["accurate"] == 1.0

    def test_oracle_pays_for_outage_packets(self):
        outcomes, _ = synthetic_outcomes(num_packets=4)
        outcomes.success[2, :] = False  # no rate delivers packet 2
        oracle = oracle_trajectory(outcomes, 200, rates=SMALL_RATES)
        assert not oracle.delivered[2]
        assert oracle.chosen_indices[2] == 0
        assert oracle.airtime_us[2] > 0.0
        assert oracle.delivered_packets == 3

    def test_replay_scores_delivery_at_the_chosen_rate(self):
        outcomes, optimal = synthetic_outcomes()
        controller = SoftRateController(lower_pber=1e-7, upper_pber=1e-5,
                                        rates=SMALL_RATES, backoff_packets=2)
        trajectory = replay_trajectory(controller, outcomes, 200)
        assert trajectory.name == "softrate"
        assert trajectory.num_packets == outcomes.num_packets
        expected = outcomes.success[np.arange(outcomes.num_packets),
                                    trajectory.chosen_indices]
        assert np.array_equal(trajectory.delivered, expected)
        assert np.array_equal(trajectory.optimal_indices, optimal)
        fractions = trajectory.selection_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_replay_is_deterministic_for_every_controller_kind(self):
        for make in (lambda: SoftRateController(rates=SMALL_RATES),
                     lambda: SampleRateController(rates=SMALL_RATES,
                                                  packet_bits=200),
                     lambda: MinstrelController(rates=SMALL_RATES,
                                                packet_bits=200)):
            outcomes, _ = synthetic_outcomes()
            first = replay_trajectory(make(), outcomes, 200)
            second = replay_trajectory(make(), outcomes, 200)
            assert np.array_equal(first.chosen_indices, second.chosen_indices)
            assert np.array_equal(first.airtime_us, second.airtime_us)

    def test_rate_count_mismatch_rejected(self):
        outcomes, _ = synthetic_outcomes(num_rates=3)
        with pytest.raises(ValueError, match="8 rates .* decoded at 3"):
            replay_trajectory(SoftRateController(), outcomes, 200)

    def test_row_is_flat_and_json_able(self):
        outcomes, _ = synthetic_outcomes()
        row = replay_trajectory(
            SampleRateController(rates=SMALL_RATES, packet_bits=200),
            outcomes, 200).row()
        assert row["controller"] == "samplerate"
        assert set(row) >= {"packets", "delivered_packets", "achieved_mbps",
                            "total_airtime_us", "underselect", "accurate",
                            "overselect"}
        json.dumps(row)

    def test_empty_trajectory_reads_zero_throughput(self):
        empty = LinkTrajectory("idle", [], [], [], [], 200, SMALL_RATES)
        assert empty.achieved_mbps == 0.0
        assert empty.selection_fractions()["accurate"] == 0.0


class TestDecodeWindow:
    def test_gains_tile_across_windows(self):
        link = small_link()
        whole = link.gains(0, 12)
        parts = np.concatenate([link.gains(0, 4), link.gains(4, 4),
                                link.gains(8, 4)])
        assert np.array_equal(whole, parts)

    def test_windows_tile_bit_for_bit(self):
        link = small_link()
        whole = link.decode_window(0, 12)
        parts = [link.decode_window(first, 4) for first in (0, 4, 8)]
        assert np.array_equal(whole.success,
                              np.vstack([p.success for p in parts]))
        assert np.array_equal(whole.pber_estimate,
                              np.vstack([p.pber_estimate for p in parts]))
        assert np.array_equal(whole.pber_actual,
                              np.vstack([p.pber_actual for p in parts]))

    def test_batch_size_does_not_change_outcomes(self):
        link = small_link()
        coarse = link.decode_window(0, 12, batch_size=16)
        fine = link.decode_window(0, 12, batch_size=5)
        assert np.array_equal(coarse.success, fine.success)
        assert np.array_equal(coarse.pber_estimate, fine.pber_estimate)

    def test_matches_the_figure7_precompute(self):
        # SoftRateEvaluation.precompute is the first_index=0 window of the
        # same link — one code path, so the matrices agree bit for bit.
        evaluation = SoftRateEvaluation(snr_db=10.0, doppler_hz=40.0,
                                        num_packets=6, packet_bits=200,
                                        seed=7, rates=SMALL_RATES)
        from_eval = evaluation.precompute("bcjr", batch_size=3)
        from_link = small_link(doppler_hz=40.0).decode_window(0, 6,
                                                              batch_size=3)
        assert np.array_equal(from_eval.success, from_link.success)
        assert np.array_equal(from_eval.pber_estimate, from_link.pber_estimate)


class TestRunRateAdaptBatch:
    def test_batch_decodes_its_absolute_window(self):
        scenario = RateAdaptScenario(decoder="bcjr", packet_bits=200,
                                     snr_db=10.0, doppler_hz=None)
        experiment = RateAdaptExperiment(scenario,
                                         axes={"doppler_hz": [40.0]},
                                         num_packets=8, batch_packets=4,
                                         seed=3)
        point = experiment.experiment.spec().points()[0]
        batch = MeasurementBatch(point, index=1, num_packets=4)
        result = run_rate_adapt_batch(batch)
        assert result["trials"] == 4
        link = ClosedLoopLink(snr_db=10.0, doppler_hz=40.0, packet_bits=200,
                              seed=point.seed, decoder="bcjr")
        expected = link.decode_window(4, 4)
        assert np.array_equal(result["success"], expected.success)
        assert np.array_equal(result["pber_estimate"], expected.pber_estimate)
        assert result["errors"] == int(
            (~expected.success.any(axis=1)).sum())


@pytest.fixture(scope="module")
def experiment_setup(tmp_path_factory):
    """One cold store-backed run shared by the invariance tests."""
    store_dir = tmp_path_factory.mktemp("ratestore")
    scenario = RateAdaptScenario(decoder="bcjr", packet_bits=200,
                                 snr_db=10.0, doppler_hz=None)
    axes = {"doppler_hz": [10.0, 40.0]}

    def make(num_packets=12, batch_packets=4, directory=store_dir):
        return RateAdaptExperiment(
            scenario, axes=axes, num_packets=num_packets,
            batch_packets=batch_packets, seed=3,
            store=ResultStore(directory))

    cold = make()
    rows = cold.run()
    return {"make": make, "rows": rows, "cold_stats": cold.last_store_stats,
            "store_dir": store_dir}


class TestRateAdaptExperiment:
    def test_cold_run_shape_and_serialisability(self, experiment_setup):
        rows = experiment_setup["rows"]
        # 2 points x (oracle + 3 default controllers).
        assert len(rows) == 2 * 4
        names = {row["controller"] for row in rows}
        assert names == {"oracle", "softrate", "samplerate", "minstrel"}
        for row in rows:
            assert row["packets"] == 12
            assert row["doppler_hz"] in (10.0, 40.0)
            assert 0.0 <= row["achieved_mbps"] <= row["oracle_mbps"] * 10
        json.dumps(rows)
        assert experiment_setup["cold_stats"]["misses"] > 0

    def test_warm_rerun_simulates_nothing_and_matches(self, experiment_setup):
        warm = experiment_setup["make"]()
        rows = warm.run()
        assert warm.last_store_stats["misses"] == 0
        assert warm.last_store_stats["hits"] > 0
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(experiment_setup["rows"], sort_keys=True)

    def test_process_executor_matches_serial(self, experiment_setup,
                                             tmp_path):
        executor = SweepExecutor("process", max_workers=2)
        rows = experiment_setup["make"](directory=tmp_path / "fresh").run(
            executor=executor)
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(experiment_setup["rows"], sort_keys=True)

    def test_worker_env_does_not_change_rows(self, experiment_setup,
                                             monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        rows = experiment_setup["make"](directory=tmp_path / "env").run()
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(experiment_setup["rows"], sort_keys=True)

    def test_batch_quantum_does_not_change_rows(self, experiment_setup,
                                                tmp_path):
        # 5 does not divide 12: the decode overshoots to 15 packets and the
        # experiment trims back to the requested trajectory length.
        rows = experiment_setup["make"](
            batch_packets=5, directory=tmp_path / "quantum").run()
        assert json.dumps(rows, sort_keys=True) == \
            json.dumps(experiment_setup["rows"], sort_keys=True)

    def test_longer_rerun_resumes_the_shorter_runs_batches(
            self, experiment_setup):
        # num_packets lives in the stop rule, not the store namespace: the
        # 12-packet run left 3 batches per point, so a 16-packet run only
        # simulates the fourth.
        longer = experiment_setup["make"](num_packets=16)
        rows = longer.run()
        stats = longer.last_store_stats
        assert stats["hits"] == 6
        assert stats["misses"] == 2
        assert all(row["packets"] == 16 for row in rows)

    def test_store_digest_is_stable_across_instances(self, experiment_setup):
        assert experiment_setup["make"]().store_digest() == \
            experiment_setup["make"](num_packets=999).store_digest()

    def test_controller_instances_do_not_leak_state_across_points(self):
        # Passing an instance captures its *configuration*; a fresh
        # controller is rebuilt per point, so dirtying the original between
        # construction and run() must not change the rows.
        scenario = RateAdaptScenario(decoder="bcjr", packet_bits=200,
                                     snr_db=10.0, doppler_hz=None)

        def experiment_with(controller):
            return RateAdaptExperiment(
                scenario, axes={"doppler_hz": [10.0, 40.0]}, num_packets=8,
                batch_packets=4, seed=3, controllers=[controller])

        clean_rows = experiment_with(SampleRateController(packet_bits=200)).run()
        dirty = SampleRateController(packet_bits=200)
        experiment = experiment_with(dirty)
        for _ in range(40):
            dirty.observe(RateFeedback(0, False))
        dirty_rows = experiment.run()
        assert json.dumps(dirty_rows, sort_keys=True) == \
            json.dumps(clean_rows, sort_keys=True)
        assert [row["controller"] for row in clean_rows] == \
            ["oracle", "samplerate"] * 2
