"""Quickstart: transmit a packet, corrupt it, decode it, estimate its BER.

This example walks the public API end to end:

1. pick an 802.11a/g rate,
2. transmit a packet through the OFDM baseband,
3. pass it through an AWGN channel,
4. receive it with the SW-BCJR soft-decision decoder, and
5. turn the SoftPHY hints into per-bit and per-packet BER estimates.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.channel import AwgnChannel
from repro.phy import Receiver, Transmitter, rate_by_mbps
from repro.softphy import BerEstimator

PACKET_BITS = 1704
SNR_DB = 7.0


def main():
    rate = rate_by_mbps(24)  # QAM16, rate-1/2 convolutional code
    print("Rate:            %s (%.0f Mb/s line rate)" % (rate.name, rate.data_rate_mbps))

    rng = np.random.default_rng(0)
    payload = rng.integers(0, 2, PACKET_BITS, dtype=np.uint8)

    transmitter = Transmitter(rate)
    samples = transmitter.transmit(payload)
    print("Frame:           %d OFDM symbols, %d complex samples"
          % (transmitter.geometry(PACKET_BITS).num_symbols, samples.size))

    channel = AwgnChannel(snr_db=SNR_DB, seed=1)
    received = channel(samples)

    receiver = Receiver(rate, decoder="bcjr")
    result = receiver.receive(received, PACKET_BITS)

    bit_errors = int(np.sum(result.bits != payload))
    print("Channel:         AWGN at %.1f dB" % SNR_DB)
    print("Bit errors:      %d of %d (actual BER %.2e)"
          % (bit_errors, PACKET_BITS, bit_errors / PACKET_BITS))

    estimator = BerEstimator("bcjr")
    per_bit = estimator.per_bit_ber(result.hints, rate.modulation)
    packet_ber = estimator.packet_ber(result.hints, rate.modulation)
    print("SoftPHY hints:   min %.1f / median %.1f / max %.1f"
          % (result.hints.min(), np.median(result.hints), result.hints.max()))
    print("Predicted BER:   per-packet %.2e (worst bit %.2e)"
          % (packet_ber, per_bit.max()))

    # The hints are useful exactly as the paper argues: erroneous bits carry
    # much lower confidence than correct ones.
    errors = result.bits != payload
    if errors.any():
        print("Mean hint:       %.1f on correct bits vs %.1f on erroneous bits"
              % (result.hints[~errors].mean(), result.hints[errors].mean()))


if __name__ == "__main__":
    main()
