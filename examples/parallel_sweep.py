"""Process-parallel BER characterisation across a (rate, SNR) grid.

The paper's point is that a software radio testbed is only useful if it can
characterise BER/throughput across many operating points quickly.  This
example declares a Figure-6-style grid with :class:`SweepSpec` (each point
gets its own independently derived seed), runs it once on the serial
backend and once on the process backend, and shows that the rows are
bit-for-bit identical — worker count, chunk size and dispatch order never
change a result, so sweeps can be sharded across every core for free.

Run with::

    python examples/parallel_sweep.py [workers]
"""

import sys
import time

from repro.analysis.sweep import (
    SweepExecutor,
    SweepSpec,
    rows_to_json,
    run_link_ber_point,
)


def main(workers=4):
    spec = SweepSpec(
        axes={"rate_mbps": [12, 24], "snr_db": [5.0, 6.0, 7.0, 8.0]},
        constants={"decoder": "bcjr", "packet_bits": 1704,
                   "num_packets": 16, "batch_size": 16},
        seed=23,
    )
    print("Sweep: %s (%d points)\n" % (spec, len(spec)))

    start = time.perf_counter()
    serial_rows = SweepExecutor("serial").run(spec, run_link_ber_point)
    serial_elapsed = time.perf_counter() - start

    executor = SweepExecutor("process", max_workers=workers, chunk_size=1)
    start = time.perf_counter()
    parallel_rows = executor.run(spec, run_link_ber_point)
    parallel_elapsed = time.perf_counter() - start

    print("rows (JSON lines, grid order):")
    print(rows_to_json(parallel_rows))
    print()
    print("serial backend:            %.2f s" % serial_elapsed)
    print("process backend (%d wkrs): %.2f s" % (workers, parallel_elapsed))
    print("rows bit-for-bit identical: %s" % (parallel_rows == serial_rows))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
