"""Adaptive BER characterisation across a (rate, SNR) grid.

The paper's point is that a software radio testbed is only useful if it can
characterise BER/throughput across many operating points quickly.  This
example runs the repository's characterisation service over a
Figure-6-style grid through the declarative front door: the link is a
:class:`Scenario`, the grid a :class:`SweepSpec`, and the
:class:`Experiment` — "give me this BER curve to ±25% confidence within a
global budget of packets" — drives the adaptive scheduler underneath.  It
dispatches fixed-size batches round by round, stops each point as soon as
its Wilson interval is tight enough (or its zero-error upper bound proves
the BER is below the floor), and reallocates the budget freed by
early-stopped points to the loosest survivors — so the noisy low-SNR
points cost a batch or two while the clean high-SNR tail gets the traffic
it actually needs.

Fixed versus adaptive depth
---------------------------
``stop=None`` is the *fixed-depth* mode: every point simulates exactly
``num_packets`` packets (what the wall-clock-pinned perf benchmarks
need).  The adaptive mode used here runs each point in fixed-size batches
until the ``StopRule`` fires.

Determinism and sharding
------------------------
Batch ``k`` of a point is seeded from child ``k`` of the point's
``SeedSequence`` (itself derived from the spec's master seed and the
point's axis coordinates), so every batch's content is pre-determined:
stopping decisions, worker count and dispatch order choose only *which*
batches run.  Set ``REPRO_SWEEP_WORKERS=N`` — or pass a process executor
to ``Experiment.run``, as this example does — to shard each round across
N worker processes; the rows, including packets spent and stop reasons,
are bit-for-bit identical to the serial run.  (For persisting and
resuming curves across runs, see ``examples/resume_store.py``.)

Run with::

    python examples/parallel_sweep.py [workers]
"""

import sys
import time

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.sweep import SweepExecutor, SweepSpec, rows_to_json

#: Global traffic budget (packets) and per-batch quantum.
BUDGET_PACKETS = 160
BATCH_PACKETS = 8


def build_experiment():
    return Experiment(
        scenario=Scenario(decoder="bcjr", packet_bits=1704),
        sweep=SweepSpec(
            axes={"rate_mbps": [12, 24], "snr_db": [5.0, 6.0, 7.0, 8.0]},
            seed=23,
        ),
        stop=StopRule(rel_half_width=0.25, min_errors=50, ber_floor=1e-4,
                      max_packets=64),
        batch_packets=BATCH_PACKETS,
        budget=BUDGET_PACKETS,
    )


def main(workers=4):
    experiment = build_experiment()
    spec = experiment.spec()
    print("Characterising %s (%d points) to ±25%% within %d packets\n"
          % (spec, len(spec), BUDGET_PACKETS))

    start = time.perf_counter()
    serial_rows = experiment.run(SweepExecutor("serial"))
    serial_elapsed = time.perf_counter() - start

    executor = SweepExecutor("process", max_workers=workers, chunk_size=1)
    start = time.perf_counter()
    parallel_rows = experiment.run(executor)
    parallel_elapsed = time.perf_counter() - start

    print("%-10s %-8s %-10s %-22s %-8s %s"
          % ("rate", "SNR", "BER", "95% Wilson interval", "packets", "stop"))
    for row in parallel_rows:
        interval = "[%.3g, %.3g]" % (row["ber_low"], row["ber_high"])
        print("%-10s %-8s %-10.3g %-22s %-8d %s"
              % (row["rate_mbps"], row["snr_db"], row["ber"],
                 interval, row["packets"], row["stop_reason"]))
    total = sum(row["packets"] for row in parallel_rows)
    print("\ntotal traffic: %d packets (budget %d; fixed depth at the "
          "hungriest point's %d would have cost %d)"
          % (total, BUDGET_PACKETS,
             max(row["packets"] for row in parallel_rows),
             len(spec) * max(row["packets"] for row in parallel_rows)))
    print("\nrows (JSON lines, grid order):")
    print(rows_to_json(parallel_rows))
    print()
    print("serial backend:            %.2f s" % serial_elapsed)
    print("process backend (%d wkrs): %.2f s" % (workers, parallel_elapsed))
    print("rows bit-for-bit identical: %s" % (parallel_rows == serial_rows))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
