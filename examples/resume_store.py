"""Persist a BER characterisation and resume it with a tighter target.

Because batch ``k`` of an operating point is a pure function of
``(scenario, spec, point, batch index)``, per-batch results can be cached
on disk and *resumed*: a re-run with a tighter :class:`StopRule` maps onto
the same store namespace (the stop rule deliberately does not enter the
:meth:`Experiment.store_digest`) and simulates only the batch indices the
looser run never reached, while a plain warm re-run simulates nothing at
all and still reproduces every row bit for bit — packets spent and stop
reasons included.

This example runs the same Figure-6-style experiment three times against
one :class:`ResultStore`:

1. **cold** — empty store, every batch simulated;
2. **warm** — identical ask, every batch served from disk (the script
   asserts zero simulated batches, which is what the CI cold-vs-warm job
   checks);
3. **tighter** — ±15% instead of ±30%: cached batches replay, only the
   missing tail is simulated.

Run with::

    python examples/resume_store.py [store_dir]

The store directory defaults to a temporary one; pass a path to keep the
curves and re-run the script to see a fully warm start.
"""

import sys
import tempfile
import time

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepSpec


def build_experiment(store, rel_half_width, max_packets):
    return Experiment(
        scenario=Scenario(decoder="bcjr", packet_bits=1704),
        sweep=SweepSpec({"rate_mbps": [24],
                         "snr_db": [4.0, 5.0, 6.0, 7.0, 8.0]}, seed=23),
        stop=StopRule(rel_half_width=rel_half_width, min_errors=30,
                      ber_floor=1e-4, max_packets=max_packets),
        batch_packets=8,
        store=store,
    )


def run(label, experiment):
    start = time.perf_counter()
    rows = experiment.run()
    elapsed = time.perf_counter() - start
    stats = experiment.last_store_stats
    print("%-8s %6.2f s   %3d batches simulated, %3d served from store"
          % (label, elapsed, stats["misses"], stats["hits"]))
    return rows, stats


def main(store_dir):
    store = ResultStore(store_dir)
    print("Store:     %s" % store_dir)
    print("Namespace: %s…\n"
          % build_experiment(store, 0.30, 48).store_digest()[:16])

    cold_rows, _ = run("cold", build_experiment(store, 0.30, 48))
    warm_rows, warm = run("warm", build_experiment(store, 0.30, 48))
    assert warm_rows == cold_rows, "warm rows must be bit-for-bit identical"
    assert warm["misses"] == 0, "a warm run must simulate zero batches"

    tight_rows, tight = run("tighter", build_experiment(store, 0.15, 96))
    # On a fresh store the tighter run serves exactly the ±30% batches; on
    # a pre-warmed persistent store (re-running this script on the same
    # directory) it may serve even more — but never fewer.
    assert tight["hits"] >= sum(row["batches"] for row in cold_rows), \
        "every previously simulated batch must be served from the store"

    print("\n%-8s %-8s %-10s %-9s %-8s %s"
          % ("rate", "SNR", "BER", "packets", "batches", "stop"))
    for before, after in zip(cold_rows, tight_rows):
        print("%-8s %-8s %-10.3g %4d->%-4d %3d->%-3d %s->%s"
              % (after["rate_mbps"], after["snr_db"], after["ber"],
                 before["packets"], after["packets"],
                 before["batches"], after["batches"],
                 before["stop_reason"], after["stop_reason"]))
    print("\nResume is incremental: the tighter ask simulated only the "
          "%d batches the ±30%% run never needed." % tight["misses"])


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(tmp)
