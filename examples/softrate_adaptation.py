"""SoftRate rate adaptation over a fading channel (a small Figure 7).

A transmitter streams packets over a 20 Hz Rayleigh fading channel with
10 dB of AWGN.  After every packet the receiver's SoftPHY estimator reports
a predicted per-packet BER, and the SoftRate controller uses it to pick the
next packet's rate.  The example compares every choice against the optimal
rate (the highest rate at which that very packet would have been received
without error) and prints the underselect / accurate / overselect breakdown
alongside the achieved throughput.

Run with::

    python examples/softrate_adaptation.py [num_packets]
"""

import sys

from repro.mac import SoftRateEvaluation


def main(num_packets=48):
    evaluation = SoftRateEvaluation(
        snr_db=10.0,
        doppler_hz=20.0,
        num_packets=num_packets,
        packet_bits=600,
        seed=3,
    )
    print("Channel: Rayleigh fading at %.0f Hz Doppler, %.0f dB mean SNR"
          % (evaluation.doppler_hz, evaluation.snr_db))
    print("Packets: %d x %d bits\n" % (evaluation.num_packets, evaluation.packet_bits))

    for decoder in ("bcjr", "sova"):
        result = evaluation.run(decoder, batch_size=16)
        outcome = result.outcome.as_dict()
        print("SoftRate with %s estimates:" % decoder.upper())
        print("  underselect: %5.1f%%" % (100 * outcome["underselect"]))
        print("  accurate:    %5.1f%%" % (100 * outcome["accurate"]))
        print("  overselect:  %5.1f%%" % (100 * outcome["overselect"]))
        print("  throughput:  %.1f Mb/s achieved vs %.1f Mb/s oracle"
              % (result.achieved_throughput_mbps, result.optimal_throughput_mbps))
        chosen = "".join(str(i) for i in result.chosen_indices)
        optimal = "".join(str(i) for i in result.optimal_indices)
        print("  chosen rate indices:  %s" % chosen)
        print("  optimal rate indices: %s" % optimal)
        print()


if __name__ == "__main__":
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    main(packets)
