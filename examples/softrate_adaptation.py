"""SoftRate rate adaptation over a fading channel (a small Figure 7).

A transmitter streams packets over a 20 Hz Rayleigh fading channel with
10 dB of AWGN.  After every packet the receiver's SoftPHY estimator reports
a predicted per-packet BER, and the SoftRate controller uses it to pick the
next packet's rate.  The example compares every choice against the optimal
rate (the highest rate at which that very packet would have been received
without error) and prints the underselect / accurate / overselect breakdown
alongside the achieved throughput.

The decoder comparison is an :class:`Experiment` over the decoder axis —
set ``REPRO_SWEEP_WORKERS=2`` to evaluate both decoders in parallel
processes.

Run with::

    python examples/softrate_adaptation.py [num_packets]
"""

import sys

from repro.analysis.scenario import Experiment
from repro.analysis.sweep import SweepSpec
from repro.mac import SoftRateEvaluation

SNR_DB = 10.0
DOPPLER_HZ = 20.0
PACKET_BITS = 600


def evaluate_decoder(point):
    """Picklable point-runner: evaluate SoftRate with one decoder's hints."""
    evaluation = SoftRateEvaluation(
        snr_db=SNR_DB,
        doppler_hz=DOPPLER_HZ,
        num_packets=point["num_packets"],
        packet_bits=PACKET_BITS,
        seed=3,
    )
    return {"result": evaluation.run(point["decoder"], batch_size=16)}


def main(num_packets=48):
    print("Channel: Rayleigh fading at %.0f Hz Doppler, %.0f dB mean SNR"
          % (DOPPLER_HZ, SNR_DB))
    print("Packets: %d x %d bits\n" % (num_packets, PACKET_BITS))

    experiment = Experiment(
        sweep=SweepSpec({"decoder": ["bcjr", "sova"]},
                        constants={"num_packets": num_packets}, seed=3),
        runner=evaluate_decoder,
    )
    for row in experiment.run():
        result = row["result"]
        outcome = result.outcome.as_dict()
        print("SoftRate with %s estimates:" % row["decoder"].upper())
        print("  underselect: %5.1f%%" % (100 * outcome["underselect"]))
        print("  accurate:    %5.1f%%" % (100 * outcome["accurate"]))
        print("  overselect:  %5.1f%%" % (100 * outcome["overselect"]))
        print("  throughput:  %.1f Mb/s achieved vs %.1f Mb/s oracle"
              % (result.achieved_throughput_mbps, result.optimal_throughput_mbps))
        chosen = "".join(str(i) for i in result.chosen_indices)
        optimal = "".join(str(i) for i in result.optimal_indices)
        print("  chosen rate indices:  %s" % chosen)
        print("  optimal rate indices: %s" % optimal)
        print()


if __name__ == "__main__":
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    main(packets)
