"""SoftPHY calibration: measure the BER-versus-hint curves (a small Figure 5).

The paper validates its hardware decoders by showing that the empirical BER
of bits carrying a given LLR hint follows a straight line on a semi-log
plot, with a slope that depends on SNR, modulation and decoder.  This
example measures two of those curves (BCJR and SOVA at QAM16, 6 dB) as an
:class:`Experiment` over the decoder axis — set ``REPRO_SWEEP_WORKERS=2``
to measure both decoders in parallel processes — then fits the log-linear
relationship and prints the resulting lookup-table scale.

Run with::

    python examples/softphy_calibration.py [num_packets]
"""

import sys

from repro.analysis.scenario import Experiment
from repro.analysis.sweep import SweepSpec
from repro.phy import rate_by_mbps
from repro.softphy import fit_log_linear, measure_ber_vs_hint

SNR_DB = 6.0


def measure_decoder(point):
    """Picklable point-runner: calibrate one decoder."""
    measurement = measure_ber_vs_hint(
        rate_by_mbps(24), SNR_DB, point["decoder"],
        num_packets=point["num_packets"], packet_bits=1704, seed=7,
    )
    return {"measurement": measurement,
            "fit": fit_log_linear(measurement, min_bits=200)}


def main(num_packets=24):
    rate = rate_by_mbps(24)
    experiment = Experiment(
        sweep=SweepSpec({"decoder": ["bcjr", "sova"]},
                        constants={"num_packets": num_packets}, seed=7),
        runner=measure_decoder,
    )
    rows = experiment.run()
    for row in rows:
        measurement, fit = row["measurement"], row["fit"]
        print("%s at %s, %.0f dB AWGN" % (row["decoder"].upper(), rate.name, SNR_DB))
        print("  bits measured:    %d (%d errors)"
              % (measurement.bits.sum(), measurement.errors.sum()))
        print("  log-linear fit:   log BER = %.2f - %.3f * hint   (r^2 = %.3f)"
              % (fit.intercept, fit.slope, fit.r_squared))
        print("  implied S_dec:    %.3f"
              % fit.implied_decoder_scale(SNR_DB, rate.modulation))
        print("  hint for 1e-7:    %.1f (extrapolated)" % fit.hint_for_ber(1e-7))
        print()
        populated = measurement.reliable_mask(min_bits=200, min_errors=1)
        print("  hint -> measured BER")
        for hint, ber in zip(measurement.hints[populated], measurement.ber[populated]):
            print("   %5.1f   %.3e" % (hint, ber))
        print()


if __name__ == "__main__":
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    main(packets)
