"""SoftPHY calibration: measure the BER-versus-hint curves (a small Figure 5).

The paper validates its hardware decoders by showing that the empirical BER
of bits carrying a given LLR hint follows a straight line on a semi-log
plot, with a slope that depends on SNR, modulation and decoder.  This
example measures two of those curves (BCJR and SOVA at QAM16, 6 dB), fits
the log-linear relationship and prints the resulting lookup-table scale.

Run with::

    python examples/softphy_calibration.py [num_packets]
"""

import sys

from repro.phy import rate_by_mbps
from repro.softphy import fit_log_linear, measure_ber_vs_hint


def main(num_packets=24):
    rate = rate_by_mbps(24)
    snr_db = 6.0
    for decoder in ("bcjr", "sova"):
        measurement = measure_ber_vs_hint(
            rate, snr_db, decoder, num_packets=num_packets,
            packet_bits=1704, seed=7,
        )
        fit = fit_log_linear(measurement, min_bits=200)
        print("%s at %s, %.0f dB AWGN" % (decoder.upper(), rate.name, snr_db))
        print("  bits measured:    %d (%d errors)"
              % (measurement.bits.sum(), measurement.errors.sum()))
        print("  log-linear fit:   log BER = %.2f - %.3f * hint   (r^2 = %.3f)"
              % (fit.intercept, fit.slope, fit.r_squared))
        print("  implied S_dec:    %.3f"
              % fit.implied_decoder_scale(snr_db, rate.modulation))
        print("  hint for 1e-7:    %.1f (extrapolated)" % fit.hint_for_ber(1e-7))
        print()
        populated = measurement.reliable_mask(min_bits=200, min_errors=1)
        print("  hint -> measured BER")
        for hint, ber in zip(measurement.hints[populated], measurement.ber[populated]):
            print("   %5.1f   %.3e" % (hint, ber))
        print()


if __name__ == "__main__":
    packets = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    main(packets)
