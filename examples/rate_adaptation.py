"""Closed-loop rate adaptation: SoftRate vs the classic samplers.

Runs the declarative :class:`~repro.mac.rateadapt.RateAdaptExperiment` at
two Doppler rates and prints the honest scoreboard — achieved airtime
throughput (payload bits delivered over 802.11a airtime consumed) for each
controller against the per-packet oracle — then re-runs warm from the
result store and asserts the rerun simulated **zero** packets: the decode
is content-addressed in the store, and controllers are replayed over it.

Run with::

    python examples/rate_adaptation.py [num_packets] [store_dir]

``num_packets`` defaults to 48; the store directory defaults to a
temporary one — pass a path to keep the decoded batches, then ask for a
*longer* trajectory and watch it resume from the shorter run's batches.
"""

import sys
import tempfile

from repro.analysis.store import ResultStore
from repro.mac.rateadapt import RateAdaptExperiment, RateAdaptScenario

DOPPLERS_HZ = [10.0, 40.0]


def build_experiment(num_packets, store_dir):
    scenario = RateAdaptScenario(
        decoder="bcjr",
        packet_bits=1704,       # the paper's Figure 6/7 payload
        snr_db=10.0,
        doppler_hz=None,        # swept
    )
    return RateAdaptExperiment(
        scenario,
        axes={"doppler_hz": DOPPLERS_HZ},
        num_packets=num_packets,
        batch_packets=16,
        seed=11,
        store=ResultStore(store_dir),
    )


def print_scoreboard(rows):
    by_point = {}
    for row in rows:
        by_point.setdefault(row["doppler_hz"], []).append(row)
    header = ("controller", "achieved Mb/s", "of oracle", "delivered",
              "accurate")
    for doppler in sorted(by_point):
        print("\nDoppler %g Hz:" % doppler)
        print("  %-12s %13s %9s %9s %9s" % header)
        point_rows = sorted(by_point[doppler],
                            key=lambda r: -r["achieved_mbps"])
        oracle_mbps = point_rows[0]["oracle_mbps"]
        for row in point_rows:
            fraction = (row["achieved_mbps"] / oracle_mbps
                        if oracle_mbps else 0.0)
            print("  %-12s %13.3f %8.0f%% %6d/%-2d %8.0f%%"
                  % (row["controller"], row["achieved_mbps"],
                     100.0 * fraction, row["delivered_packets"],
                     row["packets"], 100.0 * row["accurate"]))


def main(argv):
    num_packets = int(argv[1]) if len(argv) > 1 else 48
    store_dir = argv[2] if len(argv) > 2 else tempfile.mkdtemp(
        prefix="rateadapt-store-")

    cold = build_experiment(num_packets, store_dir)
    print("Decoding %d packets x 8 rates x %d Doppler points into %s ..."
          % (num_packets, len(DOPPLERS_HZ), store_dir))
    rows = cold.run()
    stats = cold.last_store_stats
    print("cold run: %d batches simulated, %d served from the store"
          % (stats["misses"], stats["hits"]))
    print_scoreboard(rows)

    # Warm rerun: the decode is in the store; replaying every controller
    # (or adding a new one) costs no simulation at all.
    warm = build_experiment(num_packets, store_dir)
    warm_rows = warm.run()
    stats = warm.last_store_stats
    print("\nwarm rerun: %d batches simulated, %d served from the store"
          % (stats["misses"], stats["hits"]))
    assert stats["misses"] == 0, "warm rerun must simulate nothing"
    assert warm_rows == rows, "warm rows must match bit for bit"
    print("warm rerun simulated zero packets and matched bit for bit.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
