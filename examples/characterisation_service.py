"""Run the link characteriser as a long-lived service.

Two demonstrations, both asserted (so this script doubles as the CI
service smoke test):

1. **In process** — start a :class:`Service`, submit two *overlapping*
   requests concurrently, stream rows as points finish, and check the
   dedup ledger: every shared batch was simulated exactly once, and both
   clients still received bit-for-bit the rows of their own serial
   ``Experiment.run``.
2. **As a daemon** — spawn ``python -m repro.service`` on a free port,
   submit the same two overlapping requests over HTTP (JSON in, JSON
   lines out), assert the second is served partly from cache — zero
   simulated batches for the shared operating points — then exercise
   the hardened front door: read the ``GET /v1/metrics`` ledgers,
   cancel a deep request mid-flight over HTTP and watch its stream end
   with a ``cancelled`` event, and finally shut the daemon down cleanly
   via ``POST /v1/shutdown``.

Run with::

    python examples/characterisation_service.py [store_dir]

The store directory defaults to a temporary one; pass a path to keep the
curves and re-run for a fully warm start.  Maintain the store afterwards
with ``python -m repro.analysis.store ls|stats|gc <store_dir>``.

Observability hooks (used by the CI obs-smoke job):

* ``REPRO_TRACE_DIR=DIR`` traces both demos into ``DIR`` — the
  in-process service directly, the daemon through the inherited
  environment — ready for ``python -m repro.obs.trace summarize DIR``.
* ``REPRO_PROM_SCRAPE=PATH`` fetches the daemon's
  ``GET /v1/metrics?format=prometheus`` exposition, validates it with
  the strict text-format parser, and writes it to ``PATH``.
"""

import os
import re
import subprocess
import sys
import tempfile
import time

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.store import ResultStore
from repro.analysis.sweep import SweepExecutor
from repro.service import CharacterisationRequest, Service, cancel_request, \
    fetch_json, stream_request

SNRS_A = [4.0, 5.0, 6.0, 7.0]
SNRS_B = [6.0, 7.0, 8.0, 9.0]       # overlaps A at 6 and 7 dB
SHARED = sorted(set(SNRS_A) & set(SNRS_B))


def build_request(snrs, priority=0):
    return CharacterisationRequest(
        scenario=Scenario(decoder="bcjr", packet_bits=600),
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=StopRule(rel_half_width=0.3, min_errors=20, ber_floor=1e-3,
                      max_packets=32),
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
        priority=priority,
    )


def in_process_demo(store_dir):
    print("== in process: two overlapping requests, one worker fleet ==")
    with Service(ResultStore(store_dir), workers=2) as service:
        started = time.perf_counter()
        ticket_a = service.submit(build_request(SNRS_A))
        ticket_b = service.submit(build_request(SNRS_B, priority=1))
        for row in ticket_a.rows():    # streams as points finish
            print("  [stream A +%5.2fs] snr=%4.1f dB  ber=%9.3g  %s"
                  % (time.perf_counter() - started, row["snr_db"],
                     row["ber"], row["stop_reason"]))
        rows_a = ticket_a.result(timeout=300)
        rows_b = ticket_b.result(timeout=300)
        simulated = service.broker.total_simulated_batches
        progress_b = ticket_b.progress()

    # Both clients got bit-for-bit their serial Experiment rows...
    assert rows_a == build_request(SNRS_A).experiment().run(
        SweepExecutor("serial"))
    assert rows_b == build_request(SNRS_B).experiment().run(
        SweepExecutor("serial"))
    # ...for strictly less simulation than two serial runs: the shared
    # 6 and 7 dB batches ran once, not twice.
    serial_batches = sum(r["batches"] for r in rows_a + rows_b)
    assert simulated < serial_batches, (simulated, serial_batches)
    print("  dedup: %d batches simulated for %d batches of demand "
          "(B reused %d via store/in-flight merge)\n"
          % (simulated, serial_batches,
             progress_b["batches_cached"] + progress_b["batches_shared"]))


def daemon_demo(store_dir):
    print("== as a daemon: HTTP JSON-lines front door ==")
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--store", store_dir, "--port", "0", "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    try:
        announce = daemon.stdout.readline()
        print("  " + announce.strip())
        base_url = "http://%s:%s" % re.search(
            r"http://([\d.]+):(\d+)", announce).groups()

        # First ask: cold (this daemon store is fresh on a default run).
        first_events = list(stream_request(base_url, build_request(SNRS_A)))
        assert first_events[-1]["event"] == "done"

        # Second, overlapping ask: the shared points must be answered
        # entirely from the store — zero simulated batches for them.
        events = list(stream_request(base_url, build_request(SNRS_B)))
        done = events[-1]
        assert done["event"] == "done"
        for point in done["progress"]["points"]:
            tag = ("shared, %d cached" % point["cached"]
                   if point["snr_db"] in SHARED
                   else "%d simulated" % point["simulated"])
            print("  snr=%4.1f dB  %-22s %s"
                  % (point["snr_db"], point["stop_reason"], tag))
            if point["snr_db"] in SHARED:
                assert point["simulated"] == 0, point
                assert point["cached"] == point["batches"], point

        # The metrics ledger is the operator's view of the same story:
        # admission open, and the overlap answered without simulation.
        metrics = fetch_json(base_url + "/v1/metrics")
        assert metrics["admission"]["open"] is True
        assert metrics["batches"]["simulated"] > 0
        assert metrics["batches"]["cached"] > 0
        print("  metrics: %d completed, %d batches simulated, %d cached"
              % (metrics["requests"]["completed"],
                 metrics["batches"]["simulated"],
                 metrics["batches"]["cached"]))

        # Cancel round trip: a deep request (8 cold points, 64-packet
        # budget) cancelled right after admission — its stream must end
        # with a ``cancelled`` event and the ledger must record it.
        deep = CharacterisationRequest(
            scenario=Scenario(decoder="bcjr", packet_bits=600),
            axes={"rate_mbps": [24],
                  "snr_db": [10.0 + 0.5 * i for i in range(8)]},
            stop=StopRule(rel_half_width=0.2, min_errors=50,
                          max_packets=64),
            constants={"batch_size": 4},
            seed=23,
            batch_packets=4,
        )
        events = stream_request(base_url, deep)
        accepted = next(events)
        assert accepted["event"] == "accepted"
        time.sleep(0.3)  # let the fleet queue fill so the cancel has
        reply = cancel_request(base_url, accepted["request"])  # work to free
        assert reply == {"request": accepted["request"], "cancelled": True}
        terminal = list(events)[-1]
        assert terminal["event"] == "cancelled", terminal
        metrics = fetch_json(base_url + "/v1/metrics")
        assert metrics["requests"]["cancelled"] == 1
        # Batches already executing when the cancel landed finish and
        # land in the store (work paid for is never wasted); only queued
        # ones are handed back, so "released" may legitimately be zero.
        print("  cancel: request %s… withdrawn mid-flight "
              "(ledger: %d cancelled request, %d queued batches released)"
              % (accepted["request"][:12],
                 metrics["requests"]["cancelled"],
                 metrics["batches"]["released"]))

        scrape_path = os.environ.get("REPRO_PROM_SCRAPE")
        if scrape_path:
            from urllib.request import urlopen

            from repro.obs import parse_exposition
            with urlopen(base_url + "/v1/metrics?format=prometheus",
                         timeout=30) as response:
                exposition = response.read().decode("utf-8")
            parsed = parse_exposition(exposition)  # strict-grammar check
            assert "repro_requests_total" in parsed
            with open(scrape_path, "w", encoding="utf-8") as handle:
                handle.write(exposition)
            print("  prometheus: %d families scraped to %s"
                  % (len(parsed), scrape_path))

        status = fetch_json(base_url + "/v1/status")
        print("  daemon served %d request(s); fleet %r"
              % (status["completed_requests"],
                 status["fleet"]["workers"]))
        assert fetch_json(base_url + "/v1/shutdown", data={}) \
            == {"status": "stopping"}
        assert daemon.wait(timeout=30) == 0
        print("  daemon shut down cleanly")
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)


def main(store_dir):
    trace_dir = os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        from repro.obs import trace as obs_trace
        obs_trace.configure(trace_dir, proc="example")
        print("tracing to %s (inspect with python -m repro.obs.trace)\n"
              % trace_dir)
    in_process_demo(os.path.join(store_dir, "inprocess"))
    daemon_demo(os.path.join(store_dir, "daemon"))
    print("\nAll service assertions held.")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(sys.argv[1])
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(tmp)
