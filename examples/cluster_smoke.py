"""Scale out across hosts: two replicas, one store, one remote worker.

The distributed smoke test (and CI ``cluster-smoke`` job).  It spawns
the full cluster topology as real processes and asserts the contract
end to end:

1. Two ``python -m repro.service`` daemons share one result store,
   each with a lease manager (``--lease-ttl-s``) and a distinct
   ``--replica-id``.
2. One ``python -m repro.service.worker`` agent attaches to replica 1
   over HTTP and pulls work from its fleet alongside the local threads.
3. Two *overlapping* characterisation requests stream concurrently,
   one against each replica.

Asserted invariants — the script exits non-zero if any fails:

* **Bytes**: each stream's rows are bit-for-bit the rows of a serial
  ``Experiment.run`` for the same request.  Leases, remote workers and
  scheduling may move where a batch runs, never what it computes.
* **Dedup**: total batches simulated across the pair equals the
  one-service *union* count — every unique ``(namespace, point,
  batch)`` simulated exactly once cluster-wide — which is strictly
  fewer than two independent runs.
* **Participation**: the remote agent completed at least one item, and
  every process (two daemons, one agent) shuts down cleanly with
  exit code 0.

Run with::

    python examples/cluster_smoke.py [row.json]

With a path argument the summary is also written there as a single
JSON row (the CI job uploads it as an artifact).
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import threading
import time

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Scenario
from repro.analysis.sweep import SweepExecutor
from repro.service import CharacterisationRequest, Service, fetch_json, \
    stream_request

# The windows overlap at 5.5, 7 and 8.5 dB (the dedup demand).  A's
# unshared high-SNR tail (10 and 10.5 dB run to the packet budget)
# guarantees replica 1 a pile of uncontended local batches, so the
# remote agent attached to it provably pulls work whichever replica
# wins the shared-point lease races.
SNRS_A = [5.5, 7.0, 8.5, 10.0, 10.5]
SNRS_B = [5.5, 7.0, 8.5, 9.5]


def build_request(snrs):
    return CharacterisationRequest(
        scenario=Scenario(decoder="bcjr", packet_bits=600),
        axes={"rate_mbps": [24], "snr_db": list(snrs)},
        stop=StopRule(rel_half_width=0.3, min_errors=20, max_packets=32),
        constants={"batch_size": 4},
        seed=23,
        batch_packets=4,
    )


def subprocess_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_replica(store_dir, replica_id):
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.service",
         "--store", store_dir, "--port", "0", "--workers", "2",
         "--lease-ttl-s", "10", "--replica-id", replica_id,
         "--heartbeat-s", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=subprocess_env())
    announce = daemon.stdout.readline()
    match = re.search(r"http://([\d.]+):(\d+)", announce)
    assert match, "no announce line from %s: %r" % (replica_id, announce)
    url = "http://%s:%s" % match.groups()
    print("  %s listening on %s" % (replica_id, url))
    return daemon, url


def reference_counts(scratch_dir):
    """Serial reference rows plus the independent and union batch counts.

    Both counts come from one-replica :class:`Service` runs — the same
    scheduler the cluster uses — so they are comparable batch for
    batch: ``independent`` is the cost of two services that share
    nothing, ``union`` the cost when one service answers both requests
    from one store — the floor any dedup scheme can reach.
    """
    serial_a = build_request(SNRS_A).experiment().run(SweepExecutor("serial"))
    serial_b = build_request(SNRS_B).experiment().run(SweepExecutor("serial"))
    independent = 0
    for index, snrs in enumerate((SNRS_A, SNRS_B)):
        with Service(os.path.join(scratch_dir, "alone-%d" % index),
                     workers=2) as service:
            service.submit(build_request(snrs)).result(timeout=300)
            independent += service.broker.total_simulated_batches
    with Service(os.path.join(scratch_dir, "union"), workers=2) as service:
        service.submit(build_request(SNRS_A)).result(timeout=300)
        service.submit(build_request(SNRS_B)).result(timeout=300)
        union = service.broker.total_simulated_batches
    return serial_a, serial_b, independent, union


def main(row_path=None):
    print("== cluster smoke: 2 replicas + 1 remote worker, shared store ==")
    with tempfile.TemporaryDirectory() as tmp:
        serial_a, serial_b, independent, union = reference_counts(tmp)

        shared = os.path.join(tmp, "shared")
        replica_1, url_1 = spawn_replica(shared, "smoke-r1")
        replica_2, url_2 = spawn_replica(shared, "smoke-r2")
        agent = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker",
             "--connect", url_1, "--name", "smoke-agent",
             "--heartbeat-s", "0.5"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            env=subprocess_env())
        try:
            deadline = time.time() + 60.0
            while "smoke-agent" not in fetch_json(
                    url_1 + "/v1/metrics")["cluster"]["remote_workers"][
                        "attached"]:
                assert time.time() < deadline, "agent never attached"
                time.sleep(0.1)
            print("  smoke-agent attached to smoke-r1")

            rows, failures = {}, []

            def client(url, snrs):
                try:
                    rows[tuple(snrs)] = [
                        event["row"]
                        for event in stream_request(url, build_request(snrs))
                        if event["event"] == "row"]
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append((snrs, exc))

            clients = [threading.Thread(target=client, args=(url_1, SNRS_A)),
                       threading.Thread(target=client, args=(url_2, SNRS_B))]
            for worker in clients:
                worker.start()
            for worker in clients:
                worker.join(timeout=300)
                assert not worker.is_alive(), "a smoke client hung"
            assert not failures, failures

            # Bytes: both streams match their serial Experiment rows.
            key = lambda row: row["snr_db"]  # noqa: E731
            assert sorted(rows[tuple(SNRS_A)], key=key) == serial_a
            assert sorted(rows[tuple(SNRS_B)], key=key) == serial_b

            metrics_1 = fetch_json(url_1 + "/v1/metrics")
            metrics_2 = fetch_json(url_2 + "/v1/metrics")
            simulated = (metrics_1["batches"]["simulated"]
                         + metrics_2["batches"]["simulated"])
            remote_completed = metrics_1["cluster"]["remote_workers"][
                "completed"]

            # Dedup: exactly the union, strictly under two loner runs.
            if simulated != union:
                for name, m in (("r1", metrics_1), ("r2", metrics_2)):
                    print("  DEBUG %s cluster=%s batches=%s"
                          % (name, m["cluster"], m["batches"]))
            assert simulated == union, (simulated, union)
            assert simulated < independent, (simulated, independent)
            # Participation: the remote agent actually pulled work.
            assert remote_completed > 0, metrics_1["cluster"]

            for url in (url_1, url_2):
                assert fetch_json(url + "/v1/shutdown", data={}) \
                    == {"status": "stopping"}
            assert replica_1.wait(timeout=30) == 0
            assert replica_2.wait(timeout=30) == 0
            # Replica 1 stopping sends the agent a ``bye`` with reason
            # "stopped"; the stock agent exits 0 on it.
            assert agent.wait(timeout=30) == 0
            print("  all three processes shut down cleanly")
        finally:
            for proc in (agent, replica_1, replica_2):
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=10)

    row = {
        "benchmark": "cluster_smoke",
        "replicas": 2,
        "remote_workers": 1,
        "remote_completed": remote_completed,
        "batches_two_independent": independent,
        "batches_union": union,
        "batches_simulated": simulated,
        "batches_saved": independent - simulated,
        "saving_ratio": round(1.0 - simulated / independent, 4),
        "per_replica_simulated": {
            "smoke-r1": metrics_1["batches"]["simulated"],
            "smoke-r2": metrics_2["batches"]["simulated"],
        },
    }
    print("  dedup: %d batches simulated for %d of demand "
          "(union %d, saved %d, remote completed %d)"
          % (simulated, independent, union, row["batches_saved"],
             remote_completed))
    print(json.dumps(row))
    if row_path:
        with open(row_path, "w", encoding="utf-8") as handle:
            json.dump(row, handle)
            handle.write("\n")
        print("  row written to %s" % row_path)
    print("\nAll cluster smoke assertions held.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
