"""Assembling and running a WiLIS co-simulation pipeline (Figure 1).

This example builds the full latency-insensitive model: packet source,
transmitter chain, software AWGN channel (software partition, reached over
the modelled host link), receiver chain with a pluggable decoder, the BER
estimation unit in its own 60 MHz clock domain and a sink.  It then swaps
the decoder -- the paper's plug-n-play workflow -- without touching any
pipeline code, and prints the co-simulation report (throughput, host-link
traffic, partition load).

Run with::

    python examples/cosimulation_pipeline.py
"""

import numpy as np

from repro.hwmodel.throughput import hardware_time_seconds
from repro.phy import rate_by_mbps
from repro.phy.transmitter import FrameGeometry
from repro.system import build_cosimulation

PACKET_BITS = 1704
NUM_PACKETS = 4


def run_with(decoder):
    rate = rate_by_mbps(36)
    model = build_cosimulation(rate, packet_bits=PACKET_BITS, decoder=decoder,
                               snr_db=14.0, seed=2)
    rng = np.random.default_rng(0)
    payloads = [rng.integers(0, 2, PACKET_BITS, dtype=np.uint8)
                for _ in range(NUM_PACKETS)]
    outputs, report = model.run_packets(payloads)

    errors = sum(int(np.sum(out["bits"] != payload))
                 for out, payload in zip(outputs, payloads))
    geometry = FrameGeometry(rate, PACKET_BITS)
    projected = report.projected_speed_bps(
        hardware_time_seconds(rate, geometry.num_symbols * NUM_PACKETS)
    )

    print("Decoder: %s" % decoder)
    print("  modules: %d (%d clock-domain crossings inserted automatically)"
          % (len(model.network.modules), len(model.network.clock_crossings())))
    print("  bit errors across %d packets: %d" % (NUM_PACKETS, errors))
    print("  Python simulation speed: %.1f kb/s" % (report.simulation_speed_bps / 1e3))
    print("  projected co-simulation speed on the paper's platform: %.1f Mb/s"
          % (projected / 1e6))
    print("  host-link traffic: %.1f kB (utilisation %.2f%%)"
          % (report.link_bytes / 1e3, 100 * report.link_utilization))
    print("  busy time: hardware partition %.3f s, software partition %.3f s"
          % (report.hardware_busy_seconds, report.software_busy_seconds))
    if decoder != "viterbi":
        estimates = [out["pber_estimate"] for out in outputs]
        print("  predicted per-packet BER: %s"
              % ", ".join("%.1e" % value for value in estimates))
    print()


def main():
    for decoder in ("viterbi", "sova", "bcjr"):
        run_with(decoder)


if __name__ == "__main__":
    main()
