"""Building WiLIS pipeline models from latency-insensitive modules.

The functions here assemble the Figure 1 system: a packet source feeding the
transmitter chain (hardware partition), the software channel (software
partition, reached through the host link), the receiver chain (hardware
partition) with the decoder of choice, the BER estimation unit in its own
60 MHz clock domain, and a sink collecting the decoded packets.

Each stage wraps the very same numpy functions used by the direct-path
:class:`~repro.analysis.link.LinkSimulator`, lifted into
:class:`~repro.core.module.FunctionModule` objects -- so the framework model
and the fast model cannot drift apart, and swapping a decoder (the paper's
plug-n-play claim) is a configuration word, not a source change.

Tokens flowing through the pipeline are whole packets (numpy arrays); the
latency-insensitive property is what allows that batching, exactly as it
allows the paper's large pipelined transfers between the FPGA and the host.
"""

import numpy as np

from repro.channel.awgn import AwgnChannel
from repro.core.clocks import BER_UNIT_CLOCK, DEFAULT_CLOCK
from repro.core.cosim import CoSimulation
from repro.core.module import FunctionModule, SinkModule, SourceModule
from repro.core.network import Network
from repro.core.platform import HostLink, Partition, VirtualPlatform
from repro.core.registry import global_registry
from repro.core.scheduler import DataflowScheduler
from repro.phy.receiver import Receiver
from repro.phy.transmitter import Transmitter
from repro.softphy.ber_estimator import BerEstimator
from repro.system.registry_setup import register_default_implementations


def build_transmitter_chain(network, phy_rate, clock=None, name_prefix="tx"):
    """Add the transmitter stages to ``network`` and return them in order.

    The stages mirror Figure 1: scrambler, convolutional encoder (with
    puncturing), interleaver (with pad-to-symbol), mapper and OFDM
    modulator.  Returns the ordered list of modules (unconnected to a
    source/sink; use :func:`repro.core.network.Network.chain`).
    """
    clock = clock if clock is not None else DEFAULT_CLOCK
    transmitter = Transmitter(phy_rate)
    stages = [
        FunctionModule("%s_scrambler" % name_prefix, transmitter.scramble, clock=clock),
        FunctionModule("%s_encoder" % name_prefix, transmitter.encode, clock=clock),
        FunctionModule(
            "%s_interleaver" % name_prefix,
            lambda coded: transmitter.interleaver.interleave(transmitter.pad(coded)),
            clock=clock,
        ),
        FunctionModule("%s_mapper" % name_prefix, transmitter.map_symbols, clock=clock),
        FunctionModule(
            "%s_ofdm_mod" % name_prefix, transmitter.modulator.modulate, clock=clock
        ),
    ]
    for stage in stages:
        network.add(stage)
    return stages


def build_receiver_chain(
    network,
    phy_rate,
    packet_bits,
    decoder="viterbi",
    clock=None,
    ber_clock=None,
    with_ber_estimator=None,
    name_prefix="rx",
):
    """Add the receiver stages to ``network`` and return them in order.

    The front end and the decoder run in the baseband clock domain; the BER
    estimation unit -- present whenever the decoder produces soft output --
    runs in the faster ``ber_clock`` domain, so the framework inserts a
    clock-domain crossing, exactly as the paper describes its 35/60 MHz
    split.

    The final module emits, per packet, a ``dict`` with the decoded bits
    and, when available, the SoftPHY hints and the predicted packet BER.
    """
    clock = clock if clock is not None else DEFAULT_CLOCK
    ber_clock = ber_clock if ber_clock is not None else BER_UNIT_CLOCK
    receiver = Receiver(phy_rate, decoder=decoder)
    if with_ber_estimator is None:
        with_ber_estimator = receiver.decoder.produces_soft_output

    def front_end(samples):
        return receiver.front_end(samples, packet_bits)

    def decode(soft):
        result = receiver.decode_batch(soft[np.newaxis, :], packet_bits)
        llr = None if result.llr is None else result.llr[0]
        return {"bits": result.bits[0], "llr": llr}

    stages = [
        FunctionModule("%s_front_end" % name_prefix, front_end, clock=clock),
        FunctionModule("%s_decoder" % name_prefix, decode, clock=clock),
    ]
    if with_ber_estimator:
        estimator = BerEstimator(receiver.decoder.name)

        def estimate(decoded):
            hints = None if decoded["llr"] is None else np.abs(decoded["llr"])
            pber = (
                None
                if hints is None
                else float(estimator.packet_ber(hints, phy_rate.modulation))
            )
            return {
                "bits": decoded["bits"],
                "hints": hints,
                "pber_estimate": pber,
            }

        stages.append(
            FunctionModule("%s_ber_estimator" % name_prefix, estimate, clock=ber_clock)
        )
    for stage in stages:
        network.add(stage)
    return stages


class CosimModel:
    """A fully assembled Figure 1 co-simulation model.

    Attributes
    ----------
    network, platform:
        The module graph and the hardware/software partition assignment.
    source, sink:
        Packet source and decoded-packet sink.
    phy_rate, packet_bits:
        Operating point of the pipeline.
    """

    def __init__(self, network, platform, source, sink, phy_rate, packet_bits, lockstep=False):
        self.network = network
        self.platform = platform
        self.source = source
        self.sink = sink
        self.phy_rate = phy_rate
        self.packet_bits = packet_bits
        self.lockstep = lockstep

    def run_packets(self, payloads, scheduler=None):
        """Push payload bit arrays through the pipeline and collect results.

        Returns ``(outputs, report)`` where ``outputs`` is the list of sink
        tokens (one per packet, in order) and ``report`` is the
        :class:`~repro.core.cosim.CoSimulationReport` for the run.
        """
        payloads = [np.asarray(p, dtype=np.uint8) for p in payloads]
        for payload in payloads:
            if payload.size != self.packet_bits:
                raise ValueError(
                    "every payload must have %d bits (got %d)"
                    % (self.packet_bits, payload.size)
                )
        self.source.feed(payloads)
        if scheduler is None:
            scheduler = DataflowScheduler(self.network, lockstep=self.lockstep)
        cosim = CoSimulation(self.network, self.platform, scheduler)
        report = cosim.run(payload_bits=sum(p.size for p in payloads))
        return self.sink.drain(), report


def build_cosimulation(
    phy_rate,
    packet_bits=1704,
    decoder="viterbi",
    channel="awgn",
    snr_db=10.0,
    seed=0,
    registry=None,
    host_link=None,
    lockstep=False,
):
    """Assemble the full transmitter / channel / receiver co-simulation.

    Parameters
    ----------
    phy_rate:
        Operating :class:`~repro.phy.params.PhyRate`.
    packet_bits:
        Payload bits per packet token.
    decoder:
        Decoder implementation name (plug-n-play role ``decoder``).
    channel:
        Channel implementation name (plug-n-play role ``channel``).
    snr_db, seed:
        Channel configuration.
    registry:
        Optional registry to resolve implementations from (defaults to the
        global one, with the built-ins registered).
    host_link:
        Optional :class:`~repro.core.platform.HostLink` model; the paper's
        700 MB/s FSB link by default.
    lockstep:
        Use the lock-step (SCE-MI-like) scheduler instead of the decoupled
        WiLIS one -- only meaningful for the scheduling ablation.

    Returns
    -------
    CosimModel
    """
    registry = register_default_implementations(registry or global_registry)
    channel_model = registry.create("channel", channel, snr_db=snr_db, seed=seed)

    network = Network("wilis-%s-%s" % (phy_rate.name.replace(" ", "-"), decoder))
    source = network.add(SourceModule("packet_source"))
    tx_stages = build_transmitter_chain(network, phy_rate)

    if isinstance(channel_model, AwgnChannel):
        channel_function = channel_model
    else:
        def channel_function(samples, _channel=channel_model):
            received, gain = _channel.apply(samples)
            # Ideal equalisation with the known flat-fading gain, as in the
            # paper's model (no channel estimation is simulated).
            return received / gain

    channel_module = network.add(
        FunctionModule("channel", channel_function, clock=DEFAULT_CLOCK)
    )
    rx_stages = build_receiver_chain(
        network, phy_rate, packet_bits, decoder=decoder
    )
    sink = network.add(SinkModule("packet_sink"))

    network.chain([source] + tx_stages + [channel_module] + rx_stages + [sink])
    network.validate()

    platform = VirtualPlatform(
        name="acp-virtex5",
        fpga_clock_mhz=DEFAULT_CLOCK.frequency_mhz,
        host_link=host_link if host_link is not None else HostLink(),
    )
    platform.assign_all([source, sink], Partition.SOFTWARE)
    platform.assign_all(tx_stages + rx_stages, Partition.HARDWARE)
    platform.assign(channel_module, Partition.SOFTWARE)

    return CosimModel(
        network, platform, source, sink, phy_rate, packet_bits, lockstep=lockstep
    )
