"""Plug-n-play registrations: the AWB-style implementation catalogue.

WiLIS offers multiple implementations of each pipeline role and lets the
user mix and match them without editing source.  This module registers the
alternatives provided by this repository with a
:class:`~repro.core.registry.ModuleRegistry`:

========== =====================================================
role       implementations
========== =====================================================
decoder    ``viterbi``, ``sova``, ``bcjr``
channel    ``awgn``, ``rayleigh``
demapper   ``hardware`` (unscaled), ``ideal`` (SNR-scaled)
estimator  ``lookup`` (the two-level table), ``exact`` (equation 4/5)
========== =====================================================

Swapping a decoder in a pipeline is then a one-word configuration change --
``{"decoder": "bcjr"}`` versus ``{"decoder": "sova"}`` -- which is the
workflow the paper's case study relies on.
"""

from repro.channel.awgn import AwgnChannel
from repro.channel.fading import RayleighFadingChannel
from repro.core.registry import global_registry
from repro.phy.bcjr import BcjrDecoder
from repro.phy.demapper import Demapper
from repro.phy.sova import SovaDecoder
from repro.phy.viterbi import ViterbiDecoder
from repro.softphy.ber_estimator import BerEstimator
from repro.softphy.scaling import ScalingFactors
from repro.softphy.ber_estimator import llr_to_ber


def _make_exact_estimator(decoder="bcjr", **_):
    """Factory for an 'estimator' that applies equations 4 and 5 directly."""

    class ExactEstimator:
        """Reference estimator computing the exponential instead of a lookup."""

        decoder_name = decoder

        def per_bit_ber(self, hints, modulation, snr_db):
            scaling = ScalingFactors(snr_db, modulation, decoder)
            return llr_to_ber(scaling.true_llr(abs(hints)))

    return ExactEstimator()


def register_default_implementations(registry=None):
    """Register every built-in implementation; returns the registry used.

    Registration is idempotent, so calling this more than once (for example
    from several examples) is harmless.
    """
    registry = registry if registry is not None else global_registry

    registry.add("decoder", "viterbi", ViterbiDecoder)
    registry.add("decoder", "sova", SovaDecoder)
    registry.add("decoder", "bcjr", BcjrDecoder)

    registry.add("channel", "awgn", lambda snr_db=10.0, seed=None, **_: AwgnChannel(snr_db, seed=seed))
    registry.add(
        "channel",
        "rayleigh",
        lambda snr_db=10.0, doppler_hz=20.0, seed=None, **_: RayleighFadingChannel(
            snr_db, doppler_hz=doppler_hz, seed=seed
        ),
    )

    registry.add(
        "demapper",
        "hardware",
        lambda modulation, **_: Demapper(modulation, scaled=False),
    )
    registry.add(
        "demapper",
        "ideal",
        lambda modulation, snr_db=10.0, **_: Demapper(modulation, snr_db=snr_db, scaled=True),
    )

    registry.add(
        "estimator",
        "lookup",
        lambda decoder="bcjr", **kwargs: BerEstimator(decoder, **kwargs),
    )
    registry.add("estimator", "exact", _make_exact_estimator)

    return registry
