"""System assembly: WiLIS models built from the framework and the baseband.

This subpackage is where the pieces come together the way Figure 1 of the
paper shows them: the 802.11a/g transmitter and receiver blocks wrapped as
latency-insensitive modules, the software channel in the software partition,
the BER estimation unit in its own (faster) clock domain, and the whole
thing driven by the co-simulation harness.

* :mod:`repro.system.registry_setup` registers the alternative
  implementations (decoders, channels, demappers) with the plug-n-play
  registry so pipelines can be assembled from a configuration mapping.
* :mod:`repro.system.pipelines` builds the transmitter, channel and receiver
  module chains and the full co-simulation network.
"""

from repro.system.pipelines import (
    CosimModel,
    build_cosimulation,
    build_receiver_chain,
    build_transmitter_chain,
)
from repro.system.registry_setup import register_default_implementations

__all__ = [
    "CosimModel",
    "build_cosimulation",
    "build_receiver_chain",
    "build_transmitter_chain",
    "register_default_implementations",
]
