"""The characterisation broker: store-deduped, priority-aware scheduling.

The broker is the service's brain.  Each submitted
:class:`~repro.service.requests.CharacterisationRequest` becomes a
:class:`RequestTicket` wrapping a live
:class:`~repro.analysis.adaptive.AdaptiveTrajectory`; the broker advances
every ticket round by round, answering each needed batch from the
cheapest source that has it:

1. **request coalescing** — an identical in-flight ask
   (:meth:`~repro.service.requests.CharacterisationRequest.request_key`)
   returns the existing ticket, no new work at all;
2. **the result store** — batches already on disk are consumed
   immediately, without touching the fleet (a fully warm request
   completes synchronously inside :meth:`CharacterisationBroker.submit`,
   and a partial hit resumes at exactly the missing batch indices);
3. **in-flight work merging** — a batch another request is already
   simulating is *subscribed to*, not re-enqueued: overlapping requests'
   miss-sets merge at ``(namespace, point, batch index)`` granularity;
4. **the worker fleet** — only genuinely novel batches are enqueued, one
   work item per batch, ordered by ``(priority, deadline, arrival)`` so a
   huge low-priority sweep cannot head-of-line-block a small urgent one.

Rows stream back through the ticket the moment their point stops;
because batch contents are pure functions of ``(point, batch index)``,
every ticket's final rows are bit-for-bit what a serial
``request.experiment(store).run()`` would have produced — the broker can
only ever change *where* a batch's bytes come from, never the bytes.

Failures follow capture semantics: a batch whose runner raises stops its
point with reason ``"error"`` and the request keeps going — a long-lived
service must not crash on one bad operating point.
"""

import logging
import math
import queue
import threading
import time

from repro.analysis.adaptive import batch_store_key, run_link_ber_batch
from repro.analysis.fused import FusedBatchRunner, plan_fused_round

__all__ = ["ServiceError", "RequestTicket", "CharacterisationBroker"]

_logger = logging.getLogger(__name__)


class ServiceError(RuntimeError):
    """A request failed at the service layer (not a per-point error row)."""


class RequestTicket:
    """Live handle on one submitted request.

    Consumers may :meth:`stream` events (every subscriber sees the full
    event log, replayed then live), iterate :meth:`rows` as points
    finish, block on :meth:`result` for the final grid-ordered rows, or
    snapshot :meth:`progress` at any time.  All methods are thread-safe;
    any number of clients may consume one ticket — that is what request
    coalescing hands out.
    """

    def __init__(self, request, key, digest, trajectory, runner, seq, lock):
        self.request = request
        self.key = key
        self.digest = digest
        self.trajectory = trajectory
        self.runner = runner
        self.seq = seq
        self.submitted_at = time.time()
        deadline = request.deadline_s
        #: Absolute deadline used as a dispatch tie-break within a
        #: priority lane; never enforced (the service does not kill work).
        self.deadline_at = (math.inf if deadline is None
                            else self.submitted_at + float(deadline))
        self.coalesced = 0
        self.cached_batches = 0
        self.simulated_batches = 0
        self.shared_batches = 0
        self.first_row_at = None
        self.finished_at = None
        self.failure = None
        self.final_rows = None
        self.done = threading.Event()
        self._lock = lock          # the broker's lock; guards all state
        self._events = []
        self._subscribers = []
        self._emitted = set()      # point indices already streamed
        self._per_point = {state.point.index: {"cached": 0, "simulated": 0,
                                               "shared": 0}
                           for state in trajectory.states}

    # ------------------------------------------------------------------ #
    # Broker-side bookkeeping (called with the broker lock held)
    # ------------------------------------------------------------------ #
    def _note(self, batch, source):
        self._per_point[batch.point.index][source] += 1
        setattr(self, source + "_batches",
                getattr(self, source + "_batches") + 1)

    def _emit(self, event):
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber.put(event)

    def _emit_new_rows(self):
        """Stream a row for every point that stopped since the last call."""
        for state in self.trajectory.states:
            index = state.point.index
            if state.stop_reason is None or index in self._emitted:
                continue
            self._emitted.add(index)
            if self.first_row_at is None:
                self.first_row_at = time.time()
            self._emit({
                "event": "row",
                "request": self.key,
                "point": index,
                "row": state.row(self.trajectory.stop),
                "progress": self._progress_locked(points=False),
            })

    def _finish(self):
        self.finished_at = time.time()
        self.final_rows = self.trajectory.rows()
        self._emit({"event": "done", "request": self.key,
                    "progress": self._progress_locked()})
        self._close_subscribers()

    def _fail(self, message):
        self.failure = str(message)
        self.finished_at = time.time()
        self._emit({"event": "failed", "request": self.key,
                    "error": self.failure})
        self._close_subscribers()

    def _close_subscribers(self):
        for subscriber in self._subscribers:
            subscriber.put(None)
        self._subscribers = []
        self.done.set()

    # ------------------------------------------------------------------ #
    # Consumer API
    # ------------------------------------------------------------------ #
    def stream(self):
        """Yield this ticket's events: the backlog, then live, until done.

        Events are mappings with an ``"event"`` key — ``"row"`` (one
        point finished; carries the row and a progress snapshot),
        ``"done"`` (final progress) or ``"failed"``.
        """
        feed = queue.Queue()
        with self._lock:
            backlog = list(self._events)
            live = not self.done.is_set()
            if live:
                self._subscribers.append(feed)
        for event in backlog:
            yield event
        if not live:
            return
        while True:
            event = feed.get()
            if event is None:
                return
            yield event

    def rows(self):
        """Yield per-point rows in completion order, as they stream in."""
        for event in self.stream():
            if event["event"] == "row":
                yield event["row"]
            elif event["event"] == "failed":
                raise ServiceError(event["error"])

    def result(self, timeout=None):
        """Block until the request finishes; rows in grid order."""
        if not self.done.wait(timeout):
            raise TimeoutError(
                "request %s... still running after %.1f s"
                % (self.key[:12], timeout))
        with self._lock:
            if self.failure is not None:
                raise ServiceError(self.failure)
            return list(self.final_rows)

    def progress(self):
        """A point-in-time snapshot of the request's progress."""
        with self._lock:
            return self._progress_locked()

    def _progress_locked(self, points=True):
        states = self.trajectory.states
        reasons = {}
        for state in states:
            if state.stop_reason is not None:
                reasons[state.stop_reason] = reasons.get(state.stop_reason,
                                                         0) + 1
        out = {
            "request": self.key,
            "namespace": self.digest,
            "priority": self.request.priority,
            "points_total": len(states),
            "points_done": sum(1 for s in states if s.stop_reason is not None),
            "packets_spent": sum(s.packets for s in states),
            "batches": sum(s.batches for s in states),
            "batches_cached": self.cached_batches,
            "batches_simulated": self.simulated_batches,
            "batches_shared": self.shared_batches,
            "budget_left": self.trajectory.budget_left,
            "coalesced_submissions": self.coalesced,
            "stop_reasons": reasons,
            "done": self.done.is_set(),
            "failed": self.failure,
            "time_to_first_row_s": (
                None if self.first_row_at is None
                else self.first_row_at - self.submitted_at),
            "elapsed_s": ((self.finished_at or time.time())
                          - self.submitted_at),
        }
        if points:
            out["points"] = [
                dict(state.point.coordinates,
                     stop_reason=state.stop_reason,
                     packets=state.packets,
                     batches=state.batches,
                     **self._per_point[state.point.index])
                for state in states
            ]
        return out

    def __repr__(self):
        return ("RequestTicket(%s..., done=%r, cached=%d, simulated=%d, "
                "shared=%d)" % (self.key[:12], self.done.is_set(),
                                self.cached_batches, self.simulated_batches,
                                self.shared_batches))


class CharacterisationBroker:
    """Resolve requests against the store; schedule only the misses.

    Parameters
    ----------
    store:
        The :class:`~repro.analysis.store.ResultStore` curves are served
        from and filed into.  Views are shared per namespace, so a batch
        one request simulates is visible to every other the moment it
        lands.
    fleet:
        A started :class:`~repro.service.fleet.WorkerFleet`.  The broker
        only ever enqueues batch-granular items; someone (the
        :class:`~repro.service.api.Service` pump thread, or a test
        driving things by hand) must call :meth:`pump` to fold completed
        items back in.
    runner:
        Optional chunk-runner override applied to every request (the
        default is the link runner,
        :func:`repro.analysis.adaptive.run_link_ber_batch`).  Part of
        each request's store namespace, exactly as for ``Experiment``.
    """

    def __init__(self, store, fleet, runner=None):
        self.store = store
        self.fleet = fleet
        self.runner = runner
        self._lock = threading.RLock()
        self._tickets = {}        # request_key -> in-flight ticket
        self._views = {}          # namespace digest -> shared StoreView
        self._inflight_work = {}  # work key -> [(ticket, batch), ...]
        self._group_members = {}  # group key -> [(work key, batch), ...]
        self._group_of = {}       # member work key -> its group key
        self._group_seq = 0
        self._ticket_seq = 0
        self._item_seq = 0           # dispatch-order tie-break generator
        self.simulated_batches = 0   # actual fleet submissions
        self.completed_requests = 0
        self.failed_requests = 0

    # ------------------------------------------------------------------ #
    def submit(self, request):
        """Register one request; returns its (possibly shared) ticket.

        An identical in-flight request coalesces onto the existing
        ticket.  Batches already in the store are consumed before this
        method returns — a fully warm request comes back already done,
        which is what makes time-to-first-row for cached curves
        effectively zero.
        """
        with self._lock:
            key = request.request_key()
            ticket = self._tickets.get(key)
            if ticket is not None:
                ticket.coalesced += 1
                return ticket
            experiment = request.experiment(store=self.store,
                                            runner=self.runner)
            digest = experiment.store_digest()
            view = self._views.get(digest)
            if view is None:
                view = experiment.store_view()
                self._views[digest] = view
            self._ticket_seq += 1
            ticket = RequestTicket(request, key, digest,
                                   experiment.trajectory(),
                                   experiment.resolved_runner(),
                                   self._ticket_seq, self._lock)
            self._tickets[key] = ticket
            try:
                self._advance(ticket)
            except Exception as exc:
                # Never leave a zombie behind: a fault during the
                # synchronous warm replay (corrupt store record, fleet
                # stopping under us) must not park a forever-pending
                # ticket that all future identical requests coalesce onto.
                self._tickets.pop(key, None)
                self.failed_requests += 1
                ticket._fail("submit failed: %s: %s"
                             % (type(exc).__name__, exc))
                raise
            return ticket

    def pump(self, timeout=0.0):
        """Fold completed fleet items back in; count of items processed."""
        results = self.fleet.poll(timeout)
        with self._lock:
            for work_key, result in results:
                self._on_result(work_key, result)
        return len(results)

    def shutdown(self, message="service stopped"):
        """Fail every in-flight ticket (used on service shutdown)."""
        with self._lock:
            for ticket in list(self._tickets.values()):
                ticket._fail(message)
                self.failed_requests += 1
            self._tickets = {}
            self._inflight_work = {}
            self._group_members = {}
            self._group_of = {}

    # ------------------------------------------------------------------ #
    def _advance(self, ticket):
        """Drive a ticket forward until it blocks on fleet work or ends."""
        trajectory = ticket.trajectory
        view = self._views[ticket.digest]
        while not trajectory.round_in_flight:
            if trajectory.finished:
                ticket._emit_new_rows()
                ticket._finish()
                view.flush_stats()
                self._tickets.pop(ticket.key, None)
                self.completed_requests += 1
                return
            batches = trajectory.start_round()
            # start_round may stop points on its own (budget exhaustion).
            ticket._emit_new_rows()
            if not batches:
                continue
            pending = []
            for batch in batches:
                cached = view.get(batch_store_key(batch), batch.index,
                                  batch.num_packets)
                if cached is None:
                    pending.append(batch)
                    continue
                ticket._note(batch, "cached")
                trajectory.consume(batch, cached)
                ticket._emit_new_rows()
            self._dispatch_pending(ticket, pending)
            if pending:
                return

    def _dispatch_pending(self, ticket, pending):
        """Route a round's store-miss batches to the fleet.

        In-flight duplicates are subscribed to first; the genuinely fresh
        remainder is fused by :func:`~repro.analysis.fused.plan_fused_round`
        (when the ticket runs the built-in link runner) so a round's
        same-shape batches cost one tensor pass instead of one dispatch
        each.  Fusion never changes what a batch's result *is* — each
        member still lands in the store and in every subscriber under its
        own work key — only how many fleet items carry it.
        """
        fresh = []
        for batch in pending:
            work_key = (ticket.digest, batch_store_key(batch), batch.index,
                        batch.num_packets)
            subscribers = self._inflight_work.get(work_key)
            if subscribers is not None:
                # Another request is already simulating this exact batch:
                # subscribe to its result instead of re-enqueueing — and,
                # if we are the more urgent requester, pull the queued
                # item (the fused group's, if the batch rides one)
                # forward so the shared batch does not keep the lazier
                # request's queue position.
                subscribers.append((ticket, batch))
                ticket._note(batch, "shared")
                self._item_seq += 1
                self.fleet.promote(
                    self._group_of.get(work_key, work_key),
                    (ticket.request.priority, ticket.deadline_at,
                     ticket.seq, self._item_seq))
                continue
            fresh.append((work_key, batch))
        if not fresh:
            return
        groups, singles = [], [batch for _, batch in fresh]
        if ticket.runner is run_link_ber_batch:
            groups, singles = plan_fused_round(singles)
        key_of = {(batch.point.index, batch.index): work_key
                  for work_key, batch in fresh}
        for batch in singles:
            work_key = key_of[(batch.point.index, batch.index)]
            self._inflight_work[work_key] = [(ticket, batch)]
            ticket._note(batch, "simulated")
            self._item_seq += 1
            self.simulated_batches += 1
            self.fleet.submit(
                work_key, ticket.runner, batch,
                priority=(ticket.request.priority, ticket.deadline_at,
                          ticket.seq, self._item_seq),
            )
        for group in groups:
            self._group_seq += 1
            group_key = ("fused", ticket.digest, self._group_seq)
            members = []
            for batch in group.batches:
                work_key = key_of[(batch.point.index, batch.index)]
                self._inflight_work[work_key] = [(ticket, batch)]
                self._group_of[work_key] = group_key
                ticket._note(batch, "simulated")
                members.append((work_key, batch))
            self._group_members[group_key] = members
            self._item_seq += 1
            self.simulated_batches += len(members)
            self.fleet.submit(
                group_key, FusedBatchRunner(ticket.runner), group,
                priority=(ticket.request.priority, ticket.deadline_at,
                          ticket.seq, self._item_seq),
            )

    def _on_result(self, work_key, result):
        members = self._group_members.pop(work_key, None)
        if members is not None:
            member_results = (result.get("results")
                              if isinstance(result, dict) else None)
            if member_results is None or len(member_results) != len(members):
                # The whole fused item failed before the runner's
                # per-member fallback could slot errors (e.g. the worker
                # died past its retries): the error applies to every
                # member.
                member_results = [result] * len(members)
            for (member_key, _batch), member_result in zip(members,
                                                           member_results):
                self._group_of.pop(member_key, None)
                self._deliver(member_key, member_result)
            return
        self._deliver(work_key, result)

    def _deliver(self, work_key, result):
        subscribers = self._inflight_work.pop(work_key, None)
        if subscribers is None:
            return  # stale (e.g. the fleet flushed after a shutdown)
        digest, point_key, batch_index, num_packets = work_key
        if not ("error" in result and "errors" not in result):
            # Persist before delivery: a batch is simulated once, ever.
            # Best-effort — an unstorable result (a custom runner leaking
            # tuple extras, a full disk) must not take the pump thread
            # down with it; the batch is simply served uncached.
            try:
                self._views[digest].put(point_key, batch_index, num_packets,
                                        result)
            except Exception:
                _logger.warning(
                    "could not persist batch %r of namespace %s; serving it "
                    "uncached", (point_key, batch_index), digest[:16],
                    exc_info=True)
        for ticket, batch in subscribers:
            if ticket.done.is_set():
                continue
            # A fault folding one ticket's result in (e.g. a malformed
            # runner result dict) fails that ticket alone — the service
            # and its other requests keep running.
            try:
                ticket.trajectory.consume(batch, result)
                ticket._emit_new_rows()
                if not ticket.trajectory.round_in_flight:
                    self._advance(ticket)
            except Exception as exc:
                _logger.warning("request %s failed processing batch %s",
                                ticket.key[:16], batch.label(), exc_info=True)
                ticket._fail("internal error processing %s: %s"
                             % (batch.label(), exc))
                self._tickets.pop(ticket.key, None)
                self.failed_requests += 1

    # ------------------------------------------------------------------ #
    @property
    def total_simulated_batches(self):
        """Work items ever enqueued to the fleet — the dedup denominator."""
        return self.simulated_batches

    def requests(self):
        """Progress snapshots of every in-flight request."""
        with self._lock:
            return [ticket.progress() for ticket in self._tickets.values()]

    def status(self):
        with self._lock:
            return {
                "in_flight_requests": len(self._tickets),
                "completed_requests": self.completed_requests,
                "failed_requests": self.failed_requests,
                "simulated_batches": self.simulated_batches,
                "inflight_batches": len(self._inflight_work),
                "namespaces": sorted(self._views),
                "fleet": self.fleet.stats(),
            }

    def __repr__(self):
        return ("CharacterisationBroker(in_flight=%d, completed=%d, "
                "simulated_batches=%d)"
                % (len(self._tickets), self.completed_requests,
                   self.simulated_batches))
