"""The characterisation broker: store-deduped, priority-aware scheduling.

The broker is the service's brain.  Each submitted
:class:`~repro.service.requests.CharacterisationRequest` becomes a
:class:`RequestTicket` wrapping a live
:class:`~repro.analysis.adaptive.AdaptiveTrajectory`; the broker advances
every ticket round by round, answering each needed batch from the
cheapest source that has it:

1. **request coalescing** — an identical in-flight ask
   (:meth:`~repro.service.requests.CharacterisationRequest.request_key`)
   returns the existing ticket, no new work at all;
2. **the result store** — batches already on disk are consumed
   immediately, without touching the fleet (a fully warm request
   completes synchronously inside :meth:`CharacterisationBroker.submit`,
   and a partial hit resumes at exactly the missing batch indices);
3. **in-flight work merging** — a batch another request is already
   simulating is *subscribed to*, not re-enqueued: overlapping requests'
   miss-sets merge at ``(namespace, point, batch index)`` granularity;
4. **another replica's in-flight work** — with a
   :class:`~repro.service.cluster.LeaseManager` configured, a batch
   whose lease another replica holds is *parked*: this broker polls the
   shared store for the winner's appended result instead of simulating
   it too, and reclaims the lease (then simulates locally) if the
   winner crashes and its lease goes stale;
5. **the worker fleet** — only genuinely novel batches are enqueued, one
   work item per batch, ordered by ``(priority, deadline, arrival)`` so a
   huge low-priority sweep cannot head-of-line-block a small urgent one.

Rows stream back through the ticket the moment their point stops;
because batch contents are pure functions of ``(point, batch index)``,
every ticket's final rows are bit-for-bit what a serial
``request.experiment(store).run()`` would have produced — the broker can
only ever change *where* a batch's bytes come from, never the bytes.

Failures follow capture semantics: a batch whose runner raises stops its
point with reason ``"error"`` and the request keeps going — a long-lived
service must not crash on one bad operating point.

Admission control
-----------------
The broker accepts work *boundedly*.  ``max_inflight_batches`` and
``max_requests`` cap what may be in flight at once; a submit past either
cap raises :class:`ServiceSaturated` carrying a computed
``retry_after_s`` (pending batches over fleet width, scaled by an EWMA
of recent batch wall-clock), which the HTTP front door maps to ``429``
with a ``Retry-After`` header.  An optional :class:`ClientQuota` adds a
per-``client_id`` token-bucket packet quota charged at admission with
the request's worst-case packet cost.  Coalesced submits are always free
— they add no work.

Cancellation and drain
----------------------
Interest in a ticket is counted: the original submit and every coalesced
one hold one unit each, and :meth:`CharacterisationBroker.cancel` (or
:meth:`RequestTicket.cancel`) releases one.  When the last unit goes,
the ticket is *released*: it is unsubscribed from every in-flight batch
— shared batches keep running untouched for their surviving subscribers,
so their rows stay bit-for-bit — and queued batches nobody else wants
are withdrawn from the fleet before a worker starts them (the
``released_batches`` ledger).  A batch already executing runs to
completion and lands in the store; only its delivery to the cancelled
ticket is skipped.  :meth:`close_admission` plus :meth:`drain` implement
graceful shutdown: stop admitting, finish what is in flight, then stop.
"""

import logging
import math
import queue
import threading
import time

from repro.analysis.adaptive import batch_store_key, run_link_ber_batch
from repro.analysis.fused import FusedBatchRunner, plan_fused_round
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["ServiceError", "ServiceSaturated", "ClientQuota", "RequestTicket",
           "CharacterisationBroker"]

_logger = logging.getLogger(__name__)


class ServiceError(RuntimeError):
    """A request failed at the service layer (not a per-point error row)."""


class ServiceSaturated(ServiceError):
    """Admission was refused for lack of capacity; retry after a backoff.

    ``retry_after_s`` is the broker's estimate of when capacity frees —
    the HTTP layer rounds it up into the ``429`` response's
    ``Retry-After`` header.
    """

    def __init__(self, message, retry_after_s=1.0):
        super().__init__(message)
        self.retry_after_s = max(0.0, float(retry_after_s))


class ClientQuota:
    """A per-client token-bucket packet quota, enforced at admission.

    Each ``client_id`` gets its own bucket holding up to
    ``burst_packets`` tokens, refilled continuously at
    ``packets_per_s``.  Admission charges a request's worst-case packet
    cost (:meth:`~repro.service.requests.CharacterisationRequest.packet_cost`);
    a request the bucket cannot currently afford is rejected with
    :class:`ServiceSaturated` naming the wait, and one it can *never*
    afford (cost above the burst) with a plain :class:`ServiceError`.
    """

    def __init__(self, packets_per_s, burst_packets):
        if not packets_per_s > 0:
            raise ValueError("packets_per_s must be positive")
        if not burst_packets >= 1:
            raise ValueError("burst_packets must be at least 1")
        self.packets_per_s = float(packets_per_s)
        self.burst_packets = float(burst_packets)

    def bucket(self):
        return _TokenBucket(self.packets_per_s, self.burst_packets)

    def __repr__(self):
        return "ClientQuota(packets_per_s=%g, burst_packets=%g)" % (
            self.packets_per_s, self.burst_packets)


class _TokenBucket:
    """One client's token bucket (guarded by the broker lock)."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate, burst):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = None

    def level(self, now):
        """Tokens available at ``now`` (refills as a side effect)."""
        if self.updated is not None and now > self.updated:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        return self.tokens

    def try_take(self, amount, now=None):
        """Charge ``amount`` tokens: 0.0 on success, seconds to wait on
        a temporary shortfall, ``None`` when ``amount`` exceeds the
        burst (never affordable)."""
        now = time.monotonic() if now is None else now
        available = self.level(now)
        if amount > self.burst:
            return None
        if amount <= available:
            self.tokens = available - amount
            return 0.0
        return (amount - available) / self.rate


class RequestTicket:
    """Live handle on one submitted request.

    Consumers may :meth:`stream` events (every subscriber sees the full
    event log, replayed then live), iterate :meth:`rows` as points
    finish, block on :meth:`result` for the final grid-ordered rows, or
    snapshot :meth:`progress` at any time.  All methods are thread-safe;
    any number of clients may consume one ticket — that is what request
    coalescing hands out.
    """

    def __init__(self, request, key, digest, trajectory, runner, seq, lock):
        self.request = request
        self.key = key
        self.digest = digest
        self.trajectory = trajectory
        self.runner = runner
        self.seq = seq
        self.submitted_at = time.time()
        deadline = request.deadline_s
        #: Absolute deadline used as a dispatch tie-break within a
        #: priority lane; never enforced (the service does not kill work).
        self.deadline_at = (math.inf if deadline is None
                            else self.submitted_at + float(deadline))
        self.coalesced = 0
        #: Live consumers of this ticket: the original submit plus every
        #: coalesced one holds one unit; :meth:`cancel` releases one, and
        #: the ticket is only actually released when the count hits zero
        #: — one HTTP client hanging up must not kill its twin's stream.
        self.interest = 1
        self.cancelled = False
        self.cached_batches = 0
        self.simulated_batches = 0
        self.shared_batches = 0
        self.leased_batches = 0
        self.first_row_at = None
        self.finished_at = None
        self.failure = None
        self.final_rows = None
        self.done = threading.Event()
        #: Root obs span of the request's trace (the null span unless the
        #: broker runs with tracing enabled); ended on finish/fail/cancel.
        self.span = obs_trace.NULL_SPAN
        self._broker = None        # set by the broker right after creation
        self._lock = lock          # the broker's lock; guards all state
        self._events = []
        self._subscribers = []
        self._emitted = set()      # point indices already streamed
        self._per_point = {state.point.index: {"cached": 0, "simulated": 0,
                                               "shared": 0, "leased": 0}
                           for state in trajectory.states}

    # ------------------------------------------------------------------ #
    # Broker-side bookkeeping (called with the broker lock held)
    # ------------------------------------------------------------------ #
    def _note(self, batch, source):
        self._per_point[batch.point.index][source] += 1
        setattr(self, source + "_batches",
                getattr(self, source + "_batches") + 1)

    def _emit(self, event):
        self._events.append(event)
        for subscriber in self._subscribers:
            subscriber.put(event)

    def _emit_new_rows(self):
        """Stream a row for every point that stopped since the last call."""
        for state in self.trajectory.states:
            index = state.point.index
            if state.stop_reason is None or index in self._emitted:
                continue
            self._emitted.add(index)
            if self.first_row_at is None:
                self.first_row_at = time.time()
            self._emit({
                "event": "row",
                "request": self.key,
                "point": index,
                "row": state.row(self.trajectory.stop),
                "progress": self._progress_locked(points=False),
            })

    def _finish(self):
        self.finished_at = time.time()
        self.final_rows = self.trajectory.rows()
        self._emit({"event": "done", "request": self.key,
                    "progress": self._progress_locked()})
        self._close_subscribers()
        self.span.end(outcome="done")

    def _fail(self, message):
        self.failure = str(message)
        self.finished_at = time.time()
        self._emit({"event": "failed", "request": self.key,
                    "error": self.failure})
        self._close_subscribers()
        self.span.end(outcome="failed")

    def _cancel(self, reason):
        self.cancelled = True
        self.failure = str(reason)
        self.finished_at = time.time()
        self._emit({"event": "cancelled", "request": self.key,
                    "reason": self.failure,
                    "progress": self._progress_locked(points=False)})
        self._close_subscribers()
        self.span.end(outcome="cancelled")

    def _close_subscribers(self):
        for subscriber in self._subscribers:
            subscriber.put(None)
        self._subscribers = []
        self.done.set()

    # ------------------------------------------------------------------ #
    # Consumer API
    # ------------------------------------------------------------------ #
    def stream(self, heartbeat_s=None):
        """Yield this ticket's events: the backlog, then live, until done.

        Events are mappings with an ``"event"`` key — ``"row"`` (one
        point finished; carries the row and a progress snapshot),
        ``"done"`` (final progress), ``"failed"`` or ``"cancelled"``.
        With ``heartbeat_s`` set, a synthetic ``"progress"`` event is
        yielded whenever that many seconds pass without a real one — the
        HTTP front door streams these as keep-alives, which is also what
        bounds how long a client hang-up can go undetected while a slow
        point simulates.
        """
        feed = queue.Queue()
        with self._lock:
            backlog = list(self._events)
            live = not self.done.is_set()
            if live:
                self._subscribers.append(feed)
        for event in backlog:
            yield event
        if not live:
            return
        while True:
            try:
                event = feed.get(timeout=heartbeat_s)
            except queue.Empty:
                yield {"event": "progress", "request": self.key,
                       "progress": self.progress()}
                continue
            if event is None:
                return
            yield event

    def rows(self):
        """Yield per-point rows in completion order, as they stream in."""
        for event in self.stream():
            if event["event"] == "row":
                yield event["row"]
            elif event["event"] in ("failed", "cancelled"):
                raise ServiceError(event.get("error") or event.get("reason"))

    def cancel(self, reason="cancelled by client"):
        """Release this consumer's interest; see the broker's ``cancel``.

        Returns ``True`` while the ticket was still in flight (whether
        this was the last interested consumer or not); ``False`` once it
        had already finished.
        """
        if self._broker is None:
            return False
        return self._broker.cancel(self.key, reason=reason)

    def result(self, timeout=None):
        """Block until the request finishes; rows in grid order."""
        if not self.done.wait(timeout):
            raise TimeoutError(
                "request %s... still running after %.1f s"
                % (self.key[:12], timeout))
        with self._lock:
            if self.failure is not None:
                raise ServiceError(self.failure)
            return list(self.final_rows)

    def progress(self):
        """A point-in-time snapshot of the request's progress."""
        with self._lock:
            return self._progress_locked()

    def _progress_locked(self, points=True):
        states = self.trajectory.states
        reasons = {}
        for state in states:
            if state.stop_reason is not None:
                reasons[state.stop_reason] = reasons.get(state.stop_reason,
                                                         0) + 1
        out = {
            "request": self.key,
            "namespace": self.digest,
            "priority": self.request.priority,
            "points_total": len(states),
            "points_done": sum(1 for s in states if s.stop_reason is not None),
            "packets_spent": sum(s.packets for s in states),
            "batches": sum(s.batches for s in states),
            "batches_cached": self.cached_batches,
            "batches_simulated": self.simulated_batches,
            "batches_shared": self.shared_batches,
            "batches_leased": self.leased_batches,
            "budget_left": self.trajectory.budget_left,
            "coalesced_submissions": self.coalesced,
            "stop_reasons": reasons,
            "done": self.done.is_set(),
            "cancelled": self.cancelled,
            "failed": None if self.cancelled else self.failure,
            "time_to_first_row_s": (
                None if self.first_row_at is None
                else self.first_row_at - self.submitted_at),
            "elapsed_s": ((self.finished_at or time.time())
                          - self.submitted_at),
        }
        if points:
            out["points"] = [
                dict(state.point.coordinates,
                     stop_reason=state.stop_reason,
                     packets=state.packets,
                     batches=state.batches,
                     **self._per_point[state.point.index])
                for state in states
            ]
        return out

    def __repr__(self):
        return ("RequestTicket(%s..., done=%r, cached=%d, simulated=%d, "
                "shared=%d)" % (self.key[:12], self.done.is_set(),
                                self.cached_batches, self.simulated_batches,
                                self.shared_batches))


class CharacterisationBroker:
    """Resolve requests against the store; schedule only the misses.

    Parameters
    ----------
    store:
        The :class:`~repro.analysis.store.ResultStore` curves are served
        from and filed into.  Views are shared per namespace, so a batch
        one request simulates is visible to every other the moment it
        lands.
    fleet:
        A started :class:`~repro.service.fleet.WorkerFleet`.  The broker
        only ever enqueues batch-granular items; someone (the
        :class:`~repro.service.api.Service` pump thread, or a test
        driving things by hand) must call :meth:`pump` to fold completed
        items back in.
    runner:
        Optional chunk-runner override applied to every request (the
        default is the link runner,
        :func:`repro.analysis.adaptive.run_link_ber_batch`).  Part of
        each request's store namespace, exactly as for ``Experiment``.
    max_inflight_batches:
        Admission cap on batches awaiting results across all requests
        (queued plus executing).  A submit arriving at or past the cap
        raises :class:`ServiceSaturated`.  ``None`` (default) keeps the
        pre-hardening unbounded behaviour.
    max_requests:
        Admission cap on concurrently in-flight requests (coalesced
        submits never count — they add no work).
    quota:
        Optional :class:`ClientQuota` (or ``(packets_per_s,
        burst_packets)`` tuple) enforced per ``request.client_id`` at
        admission.
    leases:
        Optional :class:`~repro.service.cluster.LeaseManager` enabling
        cross-replica dedup.  A store-miss batch is only dispatched
        after its lease is acquired; one whose lease another replica
        holds is parked and answered from the store when the winner's
        result lands (polled from :meth:`pump`, throttled by
        ``lease_poll_s``).  Leases are advisory — losing every race
        costs duplicate work, never wrong rows.
    lease_poll_s:
        Seconds between store polls for lease-parked batches.
    """

    def __init__(self, store, fleet, runner=None, max_inflight_batches=None,
                 max_requests=None, quota=None, leases=None,
                 lease_poll_s=0.25, registry=None):
        if max_inflight_batches is not None and max_inflight_batches < 1:
            raise ValueError("max_inflight_batches must be positive or None")
        if max_requests is not None and max_requests < 1:
            raise ValueError("max_requests must be positive or None")
        if quota is not None and not isinstance(quota, ClientQuota):
            quota = ClientQuota(*quota)
        self.store = store
        self.fleet = fleet
        self.runner = runner
        self.max_inflight_batches = \
            None if max_inflight_batches is None else int(max_inflight_batches)
        self.max_requests = None if max_requests is None else int(max_requests)
        self.quota = quota
        self.leases = leases
        self.lease_poll_s = float(lease_poll_s)
        self.admission_open = True
        self._lock = threading.RLock()
        self._tickets = {}        # request_key -> in-flight ticket
        self._views = {}          # namespace digest -> shared StoreView
        self._inflight_work = {}  # work key -> [(ticket, batch), ...]
        self._group_members = {}  # group key -> [(work key, batch), ...]
        self._group_of = {}       # member work key -> its group key
        self._buckets = {}        # client_id -> _TokenBucket
        self._dispatched_at = {}  # fleet item key -> dispatch timestamp
        self._batch_spans = {}    # work key -> {ticket key -> live obs span}
        self._group_spans = {}    # fused group key -> live obs span
        self._lease_waits = {}    # work key -> [(ticket, batch), ...]
        self._lease_poll_at = 0.0
        self._item_seconds = None  # EWMA of fleet item wall-clock
        self._group_seq = 0
        self._ticket_seq = 0
        self._item_seq = 0           # dispatch-order tie-break generator
        self.simulated_batches = 0   # actual fleet submissions
        self.cached_batches = 0      # batches answered from the store
        self.shared_batches = 0      # batches answered by in-flight merge
        self.released_batches = 0    # queued batches withdrawn by cancel
        self.lease_waited_batches = 0     # batches parked on a peer's lease
        self.lease_answered_batches = 0   # parked batches answered by peers
        self.lease_reclaimed_batches = 0  # parked batches simulated locally
        self.delivered_batches = 0   # per-ticket batch consumes that landed
        self.admitted_requests = 0   # non-coalesced submits past admission
        self.completed_requests = 0
        self.failed_requests = 0
        self.cancelled_requests = 0
        self.rejected_saturated = 0  # submits refused by the in-flight caps
        self.rejected_quota = 0      # submits refused by the client quota
        #: Typed metrics layered over (not replacing) the int ledger: the
        #: ints above stay the single source of truth, mutated only under
        #: the broker lock; callback families re-read them at render time
        #: (``prometheus_text`` renders under the lock, so one scrape is
        #: one consistent snapshot) and histograms add the distributions
        #: JSON cannot carry.
        self.registry = registry if registry is not None \
            else obs_metrics.MetricsRegistry()
        stage = self.registry.histogram(
            "repro_stage_seconds",
            "Wall-clock per pipeline stage (simulate includes queue wait; "
            "store_put is the persistence append; deliver is folding one "
            "batch into one ticket)", labelnames=("stage",))
        self._h_simulate = stage.labels(stage="simulate")
        self._h_store_put = stage.labels(stage="store_put")
        self._h_deliver = stage.labels(stage="deliver")
        self.registry.callback(
            "repro_requests_total", "Requests by lifecycle state "
            "(admitted = past admission control; coalesced add no work)",
            "counter", self._collect_requests)
        self.registry.callback(
            "repro_batches_total", "Batches answered, by source",
            "counter", self._collect_batches)
        self.registry.callback(
            "repro_batches_in_flight",
            "Batches queued or executing right now", "gauge",
            lambda: [({}, len(self._inflight_work))])
        self.registry.callback(
            "repro_rejected_total", "Submits refused at admission",
            "counter", lambda: [({"reason": "saturated"},
                                 self.rejected_saturated),
                                ({"reason": "quota"}, self.rejected_quota)])
        self.registry.callback(
            "repro_lease_events_total",
            "Cross-replica lease traffic (zero when leases are off)",
            "counter", self._collect_leases)
        self.registry.callback(
            "repro_worker_heartbeat_age_seconds",
            "Seconds since each fleet worker's last heartbeat", "gauge",
            self._collect_heartbeats)

    # ------------------------------------------------------------------ #
    def _collect_requests(self):
        return [({"state": "admitted"}, self.admitted_requests),
                ({"state": "completed"}, self.completed_requests),
                ({"state": "failed"}, self.failed_requests),
                ({"state": "cancelled"}, self.cancelled_requests)]

    def _collect_batches(self):
        return [({"source": "cached"}, self.cached_batches),
                ({"source": "simulated"}, self.simulated_batches),
                ({"source": "shared"}, self.shared_batches),
                ({"source": "lease-parked"}, self.lease_waited_batches),
                ({"source": "released"}, self.released_batches),
                ({"source": "delivered"}, self.delivered_batches)]

    def _collect_leases(self):
        stats = self.leases.stats() if self.leases is not None else {}
        return ([({"event": name}, stats.get(name, 0))
                 for name in ("acquired", "contended", "reclaimed_stale",
                              "released", "lost")]
                + [({"event": "parked"}, self.lease_waited_batches),
                   ({"event": "answered"}, self.lease_answered_batches),
                   ({"event": "reclaimed"}, self.lease_reclaimed_batches)])

    def _collect_heartbeats(self):
        now = time.time()
        return [({"worker": name}, max(0.0, round(now - beat, 3)))
                for name, beat in sorted(self.fleet.heartbeats().items())]

    def prometheus_text(self):
        """Prometheus text exposition of this broker's registry plus the
        process-wide one (store/lease instruments), rendered under the
        broker lock so every callback family reads one consistent
        ledger snapshot."""
        with self._lock:
            return obs_metrics.render_prometheus(self.registry,
                                                 obs_metrics.GLOBAL)

    # ------------------------------------------------------------------ #
    def submit(self, request, trace=None):
        """Register one request; returns its (possibly shared) ticket.

        ``trace`` is an optional client-supplied span context (the
        ``X-Repro-Trace`` header's value); with tracing enabled the
        ticket's root ``request`` span continues it, so the client owns
        the trace id.  Telemetry never affects results or admission.

        An identical in-flight request coalesces onto the existing
        ticket.  Batches already in the store are consumed before this
        method returns — a fully warm request comes back already done,
        which is what makes time-to-first-row for cached curves
        effectively zero.

        Admission is bounded: past ``max_requests`` or
        ``max_inflight_batches``, or a ``client_id`` over its packet
        quota, the submit raises :class:`ServiceSaturated` (with a
        ``retry_after_s`` estimate) instead of queueing unboundedly;
        once :meth:`close_admission` was called it raises a plain
        :class:`ServiceError`.  Coalesced submits bypass every check —
        they add no work and cost no quota.
        """
        with self._lock:
            tracer = obs_trace.get_tracer()
            key = request.request_key()
            ticket = self._tickets.get(key)
            if ticket is not None:
                ticket.coalesced += 1
                ticket.interest += 1
                if tracer.enabled:
                    # The coalescing client's trace gets one completed
                    # span pointing at the ticket it piggybacked on; the
                    # shared work stays in the first submitter's trace.
                    parent = trace if trace is not None else ticket.span
                    tracer.event("batch", parent, time.time(), 0.0,
                                 {"source": "coalesced",
                                  "request": key[:16],
                                  "onto": ticket.span.context()})
                return ticket
            self._admit(request)
            experiment = request.experiment(store=self.store,
                                            runner=self.runner)
            digest = experiment.store_digest()
            view = self._views.get(digest)
            if view is None:
                view = experiment.store_view()
                self._views[digest] = view
            self._ticket_seq += 1
            ticket = RequestTicket(request, key, digest,
                                   experiment.trajectory(),
                                   experiment.resolved_runner(),
                                   self._ticket_seq, self._lock)
            ticket._broker = self
            if tracer.enabled:
                ticket.span = tracer.start(
                    "request", context=trace, request=key[:16],
                    namespace=digest[:16],
                    points=len(ticket.trajectory.states),
                    priority=request.priority)
            self._tickets[key] = ticket
            self.admitted_requests += 1
            try:
                self._advance(ticket)
            except Exception as exc:
                # Never leave a zombie behind: a fault during the
                # synchronous warm replay (corrupt store record, fleet
                # stopping under us) must not park a forever-pending
                # ticket that all future identical requests coalesce onto.
                self._tickets.pop(key, None)
                self.failed_requests += 1
                ticket._fail("submit failed: %s: %s"
                             % (type(exc).__name__, exc))
                raise
            return ticket

    def _admit(self, request):
        """Admission checks for a non-coalesced submit (lock held)."""
        if not self.admission_open:
            raise ServiceError(
                "service is draining; not accepting new requests")
        if self.max_requests is not None \
                and len(self._tickets) >= self.max_requests:
            self.rejected_saturated += 1
            raise ServiceSaturated(
                "service saturated: %d request(s) in flight (cap %d)"
                % (len(self._tickets), self.max_requests),
                retry_after_s=self._retry_after_s())
        if self.max_inflight_batches is not None \
                and len(self._inflight_work) >= self.max_inflight_batches:
            self.rejected_saturated += 1
            raise ServiceSaturated(
                "service saturated: %d batch(es) in flight (budget %d)"
                % (len(self._inflight_work), self.max_inflight_batches),
                retry_after_s=self._retry_after_s())
        if self.quota is not None:
            client = request.client_id
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = self.quota.bucket()
            cost = request.packet_cost()
            wait_s = bucket.try_take(cost)
            if wait_s is None:
                self.rejected_quota += 1
                raise ServiceError(
                    "request cost (%d packets) exceeds client %r quota "
                    "burst (%g packets); it can never be admitted — split "
                    "the ask" % (cost, client, self.quota.burst_packets))
            if wait_s > 0:
                self.rejected_quota += 1
                raise ServiceSaturated(
                    "client %r is over its packet quota (ask: %d packets); "
                    "retry in %.1f s" % (client, cost, wait_s),
                    retry_after_s=wait_s)

    def _retry_after_s(self):
        """Seconds until in-flight work plausibly frees a slot (lock held).

        Pending fleet items spread over the fleet's width, scaled by an
        EWMA of recent item wall-clock; 1 s floor (and default, before
        any item has completed) so a ``Retry-After`` header is never 0.
        """
        per_item = self._item_seconds if self._item_seconds else 1.0
        backlog = max(1, len(self._inflight_work))
        width = max(1, getattr(self.fleet, "capacity", self.fleet.workers))
        return max(1.0, per_item * backlog / width)

    def pump(self, timeout=0.0):
        """Fold completed fleet items back in; count of items processed.

        With leases enabled this also services the cross-replica side:
        held leases are refreshed (so they never go stale under a live
        replica) and lease-parked batches are advanced — answered from
        the store once the winning replica's result lands, or reclaimed
        and simulated locally if the winner's lease expired.
        """
        results = self.fleet.poll(timeout)
        with self._lock:
            for work_key, result in results:
                self._on_result(work_key, result)
            if self.leases is not None:
                self._poll_leases()
        return len(results)

    def cancel(self, request_key, reason="cancelled by client"):
        """Release one consumer's interest in an in-flight request.

        Each submit of an identical request (the original plus every
        coalesced one) holds one unit of interest; this releases one.
        When the last unit goes the ticket is released for real: it is
        unsubscribed from every in-flight batch (shared batches keep
        running, bit-for-bit, for their surviving subscribers), queued
        batches nobody else wants are withdrawn from the fleet before a
        worker starts them (counted in ``released_batches``), and the
        ticket finishes with a terminal ``"cancelled"`` event.  Batches
        already executing run to completion and still land in the store
        — cancellation never wastes work that was already paid for.

        Returns ``True`` when the request was in flight (interest
        released), ``False`` when no such request is live (unknown key,
        or it already finished).
        """
        with self._lock:
            ticket = self._tickets.get(request_key)
            if ticket is None or ticket.done.is_set():
                return False
            ticket.interest -= 1
            if ticket.interest > 0:
                return True
            self._release_ticket(ticket, reason)
            return True

    def _release_ticket(self, ticket, reason):
        """Drop a ticket out of the machinery (lock held, interest 0)."""
        self._tickets.pop(ticket.key, None)
        self.cancelled_requests += 1
        for work_key, spans in list(self._batch_spans.items()):
            span = spans.pop(ticket.key, None)
            if span is not None:
                span.end(outcome="cancelled")
            if not spans:
                self._batch_spans.pop(work_key, None)
        for work_key, subscribers in list(self._inflight_work.items()):
            remaining = [entry for entry in subscribers
                         if entry[0] is not ticket]
            if len(remaining) != len(subscribers):
                # An empty list stays registered: a batch some worker is
                # already executing must still land in the store when it
                # returns (see _deliver) — only its delivery is orphaned.
                self._inflight_work[work_key] = remaining
        # Lease-parked batches cost nothing to abandon: drop the ticket's
        # entries; a key with no waiters left stops being polled.  (The
        # lease belongs to the *other* replica — nothing to release.)
        for work_key, waiters in list(self._lease_waits.items()):
            remaining = [entry for entry in waiters if entry[0] is not ticket]
            if remaining:
                self._lease_waits[work_key] = remaining
            else:
                self._lease_waits.pop(work_key, None)
        # Withdraw queued single-batch items nobody subscribes to anymore.
        for work_key, subscribers in list(self._inflight_work.items()):
            if subscribers or work_key in self._group_of:
                continue
            if self.fleet.cancel(work_key):
                self._inflight_work.pop(work_key, None)
                self._dispatched_at.pop(work_key, None)
                self._release_lease(work_key)
                self.released_batches += 1
        # A fused group is one fleet item carrying many batches: it can
        # only be withdrawn when every member lost its last subscriber.
        for group_key, members in list(self._group_members.items()):
            if any(self._inflight_work.get(work_key) for work_key, _ in members):
                continue
            if not self.fleet.cancel(group_key):
                continue
            for work_key, _batch in members:
                self._inflight_work.pop(work_key, None)
                self._group_of.pop(work_key, None)
                self._release_lease(work_key)
                self.released_batches += 1
            self._group_members.pop(group_key, None)
            self._dispatched_at.pop(group_key, None)
            group_span = self._group_spans.pop(group_key, None)
            if group_span is not None:
                group_span.end(outcome="cancelled")
        ticket._cancel(reason)

    def close_admission(self):
        """Stop admitting new requests (in-flight ones keep running)."""
        with self._lock:
            self.admission_open = False

    def open_admission(self):
        """Re-open admission after :meth:`close_admission`."""
        with self._lock:
            self.admission_open = True

    def drain(self, timeout=None, poll_s=0.05):
        """Block until every in-flight request finishes; ``True`` on empty.

        Someone must keep calling :meth:`pump` for the tickets to
        advance — the :class:`~repro.service.api.Service` pump thread in
        the assembled service.  Normally preceded by
        :meth:`close_admission` so the set being waited on only shrinks
        (a submit arriving mid-drain would otherwise extend it).
        """
        deadline = None if timeout is None else time.time() + float(timeout)
        while True:
            with self._lock:
                tickets = [t for t in self._tickets.values()
                           if not t.done.is_set()]
            if not tickets:
                return True
            if deadline is not None and time.time() >= deadline:
                return False
            tickets[0].done.wait(poll_s)

    def shutdown(self, message="service stopped"):
        """Fail every in-flight ticket (used on service shutdown)."""
        with self._lock:
            for ticket in list(self._tickets.values()):
                ticket._fail(message)
                self.failed_requests += 1
            self._tickets = {}
            self._inflight_work = {}
            self._group_members = {}
            self._group_of = {}
            self._dispatched_at = {}
            for spans in self._batch_spans.values():
                for span in spans.values():
                    span.end(outcome="shutdown")
            for span in self._group_spans.values():
                span.end(outcome="shutdown")
            self._batch_spans = {}
            self._group_spans = {}
            self._lease_waits = {}
            if self.leases is not None:
                self.leases.release_all()

    # ------------------------------------------------------------------ #
    def _open_batch_span(self, ticket, batch, work_key, source):
        """A live span for one (ticket, batch) until its result folds in.

        Only called with tracing on; the span records the batch's full
        service-side residence (dispatch/park through delivery), so the
        gap between it and its worker-side ``simulate`` child is the
        queue wait the waterfall makes visible.
        """
        span = ticket.span.child("batch", source=source,
                                 point=batch.point.index, batch=batch.index)
        self._batch_spans.setdefault(work_key, {})[ticket.key] = span
        return span

    def _advance(self, ticket):
        """Drive a ticket forward until it blocks on fleet work or ends."""
        tracer = obs_trace.get_tracer()
        traced = tracer.enabled and ticket.span.enabled
        trajectory = ticket.trajectory
        view = self._views[ticket.digest]
        while not trajectory.round_in_flight:
            if trajectory.finished:
                ticket._emit_new_rows()
                ticket._finish()
                view.flush_stats()
                self._tickets.pop(ticket.key, None)
                self.completed_requests += 1
                return
            batches = trajectory.start_round()
            # start_round may stop points on its own (budget exhaustion).
            ticket._emit_new_rows()
            if not batches:
                continue
            pending = []
            for batch in batches:
                if traced:
                    hit_ts, hit_t0 = time.time(), time.perf_counter()
                cached = view.get(batch_store_key(batch), batch.index,
                                  batch.num_packets)
                if cached is None:
                    pending.append(batch)
                    continue
                ticket._note(batch, "cached")
                self.cached_batches += 1
                self.delivered_batches += 1
                if traced:
                    tracer.event("batch", ticket.span, hit_ts,
                                 time.perf_counter() - hit_t0,
                                 {"source": "cached",
                                  "point": batch.point.index,
                                  "batch": batch.index})
                trajectory.consume(batch, cached)
                ticket._emit_new_rows()
            self._dispatch_pending(ticket, pending)
            if pending:
                return

    def _dispatch_pending(self, ticket, pending):
        """Route a round's store-miss batches to the fleet.

        In-flight duplicates are subscribed to first; with leases
        enabled, batches whose lease another replica holds are parked
        for store polling next.  The genuinely fresh remainder is fused
        by :func:`~repro.analysis.fused.plan_fused_round` (when the
        ticket runs the built-in link runner) so a round's same-shape
        batches cost one tensor pass instead of one dispatch each.
        Fusion never changes what a batch's result *is* — each member
        still lands in the store and in every subscriber under its own
        work key — only how many fleet items carry it.
        """
        tracer = obs_trace.get_tracer()
        traced = tracer.enabled and ticket.span.enabled
        fresh, answered = [], []
        for batch in pending:
            work_key = (ticket.digest, batch_store_key(batch), batch.index,
                        batch.num_packets)
            subscribers = self._inflight_work.get(work_key)
            if subscribers is not None:
                # Another request is already simulating this exact batch:
                # subscribe to its result instead of re-enqueueing — and,
                # if we are the more urgent requester, pull the queued
                # item (the fused group's, if the batch rides one)
                # forward so the shared batch does not keep the lazier
                # request's queue position.
                subscribers.append((ticket, batch))
                ticket._note(batch, "shared")
                self.shared_batches += 1
                if traced:
                    self._open_batch_span(ticket, batch, work_key, "shared")
                self._item_seq += 1
                self.fleet.promote(
                    self._group_of.get(work_key, work_key),
                    (ticket.request.priority, ticket.deadline_at,
                     ticket.seq, self._item_seq))
                continue
            if self.leases is not None:
                waiters = self._lease_waits.get(work_key)
                if waiters is None and not self.leases.acquire(
                        work_key[0], work_key[1], work_key[2]):
                    # Another replica holds this batch's lease: park it
                    # and poll the shared store for the winner's result
                    # instead of simulating it a second time.
                    waiters = self._lease_waits[work_key] = []
                if waiters is not None:
                    waiters.append((ticket, batch))
                    ticket._note(batch, "leased")
                    self.lease_waited_batches += 1
                    if traced:
                        self._open_batch_span(ticket, batch, work_key,
                                              "lease-parked")
                    continue
                # We won the lease — but the previous holder may have
                # appended its result and released between our round's
                # store check and the acquire.  Probe once more before
                # paying for a simulation (the same double-check
                # ``_poll_leases`` performs when a parked lease frees).
                cached = self._views[ticket.digest].peek(
                    work_key[1], work_key[2], work_key[3])
                if cached is not None:
                    self._release_lease(work_key)
                    ticket._note(batch, "cached")
                    self.cached_batches += 1
                    if traced:
                        tracer.event("batch", ticket.span, time.time(), 0.0,
                                     {"source": "cached", "lease": "won",
                                      "point": batch.point.index,
                                      "batch": batch.index})
                    answered.append((ticket, batch, cached))
                    continue
            fresh.append((work_key, batch))
        if not fresh:
            self._fold_answered(answered)
            return
        groups, singles = [], [batch for _, batch in fresh]
        if ticket.runner is run_link_ber_batch:
            groups, singles = plan_fused_round(singles)
        key_of = {(batch.point.index, batch.index): work_key
                  for work_key, batch in fresh}
        for batch in singles:
            work_key = key_of[(batch.point.index, batch.index)]
            self._inflight_work[work_key] = [(ticket, batch)]
            ticket._note(batch, "simulated")
            self._item_seq += 1
            self.simulated_batches += 1
            trace_ctx = None
            if traced:
                trace_ctx = self._open_batch_span(
                    ticket, batch, work_key, "simulated").context()
            self.fleet.submit(
                work_key, ticket.runner, batch,
                priority=(ticket.request.priority, ticket.deadline_at,
                          ticket.seq, self._item_seq),
                trace=trace_ctx,
            )
            self._dispatched_at[work_key] = time.time()
        for group in groups:
            self._group_seq += 1
            group_key = ("fused", ticket.digest, self._group_seq)
            members = []
            for batch in group.batches:
                work_key = key_of[(batch.point.index, batch.index)]
                self._inflight_work[work_key] = [(ticket, batch)]
                self._group_of[work_key] = group_key
                ticket._note(batch, "simulated")
                if traced:
                    self._open_batch_span(ticket, batch, work_key,
                                          "simulated")
                members.append((work_key, batch))
            self._group_members[group_key] = members
            self._item_seq += 1
            self.simulated_batches += len(members)
            group_ctx = None
            if traced:
                # One fused fleet item simulates many batches: the
                # worker's ``simulate`` span hangs off this group span,
                # next to the per-member batch spans.
                group_span = ticket.span.child("fused",
                                               batches=len(members))
                self._group_spans[group_key] = group_span
                group_ctx = group_span.context()
            self.fleet.submit(
                group_key, FusedBatchRunner(ticket.runner), group,
                priority=(ticket.request.priority, ticket.deadline_at,
                          ticket.seq, self._item_seq),
                trace=group_ctx,
            )
            self._dispatched_at[group_key] = time.time()
        self._fold_answered(answered)

    def _fold_answered(self, answered):
        """Fold results that a freshly-won lease found already stored.

        Deferred until after the round's fleet submissions: folding the
        round's last outstanding batch re-enters :meth:`_advance`, which
        must not happen while sibling batches are still being routed.
        """
        for ticket, batch, result in answered:
            self._fold([(ticket, batch)], result)

    def _on_result(self, work_key, result):
        started = self._dispatched_at.pop(work_key, None)
        if started is not None:
            # Feed the Retry-After estimator: per-batch wall-clock (a
            # fused item's elapsed spreads over its member batches).
            group = self._group_members.get(work_key)
            width = len(group) if group else 1
            per_batch = (time.time() - started) / width
            self._item_seconds = (
                per_batch if self._item_seconds is None
                else 0.7 * self._item_seconds + 0.3 * per_batch)
            for _ in range(width):
                self._h_simulate.observe(per_batch)
        group_span = self._group_spans.pop(work_key, None)
        if group_span is not None:
            group_span.end()
        members = self._group_members.pop(work_key, None)
        if members is not None:
            member_results = (result.get("results")
                              if isinstance(result, dict) else None)
            if member_results is None or len(member_results) != len(members):
                # The whole fused item failed before the runner's
                # per-member fallback could slot errors (e.g. the worker
                # died past its retries): the error applies to every
                # member.
                member_results = [result] * len(members)
            for (member_key, _batch), member_result in zip(members,
                                                           member_results):
                self._group_of.pop(member_key, None)
                self._deliver(member_key, member_result)
            return
        self._deliver(work_key, result)

    def _deliver(self, work_key, result):
        subscribers = self._inflight_work.pop(work_key, None)
        if subscribers is None:
            return  # stale (e.g. the fleet flushed after a shutdown)
        digest, point_key, batch_index, num_packets = work_key
        if not ("error" in result and "errors" not in result):
            # Persist before delivery: a batch is simulated once, ever.
            # Best-effort — an unstorable result (a custom runner leaking
            # tuple extras, a full disk) must not take the pump thread
            # down with it; the batch is simply served uncached.
            put_ts, put_t0 = time.time(), time.perf_counter()
            try:
                self._views[digest].put(point_key, batch_index, num_packets,
                                        result)
            except Exception:
                _logger.warning(
                    "could not persist batch %r of namespace %s; serving it "
                    "uncached", (point_key, batch_index), digest[:16],
                    exc_info=True)
            put_dur = time.perf_counter() - put_t0
            self._h_store_put.observe(put_dur)
            tracer = obs_trace.get_tracer()
            if tracer.enabled:
                spans = self._batch_spans.get(work_key)
                if spans:
                    tracer.event("store", next(iter(spans.values())),
                                 put_ts, put_dur)
        # Release the batch's cross-replica lease only *after* the store
        # put: a waiting replica that sees the lease free re-checks the
        # store and finds the result.  (An error result is never
        # persisted, so releasing hands the batch to the waiter, which
        # re-simulates and hits the same deterministic error.)
        self._release_lease(work_key)
        self._fold(subscribers, result, work_key)

    def _release_lease(self, work_key):
        if self.leases is not None:
            self.leases.release(work_key[0], work_key[1], work_key[2])

    def _fold(self, subscribers, result, work_key=None):
        """Fold one batch result into every subscribed ticket (lock held).

        ``work_key`` (when the result resolves in-flight work) closes
        each subscriber's live batch span as its delivery lands.
        """
        spans = self._batch_spans.pop(work_key, None) \
            if work_key is not None else None
        for ticket, batch in subscribers:
            span = spans.pop(ticket.key, None) if spans else None
            if ticket.done.is_set():
                if span is not None:
                    span.end(outcome="orphaned")
                continue
            # A fault folding one ticket's result in (e.g. a malformed
            # runner result dict) fails that ticket alone — the service
            # and its other requests keep running.
            try:
                fold_t0 = time.perf_counter()
                ticket.trajectory.consume(batch, result)
                self._h_deliver.observe(time.perf_counter() - fold_t0)
                self.delivered_batches += 1
                if span is not None:
                    span.end()
                ticket._emit_new_rows()
                if not ticket.trajectory.round_in_flight:
                    self._advance(ticket)
            except Exception as exc:
                _logger.warning("request %s failed processing batch %s",
                                ticket.key[:16], batch.label(), exc_info=True)
                if span is not None:
                    span.end(outcome="failed")
                ticket._fail("internal error processing %s: %s"
                             % (batch.label(), exc))
                self._tickets.pop(ticket.key, None)
                self.failed_requests += 1
        if spans:
            # Subscribers that vanished between span creation and
            # delivery (a released ticket) still get their spans closed.
            for span in spans.values():
                span.end(outcome="orphaned")

    def _poll_leases(self, now=None):
        """Advance lease-parked batches (lock held; throttled).

        For every parked work key, in order: (1) probe the store — the
        winning replica releases its lease only after its result is
        appended, so a hit answers every waiter; (2) otherwise try to
        take the lease — success means the previous holder crashed,
        cancelled, or hit an error (error results are never persisted),
        so after one more store check the batch is dispatched locally.
        A still-held lease leaves the batch parked for the next poll.
        """
        now = time.monotonic() if now is None else now
        if now - self._lease_poll_at < self.lease_poll_s:
            return
        self._lease_poll_at = now
        self.leases.refresh()
        for work_key, subscribers in list(self._lease_waits.items()):
            digest, point_key, batch_index, num_packets = work_key
            view = self._views.get(digest)
            subscribers = [entry for entry in subscribers
                           if not entry[0].done.is_set()]
            if view is None or not subscribers:
                self._lease_waits.pop(work_key, None)
                continue
            result = view.peek(point_key, batch_index, num_packets)
            if result is None and self.leases.acquire(digest, point_key,
                                                      batch_index):
                # The lease came free with no result: re-check the store
                # once (the winner may have appended and released between
                # our peek and the acquire) before simulating ourselves.
                result = view.peek(point_key, batch_index, num_packets)
                if result is None:
                    self._lease_waits.pop(work_key, None)
                    self._inflight_work[work_key] = subscribers
                    ticket, batch = subscribers[0]
                    self._item_seq += 1
                    self.simulated_batches += 1
                    self.lease_reclaimed_batches += 1
                    trace_ctx = None
                    spans = self._batch_spans.get(work_key)
                    if spans:
                        for span in spans.values():
                            span.annotate(lease="reclaimed")
                        anchor = spans.get(ticket.key) \
                            or next(iter(spans.values()))
                        trace_ctx = anchor.context()
                    self.fleet.submit(
                        work_key, ticket.runner, batch,
                        priority=(ticket.request.priority, ticket.deadline_at,
                                  ticket.seq, self._item_seq),
                        trace=trace_ctx,
                    )
                    self._dispatched_at[work_key] = time.time()
                    continue
                self._release_lease(work_key)
            if result is not None:
                self._lease_waits.pop(work_key, None)
                self.lease_answered_batches += len(subscribers)
                self._fold(subscribers, result, work_key)

    # ------------------------------------------------------------------ #
    @property
    def total_simulated_batches(self):
        """Work items ever enqueued to the fleet — the dedup denominator."""
        return self.simulated_batches

    def requests(self):
        """Progress snapshots of every in-flight request."""
        with self._lock:
            return [ticket.progress() for ticket in self._tickets.values()]

    def status(self):
        with self._lock:
            return {
                "in_flight_requests": len(self._tickets),
                "completed_requests": self.completed_requests,
                "failed_requests": self.failed_requests,
                "cancelled_requests": self.cancelled_requests,
                "simulated_batches": self.simulated_batches,
                "inflight_batches": len(self._inflight_work),
                "lease_waiting_batches": len(self._lease_waits),
                "admission_open": self.admission_open,
                "rejected_saturated": self.rejected_saturated,
                "rejected_quota": self.rejected_quota,
                "namespaces": sorted(self._views),
                "fleet": self.fleet.stats(),
            }

    def metrics(self, extras=None):
        """The full operational ledger as one stable JSON-able document.

        Everything the system already tracks, in one place: admission
        state and caps, the request lifecycle counters, the batch-source
        ledger (cached / simulated / shared / released / leased /
        delivered), the fleet's queue and worker health (including
        per-worker heartbeat ages and retry counts), per-namespace store
        statistics, and the ``cluster`` ledger — attached remote workers
        and cross-replica lease counters, present with a stable shape
        even when the replica runs standalone.  Served by
        ``GET /v1/metrics``; keys are append-only across PRs so scrapers
        can rely on them.

        ``extras`` maps additional top-level keys to zero-argument
        suppliers evaluated **inside the broker lock**, so callers (the
        :class:`~repro.service.api.Service`) can extend the document
        without racing the counters: every number in one returned
        snapshot — including the extras — reflects a single instant, and
        the balance invariants (``admitted == in_flight + completed +
        failed + cancelled``; ``delivered <= cached + shared + simulated
        + leased``) hold in every snapshot.
        """
        with self._lock:
            now = time.monotonic()
            quota = None
            if self.quota is not None:
                quota = {
                    "packets_per_s": self.quota.packets_per_s,
                    "burst_packets": self.quota.burst_packets,
                    "buckets": {
                        str(client): round(bucket.level(now), 3)
                        for client, bucket in sorted(
                            self._buckets.items(),
                            key=lambda item: str(item[0]))
                    },
                }
            stores = {}
            for digest, view in sorted(self._views.items()):
                stores[digest] = {
                    "records": len(view),
                    "hits": view.hits,
                    "misses": view.misses,
                }
            doc = {
                "admission": {
                    "open": self.admission_open,
                    "max_inflight_batches": self.max_inflight_batches,
                    "max_requests": self.max_requests,
                    "rejected_saturated": self.rejected_saturated,
                    "rejected_quota": self.rejected_quota,
                    "retry_after_s": round(self._retry_after_s(), 3),
                    "quota": quota,
                },
                "requests": {
                    "in_flight": len(self._tickets),
                    "completed": self.completed_requests,
                    "failed": self.failed_requests,
                    "cancelled": self.cancelled_requests,
                    "admitted": self.admitted_requests,
                },
                "batches": {
                    "inflight": len(self._inflight_work),
                    "simulated": self.simulated_batches,
                    "cached": self.cached_batches,
                    "shared": self.shared_batches,
                    "released": self.released_batches,
                    "leased": self.lease_waited_batches,
                    "delivered": self.delivered_batches,
                },
                "fleet": self.fleet.stats(),
                "stores": stores,
                "cluster": self._cluster_metrics(),
            }
            if extras:
                for key, supplier in extras.items():
                    doc[key] = supplier()
            return doc

    def _cluster_metrics(self):
        """The ``cluster`` metrics section (lock held); stable shape."""
        lease_stats = {"owner": None, "ttl_s": None, "held": 0,
                       "acquired": 0, "contended": 0, "reclaimed_stale": 0,
                       "released": 0, "lost": 0}
        if self.leases is not None:
            lease_stats.update(self.leases.stats())
        lease_stats.update({
            "enabled": self.leases is not None,
            "waiting": len(self._lease_waits),
            "waited": self.lease_waited_batches,
            "answered": self.lease_answered_batches,
            "reclaimed": self.lease_reclaimed_batches,
        })
        remote = self.fleet.remote_stats() if hasattr(
            self.fleet, "remote_stats") else {
                "attached": {}, "attached_total": 0, "detached_total": 0,
                "completed": 0, "requeued": 0}
        return {"replica": lease_stats["owner"], "remote_workers": remote,
                "leases": lease_stats}

    def __repr__(self):
        return ("CharacterisationBroker(in_flight=%d, completed=%d, "
                "simulated_batches=%d)"
                % (len(self._tickets), self.completed_requests,
                   self.simulated_batches))
