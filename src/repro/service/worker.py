"""The remote worker agent: attach to a service, pull batches, post results.

::

    python -m repro.service.worker --connect http://host:8423

This is the *other* host's half of the fleet's remote-worker protocol
(see :mod:`repro.service.fleet`): the agent POSTs
``/v1/workers/attach`` and the response becomes a JSON-lines stream of
work — ``task`` events carrying one pickled ``(runner, batch)`` item
each (base64, :func:`repro.service.transport.decode_payload`),
interleaved with ``ping`` keep-alives while the queue is empty.  The
agent executes each item with the exact capture semantics of a local
fleet worker and posts the outcome to ``/v1/workers/<name>/result``;
while a long batch runs, a side thread posts
``/v1/workers/<name>/beat`` so the service's watchdog knows the worker
is alive and not dead mid-item.

Failure behaviour mirrors the process backend's: if the agent dies (or
its host does), the service requeues the outstanding item after the
stream breaks or the heartbeat goes silent — up to the fleet's retry
cap, with bit-for-bit results either way because the batch carries its
own seed.  If the *service* dies, the agent re-attaches with backoff
until ``--retries`` consecutive failures, then exits; a ``bye`` event
with reason ``"stopped"`` (graceful service shutdown) ends the agent
immediately, while reason ``"detached"`` (the watchdog presumed us dead
— a long GC pause, a network wobble) triggers a clean re-attach.

Trust model: work items are pickles, and unpickling executes arbitrary
code — only ever connect an agent to a service you trust (see
:mod:`repro.service.transport`).
"""

import argparse
import json
import logging
import os
import sys
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.obs import configure_logging
from repro.obs import trace as obs_trace
from repro.service.fleet import _capture
from repro.service.transport import decode_payload, encode_payload

__all__ = ["WorkerAgent", "main"]

_logger = logging.getLogger(__name__)


class WorkerAgent:
    """One remote worker: attach loop, task execution, result posting.

    Importable so tests (and embedders) can run an agent on a thread
    against an in-process service instead of shelling out.  ``stop()``
    asks the agent to exit after the current item; the run loop also
    exits on the service's ``bye``/``stopped`` signal.
    """

    def __init__(self, base_url, name=None, heartbeat_s=5.0,
                 http_timeout_s=30.0):
        self.base_url = base_url.rstrip("/")
        self.requested_name = name
        self.name = name          # canonical name, assigned at attach
        self.heartbeat_s = float(heartbeat_s)
        self.http_timeout_s = float(http_timeout_s)
        self.completed = 0
        self.attaches = 0
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    def stop(self):
        """Ask the run loop to exit after the item in hand (thread-safe)."""
        self._stop.set()

    def _post_json(self, path, payload):
        request = urllib.request.Request(
            self.base_url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request,
                                    timeout=self.http_timeout_s) as response:
            return json.loads(response.read())

    def _beat_while(self, done):
        """Post liveness beats until ``done`` is set (runs on a thread)."""
        while not done.wait(self.heartbeat_s):
            try:
                self._post_json("/v1/workers/%s/beat" % self.name, {})
            except (OSError, urllib.error.URLError, ValueError):
                return  # the service is gone; the main loop will notice

    def _execute(self, event):
        """Run one ``task`` event; ``True`` while the channel is healthy."""
        seq = int(event["seq"])
        try:
            runner, batch = decode_payload(event["payload"])
        except Exception as exc:  # noqa: BLE001 - reported as the result
            result, error = None, ("undecodable work item: %s: %s"
                                   % (type(exc).__name__, exc))
        else:
            done = threading.Event()
            beater = threading.Thread(target=self._beat_while, args=(done,),
                                      daemon=True)
            beater.start()
            tracer = obs_trace.get_tracer()
            trace = event.get("trace")
            try:
                if tracer.enabled and trace is not None:
                    # Continue the request's trace: the batch's span
                    # context rode the task event (see the service's
                    # attach handler), so this simulate span — and the
                    # kernel phase spans under it — joins the same tree
                    # even though it runs on another host.
                    with tracer.resume(trace, "simulate", worker=self.name,
                                       remote=True, label=batch.label()):
                        result, error = _capture(runner, batch)
                else:
                    result, error = _capture(runner, batch)
            finally:
                done.set()
        body = {"seq": seq}
        if error is not None:
            body["error"] = error
        else:
            body["payload"] = encode_payload(result)
        try:
            reply = self._post_json("/v1/workers/%s/result" % self.name, body)
        except (OSError, urllib.error.URLError, ValueError):
            # The service vanished with our result in hand.  Losing it is
            # safe: the broken stream requeues the item, and the batch's
            # own seed makes the re-run bit-for-bit identical.
            return False
        if not reply.get("accepted"):
            _logger.info("result for item %d refused (stale after requeue)",
                         seq)
        else:
            self.completed += 1
        return True

    def attach_once(self):
        """One attach stream, drained until it ends.

        Returns ``"stopped"`` (service said bye, don't come back),
        ``"detached"`` (service evicted us; re-attach), or ``"lost"``
        (connection/stream failure; re-attach with backoff).
        """
        query = ""
        if self.requested_name:
            query = "?" + urllib.parse.urlencode(
                {"name": self.requested_name})
        request = urllib.request.Request(
            self.base_url + "/v1/workers/attach" + query, data=b"",
            headers={"Content-Type": "application/json"})
        try:
            response = urllib.request.urlopen(request,
                                              timeout=self.http_timeout_s)
        except (OSError, urllib.error.URLError, ValueError):
            return "lost"
        self.attaches += 1
        with response:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    return "lost"
                kind = event.get("event")
                if kind == "attached":
                    self.name = event["worker"]
                    _logger.info("attached to %s as %r", self.base_url,
                                 self.name)
                elif kind == "task":
                    if not self._execute(event):
                        return "lost"
                elif kind == "bye":
                    return event.get("reason", "stopped")
                if self._stop.is_set():
                    return "stopped"
        return "lost"

    def run(self, retries=10, backoff_s=1.0, max_backoff_s=30.0):
        """Attach and work until the service stops (or is gone for good).

        ``retries`` bounds *consecutive* connection failures — any
        successful attach resets the count.  Returns the number of
        completed items.
        """
        failures = 0
        while not self._stop.is_set():
            attaches_before = self.attaches
            outcome = self.attach_once()
            if outcome == "stopped":
                break
            if outcome == "detached":
                failures = 0
                continue
            if self.attaches > attaches_before:
                failures = 0  # the stream worked for a while; fresh count
            failures += 1
            if failures > retries:
                _logger.warning("giving up on %s after %d consecutive "
                                "failures", self.base_url, failures)
                break
            delay = min(max_backoff_s, backoff_s * (2 ** (failures - 1)))
            if self._stop.wait(delay):
                break
        return self.completed

    def __repr__(self):
        return ("WorkerAgent(%r, name=%r, completed=%d)"
                % (self.base_url, self.name, self.completed))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.worker",
        description="Remote worker agent: attaches to a running "
                    "characterisation service and executes its batch work "
                    "items on this host.  Only connect to a service you "
                    "trust: work items are pickled code.")
    parser.add_argument("--connect", required=True, metavar="URL",
                        help="service base URL, e.g. http://host:8423")
    parser.add_argument("--name", default=None,
                        help="stable worker name (re-attaching under the "
                             "same name evicts a stale predecessor); "
                             "default: service-assigned")
    parser.add_argument("--heartbeat-s", type=float, default=5.0,
                        help="liveness beat interval while executing a "
                             "batch (default: 5; keep well under the "
                             "service's remote_timeout_s)")
    parser.add_argument("--retries", type=int, default=10,
                        help="consecutive attach failures before giving up")
    parser.add_argument("--backoff-s", type=float, default=1.0,
                        help="initial re-attach backoff (doubles per "
                             "failure, capped at 30 s)")
    parser.add_argument("--log-level", default="info",
                        help="root logging level for the repro.* loggers "
                             "(debug/info/warning/error; default: info)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append logs to PATH instead of stderr")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="emit obs spans for executed batches into this "
                             "trace sink (point it at the same directory as "
                             "the service's --trace-dir to get connected "
                             "waterfalls; default: $REPRO_TRACE_DIR, else "
                             "off)")
    args = parser.parse_args(argv)
    configure_logging(args.log_level, args.log_file)
    trace_dir = args.trace_dir or os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        obs_trace.configure(trace_dir,
                            proc=args.name or "agent-%d" % os.getpid())
    agent = WorkerAgent(args.connect, name=args.name,
                        heartbeat_s=args.heartbeat_s)
    try:
        completed = agent.run(retries=args.retries, backoff_s=args.backoff_s)
    except KeyboardInterrupt:
        completed = agent.completed
    print("worker %s completed %d item(s)" % (agent.name or "-", completed),
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
