"""A persistent worker fleet pulling batch-granular work items.

The sweep layer's :class:`~repro.analysis.sweep.SweepExecutor` is built
for one-shot runs: it is handed a whole grid, builds a pool, drains it,
tears it down.  A long-lived service needs the opposite lifetime — the
pool outlives any single request, and the unit of dispatch is one
:class:`~repro.analysis.adaptive.MeasurementBatch`, so a thousand-point
request cannot head-of-line-block a three-point one: their batches
interleave in a single priority queue.

:class:`WorkerFleet` provides that with two backends:

``thread``
    Worker threads in this process.  The link simulator spends most of
    its time inside numpy kernels that release the GIL, so threads give
    real parallelism without pickling, and are the default for the
    in-process service.
``process``
    Long-lived ``multiprocessing`` worker processes.  Each worker owns a
    depth-1 task queue, so the parent always knows exactly which item a
    worker holds: when a worker dies mid-batch (OOM kill, segfault, an
    ``os._exit`` deep in native code), its item is requeued — up to
    ``max_retries`` times — and a replacement worker is started.  Workers
    post heartbeats on a side channel; :meth:`heartbeats` reports each
    worker's last-seen age.

Remote workers
--------------
Either backend can additionally be fed by **remote workers**: agents on
other hosts that attach over the service's HTTP boundary (``python -m
repro.service.worker --connect URL``; see :mod:`repro.service.worker`).
:meth:`WorkerFleet.register_remote` hands the front door a
:class:`RemoteWorkerHandle` that pulls items from the *same* priority
heap local workers drain — so priorities, promotion and queued-item
cancellation need no remote-specific code at all — under the process
backend's depth-1 discipline: one outstanding item per worker, so the
parent always knows exactly what a dead worker held.  A remote worker
that stops heartbeating, breaks its stream or detaches mid-item has its
item requeued through the same ``max_retries`` path as a dead process
worker; a stale result arriving after requeue is refused (the item may
already be re-executing elsewhere).

Determinism
-----------
A work item is ``(runner, batch)`` and the batch carries its own derived
:class:`~numpy.random.SeedSequence` — *which worker* runs it (local
thread, child process or remote host), in what order, or on the
how-many-th retry is invisible in the result, the same invariance the
executor backends guarantee.  A runner *exception* is deterministic, so
it is never retried: it comes back as a captured ``{"error": ...}``
result in the executor's vocabulary.  Only worker death triggers a
retry.
"""

import heapq
import itertools
import os
import queue
import threading
import time
import traceback

from repro.obs import trace as obs_trace
from repro.service.transport import (DEFAULT_RING_BYTES, attach_channel,
                                     create_channel, pack_task, unpack_task)

__all__ = ["FleetError", "RemoteWorkerHandle", "WorkerFleet"]


class FleetError(RuntimeError):
    """The fleet was used outside its lifecycle or lost a worker for good."""


def _capture(runner, batch):
    """Run one item, capturing failures in the executor's error format."""
    try:
        return dict(runner(batch)), None
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        detail = "%s: %s\n%s" % (type(exc).__name__, exc,
                                 traceback.format_exc())
        return None, detail


def _traced_capture(runner, batch, trace, worker):
    """:func:`_capture` under a resumed ``simulate`` span (when traced).

    The span is made *current* for the worker thread so the kernel
    phase hooks (transmit/channel/front-end/decode, BCJR sweeps) nest
    under it.  With tracing off — or an untraced item — this is one
    attribute load on top of the plain call.
    """
    tracer = obs_trace.get_tracer()
    if trace is None or not tracer.enabled:
        return _capture(runner, batch)
    with tracer.resume(trace, "simulate", worker=worker,
                       label=batch.label()):
        return _capture(runner, batch)


def _process_worker_main(worker_id, conn, heartbeat_s, shm_name=None,
                         ring_bytes=DEFAULT_RING_BYTES, trace_dir=None):
    """Long-lived process worker: heartbeat thread + one-item task loop.

    All messages travel over this worker's own duplex channel (a pipe,
    plus — when ``shm_name`` names the parent's segment — a shared-memory
    ring pair carrying the payload buffers; see
    :mod:`repro.service.transport`).  That per-worker choice is
    deliberate: a shared ``multiprocessing.Queue`` guards its write end
    with a semaphore *shared by every worker*, so a worker dying
    mid-``put`` (exactly what the retry machinery exists for) would
    leave the semaphore locked and poison the whole fleet.  A per-worker
    channel has a single writing process — a dying worker can only break
    its own channel, which the parent reads as EOF.
    """
    if trace_dir:
        obs_trace.configure(trace_dir, proc=worker_id)
    channel = attach_channel(conn, shm_name, ring_bytes)
    send_lock = threading.Lock()  # main loop and heartbeat thread share it
    stop_beat = threading.Event()

    def send(message):
        with send_lock:
            channel.send(message)

    def beat():
        while not stop_beat.wait(heartbeat_s):
            try:
                send(("heartbeat", worker_id, time.time()))
            except (OSError, ValueError):
                # ValueError: the main loop closed the channel (released
                # its ring views) between our stop check and this send.
                return

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()
    try:
        send(("heartbeat", worker_id, time.time()))
        while True:
            try:
                task = channel.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            seq, runner, batch, trace = unpack_task(task)
            result, error = _traced_capture(runner, batch, trace, worker_id)
            send(("result", worker_id, seq, result, error))
    finally:
        stop_beat.set()
        channel.close()


class _Item:
    """One queued work item and its bookkeeping."""

    __slots__ = ("seq", "item_id", "runner", "batch", "priority", "attempts",
                 "delivered", "trace")

    def __init__(self, seq, item_id, runner, batch, priority, trace=None):
        self.seq = seq
        self.item_id = item_id
        self.runner = runner
        self.batch = batch
        self.priority = priority
        self.attempts = 0
        self.delivered = False
        self.trace = trace  # obs span context riding to the executor


class RemoteWorkerHandle:
    """The fleet-side end of one attached remote worker.

    Owned by whoever speaks to the remote agent — in the assembled
    service, the HTTP handler thread of its ``POST /v1/workers/attach``
    stream.  The protocol is depth-1, mirroring the process backend:

    * :meth:`next_task` pops the next priority-ordered item (blocking up
      to a timeout) and records it as this worker's outstanding item; it
      refuses to pop while one is outstanding, instead waiting for its
      completion.
    * :meth:`complete` resolves the outstanding item with the agent's
      result; a stale ``seq`` (the item was requeued after this worker
      was presumed dead) is refused so one item can never resolve twice
      with contradictory results.
    * :meth:`beat` keeps the worker alive in the fleet's heartbeat table
      while a long batch executes remotely.
    * :meth:`detach` withdraws the worker; an outstanding item is
      requeued (up to the fleet's ``max_retries``, then failed), exactly
      like a dead process worker's.
    """

    def __init__(self, fleet, name):
        self._fleet = fleet
        self.name = name
        self.detached = False
        self.attached_at = time.time()
        self.last_beat = time.monotonic()
        self.completed = 0
        self._item = None

    # ------------------------------------------------------------------ #
    @property
    def active(self):
        """Whether the worker should keep pulling (fleet up, not detached)."""
        fleet = self._fleet
        return not self.detached and fleet._running and not fleet._stopping

    @property
    def executing(self):
        """Whether an item is outstanding on this worker."""
        return self._item is not None

    def idle_s(self, now=None):
        """Seconds since this worker was last heard from."""
        now = time.monotonic() if now is None else now
        return now - self.last_beat

    def overdue(self, timeout_s, now=None):
        """Whether an outstanding item's worker has gone silent too long."""
        return self._item is not None and self.idle_s(now) > timeout_s

    # ------------------------------------------------------------------ #
    def next_task(self, timeout=1.0):
        """The next work item for this worker, or ``None`` on timeout.

        Blocks up to ``timeout`` seconds.  While an item is outstanding
        this never pops another (depth-1); it waits for the completion
        instead, so a ``None`` doubles as the caller's cue to send a
        keep-alive and run its watchdog check.  Returns ``None``
        immediately once the worker is detached or the fleet stops.
        """
        fleet = self._fleet
        deadline = time.monotonic() + max(0.0, timeout)
        with fleet._lock:
            while True:
                if not self.active:
                    return None
                if self._item is None:
                    item = fleet._pop_queued()
                    if item is not None:
                        self._item = item
                        fleet._inflight[item.seq] = item
                        item.attempts += 1
                        self.last_beat = time.monotonic()
                        fleet._heartbeat[self.name] = time.time()
                        return item
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                fleet._lock.wait(remaining)

    def complete(self, seq, result, error=None):
        """Resolve the outstanding item; ``False`` when ``seq`` is stale."""
        fleet = self._fleet
        with fleet._lock:
            item = self._item
            if self.detached or item is None or item.seq != seq:
                return False
            self._item = None
            fleet._inflight.pop(item.seq, None)
            self.completed += 1
            fleet.remote_completed += 1
            self.last_beat = time.monotonic()
            fleet._heartbeat[self.name] = time.time()
            fleet._finish(item, result, error)
            fleet._lock.notify_all()
            return True

    def beat(self):
        """Record a liveness signal; ``False`` once detached."""
        fleet = self._fleet
        with fleet._lock:
            if self.detached:
                return False
            self.last_beat = time.monotonic()
            fleet._heartbeat[self.name] = time.time()
            return True

    def detach(self, requeue=True):
        """Withdraw this worker; requeue (or fail) its outstanding item.

        Idempotent.  With ``requeue`` (the death/disconnect path) the
        outstanding item goes back on the heap at its own priority, its
        attempt counted against the fleet's ``max_retries`` exactly like
        a dead process worker's; past the cap it is failed with an error
        result.  ``requeue=False`` fails the item outright (an explicit
        operator eviction, where re-running is not wanted).
        """
        fleet = self._fleet
        with fleet._lock:
            if self.detached:
                return False
            self.detached = True
            if fleet._remote.get(self.name) is self:
                fleet._remote.pop(self.name, None)
                fleet._heartbeat.pop(self.name, None)
            fleet.remote_detached += 1
            item, self._item = self._item, None
            if item is not None:
                fleet._inflight.pop(item.seq, None)
                if item.delivered:
                    pass  # already resolved (e.g. fleet stop failed it)
                elif fleet._stopping or not fleet._running:
                    # Requeueing onto a stopping fleet would strand the
                    # item: nothing will ever drain the heap again.
                    fleet._finish(item, None, "fleet stopped")
                elif not requeue or item.attempts > fleet.max_retries:
                    fleet._finish(
                        item, None,
                        "remote worker %s detached running %s "
                        "(%d attempt(s))%s"
                        % (self.name, item.batch.label(), item.attempts,
                           "" if requeue else "; not requeued"))
                else:
                    fleet.retried += 1
                    fleet.remote_requeued += 1
                    heapq.heappush(fleet._heap,
                                   (item.priority, item.seq, item))
                    fleet._queued[item.item_id] = item
            fleet._lock.notify_all()
            return True

    def __repr__(self):
        return ("RemoteWorkerHandle(%r, executing=%r, completed=%d, "
                "detached=%r)" % (self.name, self.executing, self.completed,
                                  self.detached))


class WorkerFleet:
    """Long-lived workers draining one priority queue of batch items.

    Parameters
    ----------
    workers:
        Worker count (default ``os.cpu_count()``, at least 1).
    backend:
        ``"thread"`` (default) or ``"process"`` (see the module
        docstring for the trade-off).
    mp_context:
        Optional :mod:`multiprocessing` context or start-method name for
        the process backend.
    heartbeat_s:
        Process-worker heartbeat interval in seconds.
    max_retries:
        How many times a work item is re-dispatched after the worker
        running it died, before it is failed with an error result.
    ring_bytes:
        Per-direction shared-memory ring capacity for the process
        backend's payload transport (see
        :mod:`repro.service.transport`).  ``0`` forces the plain-pipe
        channel.
    compute_slots:
        Thread backend only: how many workers may *execute* a runner at
        the same time (default ``min(workers, os.cpu_count())``).  The
        numpy kernels release the GIL around every small operation, so
        on a host with fewer cores than workers the oversubscribed
        threads hand the GIL back and forth at kernel granularity —
        measured multi-x wall-clock inflation of each item on a
        single-core host.  Queueing, heartbeats and result streaming
        stay fully concurrent; only the compute sections serialise down
        to the hardware's real parallelism.

    Usage: :meth:`start` (or use as a context manager), then
    :meth:`submit` items — ``submit(item_id, runner, batch,
    priority=...)``; lower priority tuples run first — and drain
    ``(item_id, result)`` pairs with :meth:`poll`.  Results arrive in
    completion order; an item that failed carries ``{"error": ...}``.
    """

    def __init__(self, workers=None, backend="thread", mp_context=None,
                 heartbeat_s=1.0, max_retries=2,
                 ring_bytes=DEFAULT_RING_BYTES, compute_slots=None):
        if backend not in ("thread", "process"):
            raise ValueError("unknown backend %r (use 'thread' or 'process')"
                             % (backend,))
        if workers is not None and workers < 1:
            raise ValueError("workers must be positive")
        if compute_slots is not None and compute_slots < 1:
            raise ValueError("compute_slots must be positive")
        self.backend = backend
        self.workers = workers or os.cpu_count() or 1
        self.mp_context = mp_context
        self.heartbeat_s = float(heartbeat_s)
        self.max_retries = int(max_retries)
        self.ring_bytes = int(ring_bytes)
        self.compute_slots = min(
            self.workers,
            compute_slots or max(os.cpu_count() or 1, 1),
        )
        self._compute_gate = threading.BoundedSemaphore(self.compute_slots)
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.retried = 0
        self.restarted = 0
        self._seq = itertools.count()
        self._lock = threading.Condition()
        self._heap = []            # (priority, seq, _Item)
        self._queued = {}          # item_id -> _Item still awaiting dispatch
        self._inflight = {}        # seq -> _Item, dispatched and unresolved
        self._done = queue.Queue()  # (item_id, result dict)
        self._heartbeat = {}       # worker name -> last-seen timestamp
        self._running = False
        self._stopping = False
        # thread backend
        self._threads = []
        # process backend
        self._context = None
        self._procs = {}           # worker name -> (Process, parent Connection)
        self._channels = {}        # worker name -> transport channel
        self._assigned = {}        # worker name -> seq it currently holds
        self._idle = set()
        self._pump_threads = []
        self._worker_ids = itertools.count()
        # remote workers (either backend)
        self._remote = {}          # worker name -> RemoteWorkerHandle
        self.remote_attached = 0
        self.remote_detached = 0
        self.remote_completed = 0
        self.remote_requeued = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self):
        if self._running:
            raise FleetError("fleet already started")
        self._running = True
        self._stopping = False
        if self.backend == "thread":
            for _ in range(self.workers):
                name = "fleet-thread-%d" % next(self._worker_ids)
                thread = threading.Thread(target=self._thread_worker_main,
                                          args=(name,), daemon=True)
                self._heartbeat[name] = time.time()
                self._threads.append(thread)
                thread.start()
            return self
        import multiprocessing

        context = self.mp_context
        if isinstance(context, str):
            context = multiprocessing.get_context(context)
        self._context = context or multiprocessing.get_context()
        for _ in range(self.workers):
            self._spawn_process_worker()
        collector = threading.Thread(target=self._collector_main, daemon=True)
        feeder = threading.Thread(target=self._feeder_main, daemon=True)
        self._pump_threads = [collector, feeder]
        collector.start()
        feeder.start()
        return self

    def stop(self):
        """Stop workers; unfinished items come back as error results."""
        with self._lock:
            if not self._running:
                return
            self._stopping = True
            self._lock.notify_all()
        if self.backend == "thread":
            for thread in self._threads:
                thread.join(timeout=10.0)
            self._threads = []
        else:
            for name, channel in list(self._channels.items()):
                try:
                    channel.send(None)
                except (OSError, ValueError):
                    pass
            for thread in self._pump_threads:
                thread.join(timeout=10.0)
            self._pump_threads = []
            for name, (proc, conn) in list(self._procs.items()):
                proc.join(timeout=5.0)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5.0)
                conn.close()
            for name, channel in list(self._channels.items()):
                channel.close()
            self._procs = {}
            self._channels = {}
        for handle in list(self._remote.values()):
            # Their attach streams notice _stopping and exit on their own;
            # detaching here makes the outstanding items' fate immediate
            # rather than waiting on a handler thread's next wake-up.
            handle.detach(requeue=False)
        with self._lock:
            leftovers = list(self._inflight.values())
            self._inflight = {}
            while self._heap:
                leftovers.append(heapq.heappop(self._heap)[2])
            self._queued = {}
            self._running = False
            for item in leftovers:
                self._finish(item, None, "fleet stopped")

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    # ------------------------------------------------------------------ #
    # Submission and results
    # ------------------------------------------------------------------ #
    def submit(self, item_id, runner, batch, priority=(), trace=None):
        """Queue one batch; lower ``priority`` tuples are dispatched first.

        ``trace`` is an optional span context the executing worker
        resumes its ``simulate`` span from; it never affects results.
        """
        with self._lock:
            if not self._running or self._stopping:
                raise FleetError("fleet is not running; start() it first")
            item = _Item(next(self._seq), item_id, runner, batch,
                         tuple(priority), trace=trace)
            heapq.heappush(self._heap, (item.priority, item.seq, item))
            self._queued[item_id] = item
            self.submitted += 1
            self._lock.notify_all()
        return item.item_id

    def cancel(self, item_id):
        """Withdraw a queued item before any worker picks it up.

        Returns ``True`` when the item was still queued: it will never
        run and never produce a result — the caller must not wait for
        one.  Returns ``False`` once the item was dispatched (its result
        arrives through :meth:`poll` as usual) or the id is unknown.
        Used by the broker's cancellation path to hand un-started work
        back without perturbing anything a worker already holds.
        """
        with self._lock:
            item = self._queued.get(item_id)
            if item is None or item.delivered or item.seq in self._inflight:
                return False
            self._queued.pop(item_id, None)
            # Stale heap entries are skipped at pop time, exactly like a
            # promotion's superseded duplicates.
            item.delivered = True
            self.cancelled += 1
            return True

    def promote(self, item_id, priority):
        """Raise a queued item's priority; no-op once it is dispatched.

        Used by the broker when an urgent request subscribes to a batch a
        lazier request already enqueued: without this the shared batch
        would keep its original queue position and the urgent request
        would inherit the lazy one's completion latency.  Implemented as
        a lazy decrease-key: the better entry is pushed and the stale one
        is skipped at pop time.
        """
        priority = tuple(priority)
        with self._lock:
            item = self._queued.get(item_id)
            if item is None or item.delivered or priority >= item.priority:
                return False
            item.priority = priority
            heapq.heappush(self._heap, (priority, item.seq, item))
            self._lock.notify_all()
            return True

    def _pop_queued(self):
        """Next live queued item, skipping stale promotion duplicates.

        Called with the lock held; returns ``None`` when nothing is
        queued.
        """
        while self._heap:
            entry_priority, _, item = heapq.heappop(self._heap)
            if item.delivered or item.seq in self._inflight:
                continue  # duplicate of an already-dispatched entry
            if entry_priority != item.priority:
                continue  # superseded by a promotion
            self._queued.pop(item.item_id, None)
            return item
        return None

    # ------------------------------------------------------------------ #
    # Remote workers
    # ------------------------------------------------------------------ #
    def register_remote(self, name=None):
        """Attach a remote worker; its :class:`RemoteWorkerHandle`.

        ``name`` identifies the worker across reconnects: an agent
        re-attaching under a name that is still registered (its previous
        stream broke before the fleet noticed) evicts the old handle —
        latest attach wins, and the old handle's outstanding item is
        requeued through the normal retry path.
        """
        with self._lock:
            if not self._running or self._stopping:
                raise FleetError("fleet is not running; start() it first")
            name = str(name) if name else "remote-%d" % next(self._worker_ids)
            stale = self._remote.get(name)
        if stale is not None:
            stale.detach(requeue=True)
        with self._lock:
            if not self._running or self._stopping:
                raise FleetError("fleet is not running; start() it first")
            handle = RemoteWorkerHandle(self, name)
            self._remote[name] = handle
            self._heartbeat[name] = time.time()
            self.remote_attached += 1
            return handle

    def remote_handle(self, name):
        """The live handle registered under ``name``, or ``None``."""
        with self._lock:
            return self._remote.get(name)

    def remote_stats(self):
        """The remote-worker ledger for the ``/v1/metrics`` document."""
        now = time.monotonic()
        with self._lock:
            workers = {
                handle.name: {
                    "alive": True,
                    "last_seen_s": round(handle.idle_s(now), 3),
                    "executing": handle.executing,
                    "completed": handle.completed,
                }
                for handle in sorted(self._remote.values(),
                                     key=lambda h: h.name)
            }
            return {
                "attached": workers,
                "attached_total": self.remote_attached,
                "detached_total": self.remote_detached,
                "completed": self.remote_completed,
                "requeued": self.remote_requeued,
            }

    @property
    def capacity(self):
        """Workers that can hold an item at once: local plus remote."""
        return self.workers + len(self._remote)

    def reap_overdue_remotes(self, timeout_s):
        """Detach remote workers silent too long with an item outstanding.

        The attach stream's ping writes catch a cleanly-broken
        connection; this watchdog (run from the service pump) catches
        the rest — a worker whose host froze or vanished without
        resetting the TCP stream.  Detaching requeues the held item
        through the normal retry path.  Returns how many were reaped.
        """
        now = time.monotonic()
        with self._lock:
            overdue = [handle for handle in self._remote.values()
                       if handle.overdue(timeout_s, now)]
        for handle in overdue:
            handle.detach(requeue=True)
        return len(overdue)

    def poll(self, timeout=0.0):
        """Completed ``(item_id, result)`` pairs, oldest first.

        Blocks up to ``timeout`` seconds for the *first* result, then
        drains whatever else is ready without blocking.
        """
        out = []
        try:
            out.append(self._done.get(timeout=timeout) if timeout > 0
                       else self._done.get_nowait())
            while True:
                out.append(self._done.get_nowait())
        except queue.Empty:
            pass
        return out

    @property
    def pending(self):
        """Items submitted but neither completed nor cancelled."""
        return self.submitted - self.completed - self.cancelled

    def heartbeats(self, now=None):
        """Seconds since each worker was last seen alive."""
        now = time.time() if now is None else now
        with self._lock:
            return {name: now - seen
                    for name, seen in sorted(self._heartbeat.items())}

    def stats(self):
        return {
            "backend": self.backend,
            "workers": self.workers,
            "compute_slots": self.compute_slots,
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "pending": self.pending,
            "queued": len(self._queued),
            "executing": len(self._inflight),
            "retried": self.retried,
            "workers_restarted": self.restarted,
            "remote_workers": len(self._remote),
            "remote_completed": self.remote_completed,
            "remote_requeued": self.remote_requeued,
        }

    def _finish(self, item, result, error):
        """Deliver one item's result, exactly once (called under the lock).

        The once-guard matters at shutdown: stop() error-fails items whose
        worker outlived the join timeout, and that straggler thread may
        still complete the item afterwards — without the guard a caller
        would see two contradictory results for one item_id.
        """
        if item.delivered:
            return
        item.delivered = True
        if error is not None:
            # Match the executor's capture rows: first line in the result,
            # full detail available to whoever logs it.
            result = {"error": error.splitlines()[0]}
        self.completed += 1
        self._done.put((item.item_id, result))

    # ------------------------------------------------------------------ #
    # Thread backend
    # ------------------------------------------------------------------ #
    def _thread_worker_main(self, name):
        while True:
            with self._lock:
                item = None
                while not self._stopping:
                    item = self._pop_queued()
                    if item is not None:
                        break
                    self._heartbeat[name] = time.time()
                    self._lock.wait(timeout=self.heartbeat_s)
                if item is None:
                    return
                self._inflight[item.seq] = item
                self._heartbeat[name] = time.time()
            with self._compute_gate:
                result, error = _traced_capture(item.runner, item.batch,
                                                item.trace, name)
            with self._lock:
                self._inflight.pop(item.seq, None)
                self._heartbeat[name] = time.time()
                self._finish(item, result, error)

    # ------------------------------------------------------------------ #
    # Process backend
    # ------------------------------------------------------------------ #
    def _spawn_process_worker(self):
        name = "fleet-proc-%d" % next(self._worker_ids)
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        channel, shm_name = create_channel(parent_conn, self.ring_bytes)
        proc = self._context.Process(
            target=_process_worker_main,
            args=(name, child_conn, self.heartbeat_s, shm_name,
                  self.ring_bytes, obs_trace.sink_dir()),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the parent keeps only its own end
        self._procs[name] = (proc, parent_conn)
        self._channels[name] = channel
        self._heartbeat[name] = time.time()
        self._idle.add(name)
        return name

    def _feeder_main(self):
        """Assign heap items to idle workers; watch for worker death."""
        while True:
            with self._lock:
                if self._stopping:
                    return
                while self._idle:
                    item = self._pop_queued()
                    if item is None:
                        break
                    name = self._idle.pop()
                    channel = self._channels[name]
                    self._inflight[item.seq] = item
                    self._assigned[name] = item.seq
                    item.attempts += 1
                    try:
                        channel.send(pack_task(item.seq, item.runner,
                                               item.batch, item.trace))
                    except (OSError, ValueError):
                        self._reap_worker(name)
                    except Exception as exc:
                        # The item itself cannot be shipped (unpicklable
                        # runner or batch): fail it deterministically and
                        # keep both the worker and this thread alive.
                        self._inflight.pop(item.seq, None)
                        self._assigned.pop(name, None)
                        self._idle.add(name)
                        self._finish(
                            item, None,
                            "work item %s cannot be shipped to a process "
                            "worker: %s: %s" % (item.batch.label(),
                                                type(exc).__name__, exc))
                for name, (proc, _) in list(self._procs.items()):
                    if not proc.is_alive():
                        self._reap_worker(name)
                self._lock.wait(timeout=0.2)

    def _reap_worker(self, name):
        """Requeue (or fail) a dead worker's item; start a replacement.

        Called with the lock held.  A worker that died *between* items is
        simply replaced; one that died holding an item triggers the
        retry path.
        """
        proc, conn = self._procs.pop(name)
        conn.close()
        channel = self._channels.pop(name, None)
        if channel is not None:
            channel.close()  # the parent owns the segment: unlinks it too
        self._heartbeat.pop(name, None)
        self._idle.discard(name)
        seq = self._assigned.pop(name, None)
        if seq is not None:
            item = self._inflight.pop(seq, None)
            if item is not None:
                if item.attempts > self.max_retries:
                    self._finish(
                        item, None,
                        "worker died running %s (%d attempt(s)); giving up"
                        % (item.batch.label(), item.attempts))
                else:
                    self.retried += 1
                    heapq.heappush(self._heap,
                                   (item.priority, item.seq, item))
                    self._queued[item.item_id] = item
        if not self._stopping:
            self.restarted += 1
            self._spawn_process_worker()

    def _collector_main(self):
        """Drain worker messages into heartbeats and completed results."""
        from multiprocessing.connection import wait as connection_wait

        while True:
            with self._lock:
                if self._stopping:
                    return
                conns = {conn: (name, self._channels[name])
                         for name, (_, conn) in self._procs.items()}
            try:
                ready = connection_wait(list(conns), timeout=0.2)
            except OSError:
                # The feeder reaped a dead worker (closing its connection)
                # between our snapshot and the wait; rebuild and retry.
                continue
            for conn in ready:
                name, channel = conns[conn]
                try:
                    message = channel.recv()
                except (EOFError, OSError, ValueError):
                    # EOF/OSError: the worker died (possibly mid-message).
                    # ValueError: the feeder reaped it between our snapshot
                    # and this recv, releasing the channel's ring views.
                    # Reap now rather than spinning on the readable-at-EOF
                    # connection until the feeder notices.
                    with self._lock:
                        if name in self._procs:
                            self._procs[name][0].join(timeout=1.0)
                            self._reap_worker(name)
                            self._lock.notify_all()
                    continue
                kind = message[0]
                with self._lock:
                    if kind == "heartbeat":
                        _, name, seen = message
                        if name in self._procs:
                            self._heartbeat[name] = seen
                    elif kind == "result":
                        _, name, seq, result, error = message
                        if name in self._procs:
                            self._heartbeat[name] = time.time()
                            self._assigned.pop(name, None)
                            self._idle.add(name)
                            self._lock.notify_all()
                        item = self._inflight.pop(seq, None)
                        if item is not None:
                            self._finish(item, result, error)

    def __repr__(self):
        return ("WorkerFleet(backend=%r, workers=%d, pending=%d, "
                "completed=%d)" % (self.backend, self.workers, self.pending,
                                   self.completed))
