"""Cross-replica coordination: per-batch store leases.

One service process already dedups aggressively — coalescing, store
hits, in-flight merging.  Two *replicas* sharing one
:class:`~repro.analysis.store.ResultStore` have none of that: each
broker only sees its own in-flight work, so overlapping requests landing
on different replicas would simulate the same ``(namespace, point,
batch)`` twice.  This module closes that gap with advisory **lease
files**, reusing the ``flock`` discipline the store's own append path is
built on (proven multi-process-safe by
``tests/analysis/test_store_contention.py``):

* Before dispatching a store-miss batch to its fleet, a lease-enabled
  broker tries to :meth:`~LeaseManager.acquire` the batch's lease.  The
  winner simulates as usual and releases on delivery (the result is in
  the store by then).
* A replica that loses the race parks the batch and **polls the store**
  for the winner's result instead of dispatching — the store append is
  the hand-off channel, so no replica-to-replica connection exists.
* A lease from a crashed replica goes **stale** once its TTL passes
  without a refresh (live holders re-stamp their leases from the broker
  pump); any waiting replica then reclaims it and simulates the batch
  itself.

Correctness never depends on the leases: batch contents are pure
functions of ``(namespace, point, batch index)`` and the store append is
idempotent under its own lock, so a lost, expired or double-granted
lease can only cost duplicate work — never change a row.  That is what
keeps the protocol small: leases are an *efficiency* contract
(simulate-once across replicas), the store remains the only source of
truth.

On-disk protocol
----------------
``<root>/<namespace digest>/<point spawn key>.b<batch>.lease`` holds one
JSON record ``{"owner", "acquired_at", "ttl_s"}``.  Creation uses
``O_CREAT | O_EXCL`` (atomic on POSIX, NFS v3+ included for local use);
every subsequent read-modify step — ownership checks, refresh stamps,
stale reclaim, release — runs under ``flock`` on the lease file itself,
with an ``st_nlink`` re-check after acquiring the lock so a file
unlinked by a concurrent release is never resurrected.  A lease file
that cannot be parsed (a crash mid-write) is treated as stale and
reclaimed.
"""

import errno
import json
import logging
import os
import socket
import threading
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.obs import metrics as obs_metrics

__all__ = ["LeaseManager", "default_replica_id"]

_logger = logging.getLogger(__name__)

#: Lease-acquisition latency by outcome, in the process-global registry:
#: lease files live on a shared (often networked) filesystem, so this is
#: where cross-replica contention shows up as wall-clock.
_LEASE_SECONDS = obs_metrics.GLOBAL.histogram(
    "repro_lease_seconds",
    "Cross-replica lease acquisition latency by outcome.",
    labelnames=("result",))

#: Directory name used for the lease tree inside a store root.
LEASE_DIRNAME = "_leases"


def default_replica_id():
    """A replica identity unique across hosts and processes."""
    return "%s-%d-%x" % (socket.gethostname(), os.getpid(),
                         threading.get_ident() & 0xFFFF)


def _lock(fd):
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_EX)


def _unlock(fd):
    if fcntl is not None:
        fcntl.flock(fd, fcntl.LOCK_UN)


class LeaseManager:
    """Grant, refresh, reclaim and release per-batch store leases.

    Parameters
    ----------
    root:
        Directory the lease tree lives under — every replica sharing a
        store must point at the same directory (conventionally
        ``<store root>/_leases``; see :meth:`for_store`).
    owner:
        This replica's identity, written into every lease it takes
        (default: :func:`default_replica_id`).
    ttl_s:
        Seconds a lease stays valid after its last stamp.  Must
        comfortably exceed one batch's wall-clock plus the refresh
        cadence — an expired-but-alive holder is *correct* (the batch
        is just simulated twice) but wasteful.

    Thread-safe; the broker calls it under its own lock, the refresh
    may also run from a pump thread.
    """

    def __init__(self, root, owner=None, ttl_s=30.0):
        if not ttl_s > 0:
            raise ValueError("ttl_s must be positive")
        self.root = str(root)
        self.owner = owner or default_replica_id()
        self.ttl_s = float(ttl_s)
        self._mutex = threading.Lock()
        self._held = {}       # (digest, point_key, batch) -> lease path
        self._refreshed = 0.0
        self.acquired = 0     # leases this replica won (incl. reclaims)
        self.reclaimed_stale = 0
        self.contended = 0    # acquire attempts lost to a live holder
        self.released = 0
        self.lost = 0         # held leases found re-owned at refresh

    @classmethod
    def for_store(cls, store_root, owner=None, ttl_s=30.0):
        """The conventional manager for a store: ``<root>/_leases``."""
        return cls(os.path.join(str(store_root), LEASE_DIRNAME),
                   owner=owner, ttl_s=ttl_s)

    # ------------------------------------------------------------------ #
    def _path(self, digest, point_key, batch_index):
        name = "%s.b%d.lease" % ("-".join(str(int(w)) for w in point_key),
                                 int(batch_index))
        return os.path.join(self.root, str(digest), name)

    @staticmethod
    def _read_record(fd):
        """The parsed lease record behind ``fd``, or ``None`` if unusable."""
        try:
            blob = os.pread(fd, 4096, 0)
            record = json.loads(blob.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            return None
        if not isinstance(record, dict) or "owner" not in record:
            return None
        return record

    def _stamp(self, fd, now):
        """Overwrite ``fd`` with a fresh lease record owned by us."""
        record = {"owner": self.owner, "acquired_at": float(now),
                  "ttl_s": self.ttl_s}
        blob = json.dumps(record).encode("utf-8")
        os.ftruncate(fd, 0)
        os.pwrite(fd, blob, 0)

    @staticmethod
    def _expired(record, now):
        """Whether a parsed (or unparseable) lease record is stale."""
        if record is None:
            return True
        try:
            acquired_at = float(record["acquired_at"])
            ttl_s = float(record.get("ttl_s", 0.0))
        except (KeyError, TypeError, ValueError):
            return True
        return now > acquired_at + ttl_s

    # ------------------------------------------------------------------ #
    def acquire(self, digest, point_key, batch_index, now=None):
        """Try to take the lease; ``True`` when this replica holds it.

        Idempotent for a lease we already hold (it is re-stamped).  A
        fresh lease owned by someone else returns ``False`` — the caller
        should subscribe to the winner's store result and retry after
        :meth:`holder` reports it expired.  A stale lease is reclaimed
        in place (counted in :attr:`reclaimed_stale`).
        """
        t0 = time.perf_counter()
        won = self._acquire(digest, point_key, batch_index, now=now)
        _LEASE_SECONDS.labels(
            result="acquired" if won else "contended").observe(
                time.perf_counter() - t0)
        return won

    def _acquire(self, digest, point_key, batch_index, now=None):
        now = time.time() if now is None else now
        key = (str(digest), tuple(int(w) for w in point_key),
               int(batch_index))
        path = self._path(*key)
        directory = os.path.dirname(path)
        while True:
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
            except FileNotFoundError:
                os.makedirs(directory, exist_ok=True)
                continue
            except FileExistsError:
                pass
            else:
                # Fresh file: we created it, stamp it under the lock so a
                # concurrent examiner never reads a half-written record.
                try:
                    _lock(fd)
                    try:
                        self._stamp(fd, now)
                    finally:
                        _unlock(fd)
                finally:
                    os.close(fd)
                with self._mutex:
                    self._held[key] = path
                    self.acquired += 1
                return True
            # The file exists: examine (and maybe reclaim) it under flock.
            try:
                fd = os.open(path, os.O_RDWR)
            except FileNotFoundError:
                continue  # released between our attempts; retry the create
            try:
                _lock(fd)
                try:
                    if os.fstat(fd).st_nlink == 0:
                        continue  # unlinked while we waited for the lock
                    record = self._read_record(fd)
                    if record is not None and record.get("owner") == self.owner:
                        self._stamp(fd, now)
                        with self._mutex:
                            self._held[key] = path
                        return True
                    if not self._expired(record, now):
                        with self._mutex:
                            self.contended += 1
                        return False
                    if record is None and \
                            now - os.fstat(fd).st_mtime <= self.ttl_s:
                        # An unreadable record in a young file is a lease
                        # *mid-creation*: O_CREAT|O_EXCL makes the file
                        # visible before its creator wins the flock and
                        # stamps it, so an examiner that grabs the lock
                        # first reads empty bytes.  Reclaiming would hand
                        # the lease to both replicas — contend instead.
                        # A crashed creator's empty file ages past the
                        # TTL and is then reclaimed like any stale lease.
                        with self._mutex:
                            self.contended += 1
                        return False
                    # Stale (or unparseable): reclaim in place.
                    self._stamp(fd, now)
                    with self._mutex:
                        self._held[key] = path
                        self.acquired += 1
                        self.reclaimed_stale += 1
                    _logger.info(
                        "reclaimed stale lease %s (was %r)", path,
                        (record or {}).get("owner"))
                    return True
                finally:
                    _unlock(fd)
            finally:
                os.close(fd)

    def holder(self, digest, point_key, batch_index, now=None):
        """The live lease record for one batch, or ``None``.

        ``None`` means free-or-stale: an :meth:`acquire` by this replica
        would (very likely) succeed.  Adds ``expires_in_s`` so waiters
        can pace their polling.
        """
        now = time.time() if now is None else now
        path = self._path(digest, point_key, batch_index)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return None
        try:
            _lock(fd)
            try:
                record = self._read_record(fd)
            finally:
                _unlock(fd)
        finally:
            os.close(fd)
        if self._expired(record, now):
            return None
        record = dict(record)
        record["expires_in_s"] = (float(record["acquired_at"])
                                  + float(record["ttl_s"]) - now)
        return record

    def refresh(self, now=None, min_interval_s=None):
        """Re-stamp every held lease; the number refreshed.

        Throttled: calls within ``min_interval_s`` (default ``ttl / 3``)
        of the last refresh are no-ops, so the broker can call this from
        every pump without thinking about cadence.  A held lease found
        re-owned by someone else (we stalled past the TTL and they
        reclaimed) is dropped from the held set and counted in
        :attr:`lost` — the winner's result will land in the store just
        the same.
        """
        now = time.time() if now is None else now
        interval = self.ttl_s / 3.0 if min_interval_s is None \
            else float(min_interval_s)
        with self._mutex:
            if now - self._refreshed < interval:
                return 0
            self._refreshed = now
            held = dict(self._held)
        refreshed = 0
        for key, path in held.items():
            try:
                fd = os.open(path, os.O_RDWR)
            except OSError:
                with self._mutex:
                    self._held.pop(key, None)
                    self.lost += 1
                continue
            try:
                _lock(fd)
                try:
                    record = self._read_record(fd)
                    if os.fstat(fd).st_nlink == 0 or record is None \
                            or record.get("owner") != self.owner:
                        with self._mutex:
                            self._held.pop(key, None)
                            self.lost += 1
                        continue
                    self._stamp(fd, now)
                    refreshed += 1
                finally:
                    _unlock(fd)
            finally:
                os.close(fd)
        return refreshed

    def release(self, digest, point_key, batch_index):
        """Unlink a lease this replica holds; ``True`` when it was ours.

        Never touches a lease owned by someone else, and quietly ignores
        one that is already gone — release must be safe to call from
        every delivery path without bookkeeping at the call site.
        """
        key = (str(digest), tuple(int(w) for w in point_key),
               int(batch_index))
        with self._mutex:
            path = self._held.pop(key, None)
        if path is None:
            return False
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return False
        try:
            _lock(fd)
            try:
                record = self._read_record(fd)
                if os.fstat(fd).st_nlink == 0 or record is None \
                        or record.get("owner") != self.owner:
                    return False  # reclaimed from us; not ours to unlink
                try:
                    os.unlink(path)
                except OSError as exc:  # pragma: no cover - races only
                    if exc.errno != errno.ENOENT:
                        raise
                with self._mutex:
                    self.released += 1
                return True
            finally:
                _unlock(fd)
        finally:
            os.close(fd)

    def release_all(self):
        """Release every held lease (shutdown path); count released."""
        with self._mutex:
            keys = list(self._held)
        count = 0
        for key in keys:
            if self.release(*key):
                count += 1
        return count

    # ------------------------------------------------------------------ #
    @property
    def held(self):
        """How many leases this replica currently believes it holds."""
        with self._mutex:
            return len(self._held)

    def stats(self):
        """Counters for the ``/v1/metrics`` cluster ledger."""
        with self._mutex:
            return {
                "owner": self.owner,
                "ttl_s": self.ttl_s,
                "held": len(self._held),
                "acquired": self.acquired,
                "contended": self.contended,
                "reclaimed_stale": self.reclaimed_stale,
                "released": self.released,
                "lost": self.lost,
            }

    def __repr__(self):
        return "LeaseManager(%r, owner=%r, held=%d)" % (
            self.root, self.owner, self.held)
