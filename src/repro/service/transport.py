"""Zero-copy worker transport: shared-memory rings with pickled headers.

The process-backend fleet originally shipped every task and result through
``multiprocessing`` pipes, which means one full pickle *copy* of each
payload on the way in and another on the way out.  Batch-heavy payloads —
fused groups, runner results carrying numpy arrays — are dominated by
large contiguous buffers, exactly the part ``pickle`` protocol 5 can hand
over *out of band*.  This module routes those buffers through a
per-worker :class:`multiprocessing.shared_memory.SharedMemory` segment
instead, so the pipe carries only the pickled object skeleton (the
"header") plus ``(offset, size)`` descriptors into the ring:

* :class:`ShmRing` — a single-writer bump allocator over one region of
  the segment.  Offsets travel in the descriptors; the writer wraps to
  the start when the tail cannot fit a buffer.
* :class:`ShmChannel` — a duplex channel over one pipe plus one segment
  split into two rings (one per direction).  ``send`` pickles with
  ``buffer_callback`` and writes each out-of-band buffer into the tx
  ring; ``recv`` copies the described bytes out *before* unpickling, so
  the returned objects never alias the ring.
* :class:`PipeChannel` — the plain-pipe fallback (same interface) used
  when shared memory is unavailable.

Safety model
------------
The ring has no read cursor: it relies on the fleet's depth-1 dispatch
protocol, under which each direction of a worker's channel carries **at
most one in-flight payload** (the parent sends a worker its next task
only after consuming the previous result, and heartbeats carry no
buffers).  A payload is therefore always consumed before the writer can
wrap over it.  Buffers larger than a ring — and the rare non-contiguous
ones — fall back to inline bytes in the descriptor (or to a plain
in-band pickle), so oversized payloads degrade to the old copying path
instead of failing.
"""

import base64
import pickle

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - ancient/embedded pythons
    _shared_memory = None

__all__ = ["DEFAULT_RING_BYTES", "ShmRing", "ShmChannel", "PipeChannel",
           "create_channel", "attach_channel", "encode_payload",
           "decode_payload"]

#: Per-direction ring capacity.  4 MiB holds the largest fused-group
#: payload the default workloads produce with room to spare; bigger
#: payloads transparently fall back to inline pipe bytes.
DEFAULT_RING_BYTES = 1 << 22


class ShmRing:
    """Single-writer bump allocator over one shared-memory region.

    The writer owns ``_head`` locally (it never travels); readers are
    told where to look by the ``(offset, size)`` descriptors the channel
    sends alongside each header.  See the module docstring for why no
    read cursor is needed.
    """

    __slots__ = ("_buf", "size", "_head")

    def __init__(self, buf):
        self._buf = buf
        self.size = len(buf)
        self._head = 0

    def write(self, raw):
        """Copy ``raw`` (a bytes-like memoryview) in; its offset, or
        ``None`` when the buffer can never fit."""
        nbytes = raw.nbytes
        if nbytes > self.size:
            return None
        if self._head + nbytes > self.size:
            self._head = 0
        offset = self._head
        self._buf[offset:offset + nbytes] = raw
        self._head = offset + nbytes
        return offset

    def read(self, offset, nbytes):
        """An owned bytes copy of the described region (never a view)."""
        if offset < 0 or offset + nbytes > self.size:
            raise ValueError(
                "descriptor (%d, %d) exceeds the %d-byte ring"
                % (offset, nbytes, self.size))
        return bytes(self._buf[offset:offset + nbytes])


class ShmChannel:
    """Duplex pickle channel: pipe for headers, shared memory for buffers.

    Build the parent side with :meth:`create` and the child side with
    :meth:`attach` — the two halves of the segment swap roles so each
    side writes its own tx ring.  Wire format per message: ``(header,
    descriptors)`` where ``header`` is the protocol-5 pickle skeleton and
    each descriptor is ``(offset, nbytes)`` into the peer's rx ring or
    ``("inline", bytes)`` for buffers that did not fit.  ``(header,
    None)`` marks a plain in-band pickle (the non-contiguous-buffer
    fallback).
    """

    def __init__(self, conn, shm, tx_region, rx_region, owner):
        self.conn = conn
        self._shm = shm
        self.name = shm.name
        self._owner = owner
        self._tx = ShmRing(shm.buf[tx_region[0]:tx_region[1]])
        self._rx = ShmRing(shm.buf[rx_region[0]:rx_region[1]])

    @classmethod
    def create(cls, conn, size=DEFAULT_RING_BYTES):
        """Parent side: allocate the segment (tx first half, rx second)."""
        if _shared_memory is None:
            raise OSError("multiprocessing.shared_memory is unavailable")
        shm = _shared_memory.SharedMemory(create=True, size=2 * size)
        return cls(conn, shm, (0, size), (size, 2 * size), owner=True)

    @classmethod
    def attach(cls, conn, name, size=DEFAULT_RING_BYTES):
        """Child side: attach by name with the ring roles swapped."""
        if _shared_memory is None:
            raise OSError("multiprocessing.shared_memory is unavailable")
        # The attaching side must not register the segment with a resource
        # tracker: only the creating parent unlinks it, so an attach-side
        # registration either double-books a shared tracker (stderr noise
        # when the parent's unlink unregisters the now-missing entry) or,
        # with a per-process tracker, unlinks a segment the parent still
        # uses when this worker exits.  ``SharedMemory`` grows a ``track``
        # flag only in 3.13, so suppress the registration call directly;
        # attach runs once in the worker's startup, before other threads.
        from multiprocessing import resource_tracker

        registered = resource_tracker.register
        resource_tracker.register = lambda *_args, **_kwargs: None
        try:
            shm = _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = registered
        return cls(conn, shm, (size, 2 * size), (0, size), owner=False)

    def send(self, obj):
        """Pickle ``obj``; large buffers ride the tx ring, not the pipe."""
        buffers = []
        try:
            header = pickle.dumps(obj, protocol=5,
                                  buffer_callback=buffers.append)
            descriptors = []
            for buffer in buffers:
                raw = buffer.raw()
                offset = self._tx.write(raw)
                if offset is None:
                    descriptors.append(("inline", raw.tobytes()))
                else:
                    descriptors.append((offset, raw.nbytes))
        except BufferError:
            # A non-contiguous out-of-band buffer: fall back to one plain
            # in-band pickle rather than reasoning about strides.
            self.conn.send((pickle.dumps(obj, protocol=5), None))
            return
        self.conn.send((header, descriptors))

    def recv(self):
        header, descriptors = self.conn.recv()
        if descriptors is None:
            return pickle.loads(header)
        buffers = []
        for descriptor in descriptors:
            if descriptor[0] == "inline":
                buffers.append(descriptor[1])
            else:
                offset, nbytes = descriptor
                buffers.append(self._rx.read(offset, nbytes))
        return pickle.loads(header, buffers=buffers)

    def close(self):
        """Release the mapping; the owning (parent) side also unlinks."""
        for attr in ("_tx", "_rx"):
            ring = getattr(self, attr, None)
            if ring is not None:
                ring._buf.release()
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass

    def __repr__(self):
        return "ShmChannel(%s, owner=%r)" % (self.name, self._owner)


class PipeChannel:
    """Plain-pipe channel with the :class:`ShmChannel` interface."""

    name = None

    def __init__(self, conn):
        self.conn = conn

    def send(self, obj):
        self.conn.send(obj)

    def recv(self):
        return self.conn.recv()

    def close(self):
        pass

    def __repr__(self):
        return "PipeChannel(%r)" % (self.conn,)


def encode_payload(obj):
    """Pickle ``obj`` into a JSON-safe base64 string.

    The wire format of the remote-worker work channel
    (:mod:`repro.service.worker`): work items are already picklable
    ``(runner, batch)`` pairs — the exact objects the process fleet
    ships over its pipes — so the HTTP boundary reuses the same
    serialisation, wrapped in base64 so it rides a JSON line.

    Trust model: unpickling executes arbitrary code, exactly like the
    process fleet's pipes.  A worker agent must only ever connect to a
    service it trusts (the daemon binds localhost by default; a
    cross-host deployment is expected to sit on a private network).
    """
    return base64.b64encode(pickle.dumps(obj, protocol=5)).decode("ascii")


def decode_payload(text):
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def pack_task(seq, runner, batch, trace=None):
    """The process-fleet task tuple: ``(seq, runner, batch[, trace])``.

    ``trace`` is an optional :mod:`repro.obs.trace` context string
    (``"trace_id:span_id"``); it rides the tuple only when tracing is
    on, so untraced deployments keep the historical 3-tuple shape.
    Telemetry context never influences the work itself.
    """
    if trace is None:
        return (seq, runner, batch)
    return (seq, runner, batch, trace)


def unpack_task(task):
    """Inverse of :func:`pack_task`; tolerates both tuple shapes.

    Returns ``(seq, runner, batch, trace)`` with ``trace`` ``None``
    for 3-tuples, so a worker built at either end of the upgrade
    understands the other side's frames.
    """
    seq, runner, batch = task[:3]
    trace = task[3] if len(task) > 3 else None
    return seq, runner, batch, trace


def create_channel(conn, size=DEFAULT_RING_BYTES):
    """The parent side of the best available channel over ``conn``.

    Returns ``(channel, shm_name)``; ``shm_name`` is ``None`` when shared
    memory is unavailable (the worker then attaches a plain
    :class:`PipeChannel`), so the degradation is negotiated through the
    spawn arguments rather than at runtime.
    """
    if size and _shared_memory is not None:
        try:
            channel = ShmChannel.create(conn, size)
            return channel, channel.name
        except OSError:
            pass
    return PipeChannel(conn), None


def attach_channel(conn, shm_name, size=DEFAULT_RING_BYTES):
    """The child side matching :func:`create_channel`'s result."""
    if shm_name is None:
        return PipeChannel(conn)
    return ShmChannel.attach(conn, shm_name, size)
