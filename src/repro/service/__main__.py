"""Run the characterisation service as a localhost daemon.

::

    python -m repro.service --store bercurves/ [--port 8423] [--workers 4]

The announce line (``listening on http://...``) is printed once the
socket is bound — supervisors and the CI smoke job parse it to learn the
port when ``--port 0`` picked a free one.  ``POST /v1/shutdown`` stops
the daemon cleanly (``?drain=1`` finishes in-flight requests first);
Ctrl-C works too.

Admission control is off by default (the pre-hardening unbounded
behaviour); ``--max-inflight-batches``, ``--max-requests`` and
``--quota RATE[:BURST]`` bound it — see
:class:`repro.service.broker.CharacterisationBroker`.

Scale-out: ``--lease-ttl-s`` enables cross-replica store leases (several
daemons sharing one ``--store`` never simulate the same batch
concurrently), and remote hosts attach extra workers with ``python -m
repro.service.worker --connect URL`` — see :mod:`repro.service.cluster`
and :mod:`repro.service.worker`.
"""

import argparse
import os
import sys
import time

from repro.obs import configure_logging
from repro.obs import trace as obs_trace
from repro.service.api import Service, serve
from repro.service.broker import ClientQuota


def _quota(text):
    """Parse ``RATE[:BURST]`` (packets/s, burst packets) into a quota."""
    rate, _, burst = text.partition(":")
    try:
        return ClientQuota(float(rate),
                           float(burst) if burst else float(rate))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            "expected RATE[:BURST] with positive numbers; got %r (%s)"
            % (text, exc))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived BER characterisation service: accepts "
                    "Scenario+axes requests over HTTP, dedupes them against "
                    "a ResultStore, schedules only the misses across a "
                    "worker fleet and streams rows back as JSON lines.")
    parser.add_argument("--store", required=True,
                        help="ResultStore directory (created on first write)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: localhost only)")
    parser.add_argument("--port", type=int, default=8423,
                        help="TCP port; 0 picks a free one (default: 8423)")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet worker count (default: CPU count)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread", help="fleet backend")
    parser.add_argument("--max-inflight-batches", type=int, default=None,
                        help="admission cap on batches awaiting results; "
                             "past it, submits answer 429 + Retry-After "
                             "(default: unbounded)")
    parser.add_argument("--max-requests", type=int, default=None,
                        help="admission cap on concurrent in-flight "
                             "requests (default: unbounded)")
    parser.add_argument("--quota", type=_quota, default=None,
                        metavar="RATE[:BURST]",
                        help="per-client token-bucket packet quota: refill "
                             "rate in packets/s and optional burst size "
                             "(default: burst=rate)")
    parser.add_argument("--heartbeat-s", type=float, default=10.0,
                        help="keep-alive cadence of the row stream; also "
                             "bounds disconnect detection (default: 10)")
    parser.add_argument("--lease-ttl-s", type=float, default=None,
                        metavar="SECONDS",
                        help="enable cross-replica store leases with this "
                             "TTL: replicas sharing --store never simulate "
                             "the same batch concurrently (default: off; "
                             "see repro.service.cluster)")
    parser.add_argument("--replica-id", default=None,
                        help="this replica's identity in lease files and "
                             "metrics (default: hostname-pid derived)")
    parser.add_argument("--remote-timeout-s", type=float, default=60.0,
                        help="detach a remote worker holding an item after "
                             "this long without a heartbeat (default: 60)")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="write request/batch trace spans as JSON lines "
                             "into this directory (read them back with "
                             "python -m repro.obs.trace; default: "
                             "$REPRO_TRACE_DIR, else tracing off)")
    parser.add_argument("--log-level", default="warning",
                        help="root logging level for the repro.* loggers "
                             "(debug/info/warning/error; default: warning, "
                             "so supervisors parsing the announce line see "
                             "it first)")
    parser.add_argument("--log-file", default=None, metavar="PATH",
                        help="append logs to PATH instead of stderr")
    args = parser.parse_args(argv)

    configure_logging(args.log_level, args.log_file)
    trace_dir = args.trace_dir or os.environ.get("REPRO_TRACE_DIR")
    if trace_dir:
        obs_trace.configure(trace_dir, proc="service")

    service = Service(args.store, workers=args.workers, backend=args.backend,
                      max_inflight_batches=args.max_inflight_batches,
                      max_requests=args.max_requests, quota=args.quota,
                      lease_ttl_s=args.lease_ttl_s,
                      replica_id=args.replica_id,
                      remote_timeout_s=args.remote_timeout_s)
    service.start()
    server = serve(service, host=args.host, port=args.port,
                   heartbeat_s=args.heartbeat_s)
    host, port = server.server_address[:2]
    print("repro characterisation service listening on http://%s:%d "
          "(store: %s, %d %s worker(s))"
          % (host, port, service.store.root, service.fleet.workers,
             service.fleet.backend), flush=True)
    if trace_dir:
        # After the announce line: supervisors parse the first line only.
        print("tracing to %s (inspect with python -m repro.obs.trace)"
              % trace_dir, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.stop()
        # Attached remote workers must hear their ``bye`` before the
        # process exits, or they cannot tell a graceful stop from a
        # crash and burn their re-attach retries against a dead port.
        # Each attach handler leaves ``server.attach_channels`` only
        # after its bye is written and flushed.
        deadline = time.time() + 5.0
        while server.attach_channels and time.time() < deadline:
            time.sleep(0.05)
        server.server_close()
        print("repro characterisation service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
