"""Run the characterisation service as a localhost daemon.

::

    python -m repro.service --store bercurves/ [--port 8423] [--workers 4]

The announce line (``listening on http://...``) is printed once the
socket is bound — supervisors and the CI smoke job parse it to learn the
port when ``--port 0`` picked a free one.  ``POST /v1/shutdown`` stops
the daemon cleanly; Ctrl-C works too.
"""

import argparse
import sys

from repro.service.api import Service, serve


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived BER characterisation service: accepts "
                    "Scenario+axes requests over HTTP, dedupes them against "
                    "a ResultStore, schedules only the misses across a "
                    "worker fleet and streams rows back as JSON lines.")
    parser.add_argument("--store", required=True,
                        help="ResultStore directory (created on first write)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: localhost only)")
    parser.add_argument("--port", type=int, default=8423,
                        help="TCP port; 0 picks a free one (default: 8423)")
    parser.add_argument("--workers", type=int, default=None,
                        help="fleet worker count (default: CPU count)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread", help="fleet backend")
    args = parser.parse_args(argv)

    service = Service(args.store, workers=args.workers, backend=args.backend)
    service.start()
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print("repro characterisation service listening on http://%s:%d "
          "(store: %s, %d %s worker(s))"
          % (host, port, service.store.root, service.fleet.workers,
             service.fleet.backend), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
        print("repro characterisation service stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
