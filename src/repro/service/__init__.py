"""The long-lived characterisation service.

PRs 2–4 built batch machinery: declare a
:class:`~repro.analysis.scenario.Scenario`, run it through an
:class:`~repro.analysis.scenario.Experiment`, persist batches in a
:class:`~repro.analysis.store.ResultStore`.  This package turns that
into the shape a serve-curves-on-demand deployment takes — an always-on
broker in front of the store and a persistent worker fleet:

* :mod:`repro.service.requests` — the frozen, canonically hashable
  :class:`CharacterisationRequest` (scenario + axes + stop rule +
  priority/deadline hints); identical in-flight asks coalesce.
* :mod:`repro.service.broker` — the
  :class:`CharacterisationBroker`: answers each needed batch from the
  cheapest source (coalesced request, store hit, another request's
  in-flight batch, and only then the fleet) and streams rows back
  through :class:`RequestTicket` as points finish.
* :mod:`repro.service.fleet` — the :class:`WorkerFleet`: long-lived
  thread or process workers pulling *batch-granular* priority-ordered
  items, with heartbeats and retry-on-worker-death.
* :mod:`repro.service.api` — the :class:`Service` front object plus the
  stdlib-only localhost HTTP/JSON-lines endpoint (``python -m
  repro.service`` runs it as a daemon).
* :mod:`repro.service.cluster` — cross-replica scale-out:
  :class:`LeaseManager` store leases let several replicas share one
  store without duplicating work, and :mod:`repro.service.worker`'s
  :class:`WorkerAgent` (``python -m repro.service.worker``) attaches
  remote hosts to a service's fleet over HTTP.

Everything rides the analysis layer's determinism: batch ``k`` of a
point is a pure function of ``(spec, point, k)``, so deduplication,
retries, priorities and worker scheduling can only change *where* a
batch's bytes come from — service rows are bit-for-bit the rows of a
serial ``Experiment.run``.

Quick start::

    from repro.analysis import ResultStore, Scenario, StopRule
    from repro.service import CharacterisationRequest, Service

    with Service(ResultStore("bercurves/"), workers=4) as service:
        ticket = service.submit(CharacterisationRequest(
            scenario=Scenario(decoder="bcjr", packet_bits=1704),
            axes={"rate_mbps": [24], "snr_db": [4.0, 5.0, 6.0, 7.0]},
            stop=StopRule(rel_half_width=0.25, min_errors=30,
                          ber_floor=1e-4, max_packets=96),
            seed=23,
        ))
        for row in ticket.rows():          # streams as points finish
            print(row["snr_db"], row["ber"], row["stop_reason"])
"""

from repro.service.api import (
    RetryPolicy,
    Service,
    ServiceHTTPError,
    cancel_request,
    fetch_json,
    serve,
    stream_request,
)
from repro.service.broker import (
    CharacterisationBroker,
    ClientQuota,
    RequestTicket,
    ServiceError,
    ServiceSaturated,
)
from repro.service.cluster import LeaseManager
from repro.service.fleet import FleetError, RemoteWorkerHandle, WorkerFleet
from repro.service.requests import CharacterisationRequest
from repro.service.worker import WorkerAgent

__all__ = [
    "CharacterisationBroker",
    "CharacterisationRequest",
    "ClientQuota",
    "FleetError",
    "LeaseManager",
    "RemoteWorkerHandle",
    "RequestTicket",
    "RetryPolicy",
    "Service",
    "ServiceError",
    "ServiceHTTPError",
    "ServiceSaturated",
    "WorkerAgent",
    "WorkerFleet",
    "cancel_request",
    "fetch_json",
    "serve",
    "stream_request",
]
