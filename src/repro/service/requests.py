"""Characterisation requests: the service's declarative unit of work.

A :class:`CharacterisationRequest` names everything the long-lived
service needs to serve a curve: the link :class:`Scenario`, the sweep
axes and workload constants, the master seed, the :class:`StopRule`
depth target, the batch quantum — plus the *service* knobs a batch
:class:`~repro.analysis.scenario.Experiment` never needed: a priority
and a deadline hint for the broker's work queue.

The request is frozen and canonically hashable (:meth:`request_key`), so
two clients asking the same question at the same time coalesce onto one
in-flight computation, and it round-trips through JSON
(:meth:`to_dict` / :meth:`from_dict`) so the HTTP front door and the
in-process API accept exactly the same shape.

Identity versus namespace
-------------------------
:meth:`request_key` is the *request* identity: everything that decides
the rows, including the stop rule, budget and exact axis grid — two
requests differing only in priority or deadline still coalesce.
:meth:`store_digest` is the *store namespace* the request's batches are
filed under — deliberately independent of the stop rule and the axis
values, which is what lets overlapping requests (different SNR windows,
different depth targets) share every batch they have in common.
"""

import hashlib
import json
from dataclasses import dataclass, field, fields

import numpy as np

from repro.analysis.adaptive import StopRule
from repro.analysis.scenario import Experiment, Scenario, is_scenario_like
from repro.analysis.sweep import SweepSpec


def resolve_runner(name):
    """Resolve a *named* chunk-runner a request may ask for.

    Requests travel over HTTP, so a runner cannot be an arbitrary
    callable — it is a name from this whitelist, resolved lazily on the
    serving side.  ``None`` selects the default link BER runner.  The
    name is part of the request key (different runners produce different
    rows) and, via the experiment's qualified runner name, of the store
    namespace.
    """
    if name is None:
        return None
    if name == "rate_adapt":
        from repro.mac.rateadapt.closedloop import run_rate_adapt_batch

        return run_rate_adapt_batch
    raise ValueError(
        "unknown runner name %r (known: rate_adapt, or None for the "
        "default link runner)" % (name,))


def scenario_from_dict(data):
    """Rebuild the right scenario class from its serialised form.

    Dispatches on the optional ``"kind"`` tag: absent or ``"link"`` means
    the classic :class:`Scenario`; ``"rate_adapt"`` the closed-loop
    :class:`~repro.mac.rateadapt.scenario.RateAdaptScenario`.
    """
    data = dict(data)
    kind = data.get("kind", "link")
    if kind == "link":
        data.pop("kind", None)
        return Scenario.from_dict(data)
    if kind == "rate_adapt":
        from repro.mac.rateadapt.scenario import RateAdaptScenario

        return RateAdaptScenario.from_dict(data)
    raise ValueError("unknown scenario kind %r (known: link, rate_adapt)"
                     % (kind,))


def _plain(value):
    """Coerce values to their canonical JSON shapes so requests hash
    faithfully.

    ``SweepSpec`` happily sweeps ``np.arange(...)`` axes and tuple
    values, so the service must accept them too — but the canonical
    request form is JSON, and value *types* are part of both the request
    key and the store's seed-derivation tokens.  Normalising up front
    (numpy scalars to Python scalars, tuples and arrays to lists) keeps
    one invariant: two requests with equal ``request_key()`` describe
    equal sweeps, whether they were built in process or round-tripped
    through the HTTP body.  Leaving tuples intact would break it — the
    key (via JSON) would collapse ``(1, 2)`` and ``[1, 2]`` while the
    seed derivation distinguished them.
    """
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, dict):
        return {name: _plain(item) for name, item in value.items()}
    return value


@dataclass(frozen=True, eq=False)
class CharacterisationRequest:
    """One curve ask: scenario + grid + depth target + scheduling hints.

    Parameters
    ----------
    scenario:
        The declarative :class:`Scenario` under test (object-valued
        fields are rejected: the service must be able to hash, persist
        and ship the request).
    axes:
        Mapping of axis name to the operating-point values to
        characterise (e.g. ``{"snr_db": [4.0, 5.0, 6.0]}``).
    stop:
        The :class:`StopRule` measurement-depth target shared by every
        point.
    constants:
        Extra workload constants merged into the sweep spec
        (``batch_size`` and friends).  Must be JSON-representable.
    seed:
        Master seed (a plain int).  Unlike ``SweepSpec``, the service
        refuses ``None``: fresh OS entropy would defeat both the store
        and request coalescing.
    batch_packets:
        Adaptive batch quantum — the dedup/chunk-invariance unit.
    budget:
        Optional global packet budget for this request's trajectory.
    priority:
        Work-queue priority; *lower runs first* (0 is the default lane).
        Scheduling only — never part of the rows or the request key.
    deadline_s:
        Optional soft deadline hint in seconds; among equal priorities
        the broker dispatches tighter deadlines first.  Scheduling only.
    client_id:
        Optional client name the broker's per-client token-bucket packet
        quota is charged against at admission (``None`` shares the
        anonymous bucket when a quota is configured).  Scheduling only —
        like priority, it is never part of the rows or the request key,
        so identical asks from different clients still coalesce (a
        coalesced ask adds no work and is never charged).
    runner:
        Optional *named* chunk-runner (see :func:`resolve_runner`):
        ``None`` for the default link BER runner, ``"rate_adapt"`` for
        closed-loop rate-adaptation trajectories.  Part of the request
        key (a different runner answers a different question) but
        omitted from the serialised form when ``None``, so every
        pre-existing request key is unchanged.  A broker-level runner
        override, when configured, still wins — that knob exists for
        test harnesses that stub the simulation out entirely.
    """

    scenario: object
    axes: object
    stop: object
    constants: object = field(default_factory=dict)
    seed: int = 0
    batch_packets: int = 32
    budget: object = None
    priority: int = 0
    deadline_s: object = None
    client_id: object = None
    runner: object = None

    def __post_init__(self):
        if not is_scenario_like(self.scenario):
            raise TypeError(
                "scenario must implement the Scenario protocol (to_dict, "
                "content_hash, params, is_declarative); got %r"
                % (self.scenario,))
        if not self.scenario.is_declarative:
            self.scenario.to_dict()  # raises naming the offending field
        try:
            axes = {str(name): [_plain(value) for value in values]
                    for name, values in dict(self.axes).items()}
        except (TypeError, ValueError):
            raise TypeError(
                "axes must be a mapping of axis name to values; got %r"
                % (self.axes,)) from None
        if not axes or not all(axes.values()):
            raise ValueError("axes must name at least one axis with at "
                             "least one value; got %r" % (self.axes,))
        object.__setattr__(self, "axes", axes)
        if not isinstance(self.stop, StopRule):
            raise TypeError("stop must be a StopRule; got %r" % (self.stop,))
        object.__setattr__(self, "constants", _plain(dict(self.constants or {})))
        if isinstance(self.seed, np.integer):
            object.__setattr__(self, "seed", int(self.seed))
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise TypeError(
                "seed must be a plain int (the service cannot coalesce or "
                "persist fresh-entropy requests); got %r" % (self.seed,))
        if int(self.batch_packets) < 1:
            raise ValueError("batch_packets must be positive")
        object.__setattr__(self, "batch_packets", int(self.batch_packets))
        if self.budget is not None:
            budget = _plain(self.budget)
            if not isinstance(budget, int) or isinstance(budget, bool) \
                    or budget < 1:
                raise ValueError(
                    "budget must be a positive integer packet count or "
                    "None; got %r" % (self.budget,))
            object.__setattr__(self, "budget", budget)
        if self.budget is None and self.stop.max_packets is None:
            raise ValueError(
                "unbounded request: give the StopRule a max_packets cap or "
                "the request a budget")
        if isinstance(self.priority, bool) or not isinstance(self.priority, int):
            raise TypeError("priority must be an int (lower runs first); "
                            "got %r" % (self.priority,))
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("deadline_s must be positive or None")
        if self.client_id is not None and (
                not isinstance(self.client_id, str) or not self.client_id):
            raise TypeError("client_id must be a non-empty string or None; "
                            "got %r" % (self.client_id,))
        resolve_runner(self.runner)  # raises on unknown names

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    def to_dict(self):
        """The canonical plain-data form (JSON-able, exact round-trip)."""
        out = {
            "scenario": self.scenario.to_dict(),
            "axes": {name: list(values) for name, values in self.axes.items()},
            "stop": self.stop.to_dict(),
            "constants": dict(self.constants),
            "seed": self.seed,
            "batch_packets": self.batch_packets,
            "budget": self.budget,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "client_id": self.client_id,
        }
        if self.runner is not None:
            # Omitted when default so pre-existing request keys (and every
            # client that never heard of runners) are unchanged.
            out["runner"] = self.runner
        return out

    @classmethod
    def from_dict(cls, data):
        """Rebuild a request from :meth:`to_dict` output (or HTTP JSON)."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown request field(s): %s (known fields: %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known))))
        if "scenario" not in data or "axes" not in data or "stop" not in data:
            raise ValueError("a request needs scenario, axes and stop")
        scenario = data.pop("scenario")
        if isinstance(scenario, dict):
            scenario = scenario_from_dict(scenario)
        stop = data.pop("stop")
        if not isinstance(stop, StopRule):
            stop = StopRule.from_dict(stop)
        return cls(scenario=scenario, stop=stop, **data)

    def request_key(self):
        """Canonical SHA-256 identity of the ask.

        Everything that decides the rows enters the hash — scenario,
        axes, constants, seed, stop rule, batch quantum, budget.  The
        scheduling hints (priority, deadline) deliberately do not: a
        re-ask at a different urgency is still the same question, and
        must coalesce with the in-flight one.
        """
        payload = self.to_dict()
        del payload["priority"]
        del payload["deadline_s"]
        del payload["client_id"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def __eq__(self, other):
        return (isinstance(other, CharacterisationRequest)
                and self.request_key() == other.request_key())

    def __hash__(self):
        return hash(self.request_key())

    # ------------------------------------------------------------------ #
    # The analysis-layer objects the request describes
    # ------------------------------------------------------------------ #
    def sweep_spec(self):
        """The :class:`SweepSpec` naming this request's grid."""
        return SweepSpec(self.axes, constants=self.constants, seed=self.seed)

    def experiment(self, store=None, runner=None):
        """The equivalent batch :class:`Experiment` (the serial baseline).

        The broker builds its trajectory and store namespace from this
        object, which is what makes service rows bit-for-bit identical
        to ``request.experiment(store).run()``.  The ``runner`` argument
        is the broker-level callable override; when absent, the request's
        own *named* runner (if any) is resolved via
        :func:`resolve_runner`.
        """
        if runner is None:
            runner = resolve_runner(self.runner)
        return Experiment(
            scenario=self.scenario,
            sweep=self.sweep_spec(),
            stop=self.stop,
            store=store,
            runner=runner,
            batch_packets=self.batch_packets,
            budget=self.budget,
        )

    def store_digest(self, runner=None):
        """The store namespace this request's batches are filed under."""
        return self.experiment(runner=runner).store_digest()

    def num_points(self):
        return len(self.sweep_spec())

    def packet_cost(self):
        """Worst-case packets this request can dispatch (the quota charge).

        The tighter of the request's global ``budget`` and ``num_points()
        * stop.max_packets`` — one of the two exists by construction (an
        unbounded request is rejected in ``__post_init__``).  An upper
        bound, not an exact spend: converged points stop early, and the
        per-point cap is enforced in whole batches, so the estimate is
        what admission control charges, never what the rows report.
        """
        bounds = []
        if self.budget is not None:
            bounds.append(self.budget)
        if self.stop.max_packets is not None:
            bounds.append(self.num_points() * self.stop.max_packets)
        return min(bounds)

    def __repr__(self):
        shape = "x".join(str(len(v)) for v in self.axes.values())
        return ("CharacterisationRequest(%s [%s], seed=%d, priority=%d, "
                "key=%s...)" % (", ".join(self.axes), shape, self.seed,
                                self.priority, self.request_key()[:12]))
