"""The service front door: in-process object and localhost HTTP endpoint.

:class:`Service` assembles the subsystem — a
:class:`~repro.service.fleet.WorkerFleet`, a
:class:`~repro.service.broker.CharacterisationBroker` and a pump thread
that folds completed fleet items back into the broker — behind two
entry points:

in process
    ``service.submit(request)`` returns the broker's
    :class:`~repro.service.broker.RequestTicket`; stream
    ``ticket.rows()`` as points finish or block on ``ticket.result()``.

over HTTP
    :func:`serve` binds a stdlib :class:`ThreadingHTTPServer` (localhost
    by default) speaking JSON: ``POST /v1/characterise`` with a
    :meth:`~repro.service.requests.CharacterisationRequest.to_dict` body
    answers with a **JSON-lines stream** — an ``accepted`` line, then one
    ``row`` event per finished point as batches complete (each carrying
    a progress snapshot: points done, packets spent, cache/simulated
    split), then ``done``.  ``GET /v1/requests`` reports per-request
    progress, ``GET /v1/status`` the broker and fleet counters, and
    ``POST /v1/shutdown`` stops the daemon cleanly.  ``python -m
    repro.service`` runs exactly this (see :mod:`repro.service.__main__`).

The HTTP layer adds no scheduling semantics of its own: every byte of a
row is produced by the broker, so curl-ed curves are bit-for-bit the
``Experiment.run`` curves.
"""

import json
import logging
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.store import ResultStore
from repro.analysis.sweep import _json_default
from repro.service.broker import CharacterisationBroker, ServiceError
from repro.service.fleet import WorkerFleet
from repro.service.requests import CharacterisationRequest

__all__ = ["Service", "serve", "stream_request", "fetch_json"]

_logger = logging.getLogger(__name__)


class Service:
    """The assembled characterisation service, in process.

    Parameters
    ----------
    store:
        A :class:`~repro.analysis.store.ResultStore` (or a directory
        path for one).
    workers, backend, mp_context:
        Fleet shape — see :class:`~repro.service.fleet.WorkerFleet`.
    runner:
        Optional chunk-runner override for every request (default: the
        link runner).
    poll_s:
        Pump thread poll interval; only shutdown latency, never results.
    """

    def __init__(self, store, workers=None, backend="thread", runner=None,
                 mp_context=None, poll_s=0.05):
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.fleet = WorkerFleet(workers=workers, backend=backend,
                                 mp_context=mp_context)
        self.broker = CharacterisationBroker(store, self.fleet, runner=runner)
        self.poll_s = float(poll_s)
        self._pump = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------ #
    def start(self):
        if self._pump is not None:
            raise ServiceError("service already started")
        self.fleet.start()
        self._stopping.clear()
        self._pump = threading.Thread(target=self._pump_main, daemon=True,
                                      name="service-pump")
        self._pump.start()
        return self

    def stop(self):
        """Stop pumping and workers; in-flight requests fail cleanly."""
        if self._pump is None:
            return
        self._stopping.set()
        self._pump.join(timeout=10.0)
        self._pump = None
        self.fleet.stop()
        self.broker.shutdown()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def _pump_main(self):
        while not self._stopping.is_set():
            # The pump must outlive any single fault: the broker already
            # scopes per-result failures to their tickets, and anything
            # that still escapes is logged rather than allowed to kill
            # the thread and silently hang every future request.
            try:
                self.broker.pump(timeout=self.poll_s)
            except Exception:
                _logger.exception("service pump survived an unexpected error")
                time.sleep(self.poll_s)

    # ------------------------------------------------------------------ #
    def submit(self, request):
        """Submit one request; returns its (possibly shared) ticket."""
        if self._pump is None:
            raise ServiceError("service is not running; start() it first")
        if not isinstance(request, CharacterisationRequest):
            request = CharacterisationRequest.from_dict(request)
        return self.broker.submit(request)

    def characterise(self, request, timeout=None):
        """Submit and block: the final rows, in grid order."""
        return self.submit(request).result(timeout=timeout)

    def status(self):
        return dict(self.broker.status(), store_root=self.store.root,
                    heartbeats=self.fleet.heartbeats())

    def __repr__(self):
        return "Service(store=%r, fleet=%r)" % (self.store.root, self.fleet)


# ---------------------------------------------------------------------- #
# HTTP front door (stdlib only)
# ---------------------------------------------------------------------- #
def _to_json(payload):
    return (json.dumps(payload, default=_json_default) + "\n").encode("utf-8")


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.0 framing: the row stream has no known length, so the
    # connection close delimits it — every stdlib/curl client handles
    # that, and it keeps the handler free of chunked-encoding bookkeeping.
    protocol_version = "HTTP/1.0"

    def log_message(self, fmt, *args):  # route access noise to logging
        _logger.debug("%s - %s", self.address_string(), fmt % args)

    @property
    def service(self):
        return self.server.service

    def _send_json(self, status, payload):
        body = _to_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        if self.path == "/v1/status":
            return self._send_json(200, self.service.status())
        if self.path == "/v1/requests":
            return self._send_json(200,
                                   {"requests": self.service.broker.requests()})
        return self._send_json(404, {"error": "unknown path %s" % self.path})

    def do_POST(self):
        if self.path == "/v1/shutdown":
            self._send_json(200, {"status": "stopping"})
            # shutdown() must come from another thread: it joins the
            # serve_forever loop this handler is running under.
            threading.Thread(target=self.server.shutdown,
                             daemon=True).start()
            return None
        if self.path != "/v1/characterise":
            return self._send_json(404,
                                   {"error": "unknown path %s" % self.path})
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            request = CharacterisationRequest.from_dict(payload)
        except (TypeError, ValueError) as exc:
            return self._send_json(400, {"error": str(exc)})
        try:
            ticket = self.service.submit(request)
        except ServiceError as exc:
            return self._send_json(503, {"error": str(exc)})
        except Exception as exc:
            # A synchronous submit fault (e.g. a corrupt store record hit
            # during warm replay) must come back as JSON, not as a
            # dropped connection and a server-side traceback.
            _logger.exception("submit failed for %s", request)
            return self._send_json(500, {"error": "%s: %s"
                                         % (type(exc).__name__, exc)})
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        self.wfile.write(_to_json({
            "event": "accepted",
            "request": ticket.key,
            "namespace": ticket.digest,
            "points": request.num_points(),
        }))
        self.wfile.flush()
        try:
            for event in ticket.stream():
                self.wfile.write(_to_json(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up; the request keeps running server-side
        return None


def serve(service, host="127.0.0.1", port=0):
    """Bind the HTTP front door; returns the (not yet serving) server.

    ``port=0`` picks a free port — read the real one back from
    ``server.server_address``.  Call ``server.serve_forever()`` to run;
    ``POST /v1/shutdown`` (or ``server.shutdown()``) stops it.
    """
    server = ThreadingHTTPServer((host, port), _ServiceRequestHandler)
    server.daemon_threads = True
    server.service = service
    return server


# ---------------------------------------------------------------------- #
# Client helpers (used by the example, the CI smoke job and tests)
# ---------------------------------------------------------------------- #
def stream_request(base_url, request, timeout=300.0):
    """POST a request to a running service; yield its parsed event stream."""
    if isinstance(request, CharacterisationRequest):
        request = request.to_dict()
    http_request = urllib.request.Request(
        base_url.rstrip("/") + "/v1/characterise",
        data=json.dumps(request, default=_json_default).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(http_request, timeout=timeout) as response:
        for line in response:
            line = line.strip()
            if line:
                yield json.loads(line)


def fetch_json(url, data=None, timeout=30.0):
    """GET (or POST, with ``data``) one JSON document from the service."""
    http_request = urllib.request.Request(
        url, data=None if data is None else json.dumps(data).encode("utf-8"))
    with urllib.request.urlopen(http_request, timeout=timeout) as response:
        return json.loads(response.read())
