"""The service front door: in-process object and localhost HTTP endpoint.

:class:`Service` assembles the subsystem — a
:class:`~repro.service.fleet.WorkerFleet`, a
:class:`~repro.service.broker.CharacterisationBroker` and a pump thread
that folds completed fleet items back into the broker — behind two
entry points:

in process
    ``service.submit(request)`` returns the broker's
    :class:`~repro.service.broker.RequestTicket`; stream
    ``ticket.rows()`` as points finish or block on ``ticket.result()``.

over HTTP
    :func:`serve` binds a stdlib :class:`ThreadingHTTPServer` (localhost
    by default) speaking JSON: ``POST /v1/characterise`` with a
    :meth:`~repro.service.requests.CharacterisationRequest.to_dict` body
    answers with a **JSON-lines stream** — an ``accepted`` line, then one
    ``row`` event per finished point as batches complete (each carrying
    a progress snapshot: points done, packets spent, cache/simulated
    split), interleaved with periodic ``progress`` keep-alives, then
    ``done``.  ``GET /v1/requests`` reports per-request progress,
    ``GET /v1/status`` the broker and fleet counters,
    ``GET /v1/metrics`` the full operational ledger,
    ``POST /v1/requests/<key>/cancel`` releases one consumer's interest
    in an in-flight request, and ``POST /v1/shutdown`` stops the daemon
    (``?drain=1`` finishes in-flight requests first).  ``python -m
    repro.service`` runs exactly this (see :mod:`repro.service.__main__`).

as a cluster
    ``POST /v1/workers/attach`` is the remote-worker work channel: a
    ``python -m repro.service.worker --connect URL`` agent attaches and
    the response becomes a JSON-lines stream of ``task`` events (plus
    ``ping`` keep-alives), each carrying one priority-ordered work item;
    the agent posts results back to ``POST /v1/workers/<name>/result``
    and liveness to ``POST /v1/workers/<name>/beat``.  A broken stream
    or silent worker has its item requeued, exactly like a dead local
    process worker (see :mod:`repro.service.fleet`).  Passing
    ``lease_ttl_s`` to :class:`Service` enables cross-replica store
    leases, so several daemons sharing one store directory never
    simulate the same batch concurrently (see
    :mod:`repro.service.cluster`).

The HTTP layer adds no scheduling semantics of its own: every byte of a
row is produced by the broker, so curl-ed curves are bit-for-bit the
``Experiment.run`` curves.

Production contract
-------------------
Admission is bounded (see
:class:`~repro.service.broker.CharacterisationBroker`): a saturated
submit answers ``429`` with a computed ``Retry-After`` header, a
quota-exceeded or draining one ``503`` — both with a JSON error body
that :func:`stream_request` and :func:`fetch_json` surface as a typed
:class:`ServiceHTTPError`.  A client that hangs up mid-stream is
detected (at the next event or keep-alive write) and its interest in
the request is released through the broker's cancel path, so abandoned
work stops holding fleet budget; pass ``?detach=1`` to opt out and keep
the request running fire-and-forget.  A server-side fault mid-stream
emits a terminal ``{"event": "error", ...}`` line before the connection
closes, so clients can always distinguish truncation from completion.
"""

import json
import logging
import math
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.store import ResultStore
from repro.analysis.sweep import _json_default
from repro.obs.trace import TRACE_HEADER
from repro.service.broker import (CharacterisationBroker, ServiceError,
                                  ServiceSaturated)
from repro.service.cluster import LeaseManager
from repro.service.fleet import FleetError, WorkerFleet
from repro.service.requests import CharacterisationRequest
from repro.service.transport import decode_payload, encode_payload

__all__ = ["Service", "ServiceHTTPError", "RetryPolicy", "serve",
           "stream_request", "fetch_json", "cancel_request"]

_logger = logging.getLogger(__name__)


class ServiceHTTPError(ServiceError):
    """A service HTTP endpoint answered an error status.

    Carries what the raw :class:`urllib.error.HTTPError` discards: the
    parsed JSON error ``body`` the server sent, the ``status`` code, and
    ``retry_after_s`` (parsed from the ``Retry-After`` header on a
    ``429``, else ``None``) so callers can implement honest backoff
    without scraping headers themselves.
    """

    def __init__(self, status, body, retry_after_s=None):
        body = dict(body or {})
        message = body.get("error") or ("HTTP %d" % status)
        super().__init__("HTTP %d: %s" % (status, message))
        self.status = int(status)
        self.body = body
        self.retry_after_s = retry_after_s

    @property
    def saturated(self):
        return self.status == 429


def _raise_service_http_error(exc):
    """Convert an ``HTTPError`` into a :class:`ServiceHTTPError`."""
    try:
        body = json.loads(exc.read() or b"{}")
    except (ValueError, OSError):
        body = {}
    retry_after = exc.headers.get("Retry-After") if exc.headers else None
    if retry_after is not None:
        try:
            retry_after = float(retry_after)
        except ValueError:
            retry_after = None
    raise ServiceHTTPError(exc.code, body,
                           retry_after_s=retry_after) from exc


class RetryPolicy:
    """Opt-in retry with jittered exponential backoff for service clients.

    Pass one to :func:`stream_request` or :func:`fetch_json` and a
    retryable :class:`ServiceHTTPError` — by default the admission
    statuses, ``429`` (saturated) and ``503`` (draining) — is retried
    up to ``attempts`` total tries instead of surfacing on the first.
    The wait before try ``n`` is ``base_s * 2**n`` capped at ``max_s``,
    but never *less* than the server's ``Retry-After`` when the response
    carried one — the server's estimate is honest, backing off less
    than it asks just burns the next attempt.  Full jitter (a uniform
    draw over ``[wait * (1 - jitter), wait]``) keeps a thundering herd
    of identical clients from re-arriving in lockstep.

    With ``connect=True`` connection-level failures
    (:class:`urllib.error.URLError`, :class:`ConnectionError`) retry on
    the same schedule — useful for clients racing a daemon's startup.
    """

    def __init__(self, attempts=5, base_s=0.2, max_s=30.0, jitter=0.5,
                 statuses=(429, 503), connect=False, sleep=None, rng=None):
        if not attempts >= 1:
            raise ValueError("attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.attempts = int(attempts)
        self.base_s = float(base_s)
        self.max_s = float(max_s)
        self.jitter = float(jitter)
        self.statuses = frozenset(int(status) for status in statuses)
        self.connect = bool(connect)
        self._sleep = time.sleep if sleep is None else sleep
        self._rng = random.Random() if rng is None else rng
        self.retries = 0  # total sleeps taken, across every call()

    def delay_s(self, attempt, retry_after_s=None):
        """The jittered wait before retry number ``attempt`` (0-based)."""
        wait = min(self.max_s, self.base_s * (2 ** attempt))
        if retry_after_s is not None:
            wait = max(wait, float(retry_after_s))
        return wait * (1.0 - self.jitter * self._rng.random())

    def _retryable(self, exc):
        if isinstance(exc, ServiceHTTPError):
            return exc.status in self.statuses
        return self.connect and isinstance(
            exc, (urllib.error.URLError, ConnectionError))

    def call(self, func):
        """Run ``func()`` under this policy; the last error propagates."""
        for attempt in range(self.attempts):
            try:
                return func()
            except Exception as exc:
                if attempt + 1 >= self.attempts or not self._retryable(exc):
                    raise
                retry_after = getattr(exc, "retry_after_s", None)
                self.retries += 1
                self._sleep(self.delay_s(attempt, retry_after))
        raise AssertionError("unreachable")  # pragma: no cover

    def __repr__(self):
        return ("RetryPolicy(attempts=%d, base_s=%g, max_s=%g, statuses=%s)"
                % (self.attempts, self.base_s, self.max_s,
                   sorted(self.statuses)))


class Service:
    """The assembled characterisation service, in process.

    Parameters
    ----------
    store:
        A :class:`~repro.analysis.store.ResultStore` (or a directory
        path for one).
    workers, backend, mp_context:
        Fleet shape — see :class:`~repro.service.fleet.WorkerFleet`.
    runner:
        Optional chunk-runner override for every request (default: the
        link runner).
    poll_s:
        Pump thread poll interval; only shutdown latency, never results.
    max_inflight_batches, max_requests, quota:
        Admission-control knobs, passed through to
        :class:`~repro.service.broker.CharacterisationBroker` — ``None``
        keeps the pre-hardening unbounded behaviour.
    lease_ttl_s:
        Enables cross-replica store leases with this TTL: several
        replicas (service processes, possibly on different hosts)
        sharing one store directory then never simulate the same batch
        concurrently — see :mod:`repro.service.cluster`.  ``None``
        (default) runs standalone.  Alternatively pass a ready
        :class:`~repro.service.cluster.LeaseManager` as ``leases``.
    replica_id:
        This replica's identity in lease files and metrics (default:
        hostname-pid derived).
    remote_timeout_s:
        Watchdog for attached remote workers: one holding a work item
        and silent this long is presumed dead, detached, and its item
        requeued.  Must comfortably exceed the worker agent's heartbeat
        interval.
    stop_timeout_s:
        How long :meth:`stop` waits for the pump thread to exit before
        declaring it wedged (and refusing future :meth:`start` calls).
    """

    def __init__(self, store, workers=None, backend="thread", runner=None,
                 mp_context=None, poll_s=0.05, max_inflight_batches=None,
                 max_requests=None, quota=None, lease_ttl_s=None,
                 leases=None, replica_id=None, remote_timeout_s=60.0,
                 stop_timeout_s=10.0):
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        if leases is None and lease_ttl_s is not None:
            leases = LeaseManager.for_store(store.root, owner=replica_id,
                                            ttl_s=lease_ttl_s)
        self.leases = leases
        self.fleet = WorkerFleet(workers=workers, backend=backend,
                                 mp_context=mp_context)
        self.broker = CharacterisationBroker(
            store, self.fleet, runner=runner,
            max_inflight_batches=max_inflight_batches,
            max_requests=max_requests, quota=quota, leases=leases)
        self.remote_timeout_s = float(remote_timeout_s)
        self.poll_s = float(poll_s)
        self.stop_timeout_s = float(stop_timeout_s)
        self._pump = None
        self._wedged = False
        self._stopping = threading.Event()

    # ------------------------------------------------------------------ #
    def start(self):
        if self._wedged:
            raise ServiceError(
                "a previous stop() left the pump thread wedged; this "
                "Service cannot be restarted — build a fresh one")
        if self._pump is not None:
            raise ServiceError("service already started")
        self.fleet.start()
        self._stopping.clear()
        self._pump = threading.Thread(target=self._pump_main, daemon=True,
                                      name="service-pump")
        self._pump.start()
        return self

    def stop(self, drain=False, timeout=None):
        """Stop pumping and workers; in-flight requests fail cleanly.

        With ``drain=True`` the shutdown is graceful: admission closes
        first, in-flight requests run to completion (bounded by
        ``timeout`` seconds, ``None`` for no bound), and only then do
        the pump and fleet stop — nothing in flight is failed unless the
        drain deadline expires first.

        If the pump thread refuses to exit within ``stop_timeout_s``
        the service logs and raises :class:`ServiceError` after a
        best-effort fleet stop, and :meth:`start` refuses from then on —
        a wedged pump silently orphaned is exactly the bug this guards
        against.
        """
        if self._pump is None:
            return
        if drain:
            self.broker.close_admission()
            if not self.broker.drain(timeout=timeout):
                _logger.warning(
                    "drain deadline (%.1f s) expired with requests still "
                    "in flight; they will be failed", timeout)
        self._stopping.set()
        self._pump.join(timeout=self.stop_timeout_s)
        if self._pump.is_alive():
            self._wedged = True
            _logger.error(
                "service pump thread failed to stop within %.1f s; the "
                "service is wedged and cannot be restarted",
                self.stop_timeout_s)
            self.fleet.stop()
            self.broker.shutdown("service stopped (pump wedged)")
            raise ServiceError(
                "service pump thread failed to stop within %.1f s"
                % self.stop_timeout_s)
        self._pump = None
        self.fleet.stop()
        self.broker.shutdown()

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.stop()

    def _pump_main(self):
        while not self._stopping.is_set():
            # The pump must outlive any single fault: the broker already
            # scopes per-result failures to their tickets, and anything
            # that still escapes is logged rather than allowed to kill
            # the thread and silently hang every future request.
            try:
                self.broker.pump(timeout=self.poll_s)
                self.fleet.reap_overdue_remotes(self.remote_timeout_s)
            except Exception:
                _logger.exception("service pump survived an unexpected error")
                time.sleep(self.poll_s)

    # ------------------------------------------------------------------ #
    def submit(self, request, trace=None):
        """Submit one request; returns its (possibly shared) ticket.

        ``trace`` is an optional ``X-Repro-Trace`` span context the
        request's trace continues from (see :mod:`repro.obs.trace`).
        """
        if self._pump is None:
            raise ServiceError("service is not running; start() it first")
        if not isinstance(request, CharacterisationRequest):
            request = CharacterisationRequest.from_dict(request)
        return self.broker.submit(request, trace=trace)

    def characterise(self, request, timeout=None):
        """Submit and block: the final rows, in grid order."""
        return self.submit(request).result(timeout=timeout)

    def cancel(self, request_key, reason="cancelled by client"):
        """Release one consumer's interest in an in-flight request."""
        return self.broker.cancel(request_key, reason=reason)

    def status(self):
        return dict(self.broker.status(), store_root=self.store.root,
                    heartbeats=self.fleet.heartbeats())

    def metrics(self):
        """The full operational ledger (served by ``GET /v1/metrics``).

        The whole document — including the service-level extras — is
        assembled inside the broker lock, so one snapshot is one
        instant: its counters always balance (taking heartbeats after
        releasing the lock used to let a completing batch skew the
        ledger mid-read).  The broker->fleet lock order this relies on
        is the one the broker's own dispatch path already established.
        """
        return self.broker.metrics(extras={
            "store_root": lambda: self.store.root,
            "heartbeats": self.fleet.heartbeats,
        })

    def prometheus_text(self):
        """Prometheus text exposition (``GET /v1/metrics?format=prometheus``)."""
        return self.broker.prometheus_text()

    def __repr__(self):
        return "Service(store=%r, fleet=%r)" % (self.store.root, self.fleet)


# ---------------------------------------------------------------------- #
# HTTP front door (stdlib only)
# ---------------------------------------------------------------------- #
def _to_json(payload):
    return (json.dumps(payload, default=_json_default) + "\n").encode("utf-8")


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    # HTTP/1.0 framing: the row stream has no known length, so the
    # connection close delimits it — every stdlib/curl client handles
    # that, and it keeps the handler free of chunked-encoding bookkeeping.
    protocol_version = "HTTP/1.0"

    def log_message(self, fmt, *args):  # route access noise to logging
        _logger.debug("%s - %s", self.address_string(), fmt % args)

    @property
    def service(self):
        return self.server.service

    def _send_json(self, status, payload, headers=None):
        body = _to_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status, text):
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        split = urllib.parse.urlsplit(self.path)
        path = split.path
        if path == "/v1/status":
            return self._send_json(200, self.service.status())
        if path == "/v1/metrics":
            query = urllib.parse.parse_qs(split.query)
            if "prometheus" in query.get("format", []):
                return self._send_text(200, self.service.prometheus_text())
            return self._send_json(200, self.service.metrics())
        if path == "/v1/requests":
            return self._send_json(200,
                                   {"requests": self.service.broker.requests()})
        return self._send_json(404, {"error": "unknown path %s" % path})

    def do_POST(self):
        split = urllib.parse.urlsplit(self.path)
        path = split.path
        query = urllib.parse.parse_qs(split.query)
        if path == "/v1/shutdown":
            return self._shutdown(drain="1" in query.get("drain", []))
        if path == "/v1/workers/attach":
            return self._worker_attach(
                (query.get("name") or [None])[0])
        if path.startswith("/v1/workers/") and path.endswith("/result"):
            return self._worker_result(
                path[len("/v1/workers/"):-len("/result")])
        if path.startswith("/v1/workers/") and path.endswith("/beat"):
            name = path[len("/v1/workers/"):-len("/beat")]
            handle = self.service.fleet.remote_handle(name)
            if handle is None or not handle.beat():
                return self._send_json(
                    404, {"error": "no attached remote worker %r" % name})
            return self._send_json(200, {"worker": name, "alive": True})
        if path.startswith("/v1/requests/") and path.endswith("/cancel"):
            key = path[len("/v1/requests/"):-len("/cancel")]
            if self.service.cancel(key):
                return self._send_json(200, {"request": key,
                                             "cancelled": True})
            return self._send_json(
                404, {"error": "no in-flight request %s (unknown key, or "
                               "it already finished)" % key})
        if path != "/v1/characterise":
            return self._send_json(404, {"error": "unknown path %s" % path})
        return self._characterise(detach="1" in query.get("detach", []))

    def _shutdown(self, drain):
        # With drain, admission must be closed before the "draining"
        # reply goes out: a client that reads the reply and immediately
        # submits is guaranteed its 503.
        if drain:
            self.service.broker.close_admission()
        self._send_json(200, {"status": "draining" if drain else "stopping"})

        # shutdown() must come from another thread: it joins the
        # serve_forever loop this handler is running under.  With drain,
        # the HTTP loop only stops once in-flight tickets finished — the
        # pump keeps folding results in throughout.
        def _stop():
            if drain:
                self.service.broker.drain()
            self.server.shutdown()

        threading.Thread(target=_stop, daemon=True).start()
        return None

    def _characterise(self, detach):
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            request = CharacterisationRequest.from_dict(payload)
        except (TypeError, ValueError) as exc:
            return self._send_json(400, {"error": str(exc)})
        try:
            ticket = self.service.submit(
                request, trace=self.headers.get(TRACE_HEADER))
        except ServiceSaturated as exc:
            # The admission-control contract: 429 plus an honest integer
            # Retry-After (ceil — never tell a client to come back early).
            return self._send_json(
                429, {"error": str(exc),
                      "retry_after_s": exc.retry_after_s},
                headers={"Retry-After":
                         str(max(1, math.ceil(exc.retry_after_s)))})
        except ServiceError as exc:
            return self._send_json(503, {"error": str(exc)})
        except Exception as exc:
            # A synchronous submit fault (e.g. a corrupt store record hit
            # during warm replay) must come back as JSON, not as a
            # dropped connection and a server-side traceback.
            _logger.exception("submit failed for %s", request)
            return self._send_json(500, {"error": "%s: %s"
                                         % (type(exc).__name__, exc)})
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        accepted = {
            "event": "accepted",
            "request": ticket.key,
            "namespace": ticket.digest,
            "points": request.num_points(),
            "detach": bool(detach),
        }
        if ticket.span.enabled:
            # Echo the trace id so an untraced client can still find its
            # waterfall in the sink (`repro-trace show DIR <id>`).
            accepted["trace"] = ticket.span.trace_id
        self.wfile.write(_to_json(accepted))
        self.wfile.flush()
        try:
            for event in ticket.stream(
                    heartbeat_s=self.server.stream_heartbeat_s):
                self.wfile.write(_to_json(event))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up.  Detected at the next write — the
            # keep-alive heartbeat bounds how long that takes on a slow
            # point.  Release this consumer's interest so abandoned work
            # stops holding fleet budget (a coalesced twin keeps the
            # ticket alive); ?detach=1 keeps the old fire-and-forget
            # behaviour.
            if not detach:
                self.service.cancel(ticket.key,
                                    reason="client disconnected")
        except Exception as exc:
            # A server-side fault mid-stream: emit a terminal error event
            # so the client can tell truncation from completion, then
            # release our interest (unless detached) — the connection is
            # closing either way and nobody is left to consume the rows.
            _logger.exception("streaming request %s failed", ticket.key[:16])
            try:
                self.wfile.write(_to_json({
                    "event": "error",
                    "request": ticket.key,
                    "error": "%s: %s" % (type(exc).__name__, exc),
                }))
                self.wfile.flush()
            except OSError:
                pass  # the pipe is gone too; nothing more to tell anyone
            if not detach:
                self.service.cancel(
                    ticket.key, reason="server-side stream fault: %s" % exc)
        return None

    # ------------------------------------------------------------------ #
    # Remote-worker work channel
    # ------------------------------------------------------------------ #
    def _worker_attach(self, name):
        """The streaming side of the work channel: tasks out, pings between.

        This handler thread *is* the attached worker's dispatcher: it
        owns the :class:`~repro.service.fleet.RemoteWorkerHandle`, pulls
        priority-ordered items (depth-1 — the next only after the
        previous result arrived through ``_worker_result``) and writes
        each as a ``task`` event.  Quiet stretches carry ``ping``
        keep-alives, whose writes double as disconnect detection: a
        worker whose connection died is detached and its outstanding
        item requeued the moment a ping bounces.
        """
        try:
            handle = self.service.fleet.register_remote(name)
        except FleetError as exc:
            return self._send_json(503, {"error": str(exc)})
        self.server.attach_channels.add(threading.current_thread())
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        ping_s = self.server.worker_ping_s
        try:
            self.wfile.write(_to_json({
                "event": "attached", "worker": handle.name,
                "ping_s": ping_s,
            }))
            self.wfile.flush()
            while handle.active:
                item = handle.next_task(timeout=ping_s)
                if item is None:
                    if not handle.active:
                        break
                    self.wfile.write(_to_json({"event": "ping"}))
                    self.wfile.flush()
                    continue
                task = {
                    "event": "task",
                    "seq": item.seq,
                    "label": item.batch.label(),
                    "payload": encode_payload((item.runner, item.batch)),
                }
                if item.trace is not None:
                    # Span context piggybacks on the task event so the
                    # agent's simulate span joins the request's trace;
                    # absent when tracing is off (historical shape).
                    task["trace"] = item.trace
                self.wfile.write(_to_json(task))
                self.wfile.flush()
            # "detached" = the watchdog (or a newer attach under the same
            # name) evicted this worker while the service runs on — it
            # should re-attach; "stopped" = service shutdown, don't.
            fleet = self.service.fleet
            stopping = fleet._stopping or not fleet._running
            self.wfile.write(_to_json({
                "event": "bye",
                "reason": "stopped" if stopping else "detached",
            }))
            self.wfile.flush()
        except OSError:
            pass  # the agent hung up; detach below requeues its item
        finally:
            handle.detach(requeue=True)
            self.server.attach_channels.discard(threading.current_thread())
        return None

    def _worker_result(self, name):
        """Accept one completed item from an attached remote worker."""
        handle = self.service.fleet.remote_handle(name)
        if handle is None:
            return self._send_json(
                404, {"error": "no attached remote worker %r" % name})
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
            seq = int(payload["seq"])
            error = payload.get("error")
            result = None
            if error is None:
                result = dict(decode_payload(payload["payload"]))
        except (KeyError, TypeError, ValueError) as exc:
            return self._send_json(400, {"error": str(exc)})
        accepted = handle.complete(seq, result, error)
        # A refused result is not an error: the worker was presumed dead
        # and its item requeued — the agent should just pull on.
        return self._send_json(200, {"worker": name, "seq": seq,
                                     "accepted": bool(accepted)})


def serve(service, host="127.0.0.1", port=0, heartbeat_s=10.0,
          worker_ping_s=1.0):
    """Bind the HTTP front door; returns the (not yet serving) server.

    ``port=0`` picks a free port — read the real one back from
    ``server.server_address``.  Call ``server.serve_forever()`` to run;
    ``POST /v1/shutdown`` (or ``server.shutdown()``) stops it.

    ``heartbeat_s`` is the keep-alive cadence of the row stream: a
    synthetic ``progress`` event is written whenever that many seconds
    pass without a real one, which doubles as the disconnect detector
    for abandoned clients (``None`` disables both).  ``worker_ping_s``
    is the same for the remote-worker attach streams: the task-wait
    granularity and the ping cadence that detects a hung-up agent.
    """

    class _FrontDoorServer(ThreadingHTTPServer):
        # The stdlib default accept backlog (5) resets connections the
        # moment a burst of clients arrives together; admission control
        # is the broker's job, so the listener itself must not shed load
        # before a request ever reaches it.
        request_queue_size = 128

    server = _FrontDoorServer((host, port), _ServiceRequestHandler)
    server.daemon_threads = True
    server.service = service
    server.stream_heartbeat_s = (None if heartbeat_s is None
                                 else float(heartbeat_s))
    server.worker_ping_s = float(worker_ping_s)
    # Live attach-stream handler threads.  A clean daemon exit waits for
    # this to empty: each handler leaves only after writing its ``bye``,
    # which remote agents need to tell a graceful stop from a crash.
    server.attach_channels = set()
    return server


# ---------------------------------------------------------------------- #
# Client helpers (used by the example, the CI smoke job and tests)
# ---------------------------------------------------------------------- #
def stream_request(base_url, request, timeout=300.0, detach=False,
                   retry=None, trace=None):
    """POST a request to a running service; yield its parsed event stream.

    An error status (a saturated 429, a draining 503, a malformed 400)
    raises :class:`ServiceHTTPError` carrying the parsed JSON error body
    and any ``Retry-After`` value, instead of letting the raw
    ``urllib.error.HTTPError`` escape with the body unread.

    ``retry`` (a :class:`RetryPolicy`) re-submits on the retryable
    statuses — honouring the 429's ``Retry-After`` — until the stream
    opens.  Only the submit is retried, never a stream that already
    produced events: re-submitting *is* safe (identical requests
    coalesce, stored batches replay), but splicing two event streams
    would not be.

    ``trace`` (a ``"trace_id:span_id"`` context, e.g. from a local
    :class:`repro.obs.trace.Span`'s ``context()``) rides the
    ``X-Repro-Trace`` header so the service-side trace continues the
    caller's.
    """
    if isinstance(request, CharacterisationRequest):
        request = request.to_dict()
    url = base_url.rstrip("/") + "/v1/characterise"
    if detach:
        url += "?detach=1"
    headers = {"Content-Type": "application/json"}
    if trace is not None:
        headers[TRACE_HEADER] = trace
    http_request = urllib.request.Request(
        url,
        data=json.dumps(request, default=_json_default).encode("utf-8"),
        headers=headers,
    )

    def _open():
        try:
            return urllib.request.urlopen(http_request, timeout=timeout)
        except urllib.error.HTTPError as exc:
            _raise_service_http_error(exc)

    response = _open() if retry is None else retry.call(_open)
    with response:
        for line in response:
            line = line.strip()
            if line:
                yield json.loads(line)


def fetch_json(url, data=None, timeout=30.0, retry=None):
    """GET (or POST, with ``data``) one JSON document from the service.

    POST bodies are labelled ``Content-Type: application/json``; an
    error status raises :class:`ServiceHTTPError` with the parsed body.
    ``retry`` (a :class:`RetryPolicy`) retries the whole exchange on the
    policy's retryable statuses (and, with its ``connect=True``, on
    connection failures — e.g. polling a daemon that is still binding).
    """
    headers = {} if data is None else {"Content-Type": "application/json"}
    http_request = urllib.request.Request(
        url, data=None if data is None else json.dumps(data).encode("utf-8"),
        headers=headers)

    def _once():
        try:
            with urllib.request.urlopen(http_request,
                                        timeout=timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            _raise_service_http_error(exc)

    if retry is None:
        return _once()
    return retry.call(_once)


def cancel_request(base_url, request_key, timeout=30.0):
    """POST the cancel endpoint for ``request_key``; the parsed reply.

    Raises :class:`ServiceHTTPError` (status 404) when the key names no
    in-flight request — unknown, or already finished.
    """
    return fetch_json(
        base_url.rstrip("/") + "/v1/requests/%s/cancel" % request_key,
        data={}, timeout=timeout)
