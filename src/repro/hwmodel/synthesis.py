"""Synthesis-report generation: the Figure 8 table from the area model.

:func:`synthesize` plays the part of the synthesis tool in the paper's flow:
given microarchitecture parameters it produces a :class:`SynthesisReport`
whose rows mirror Figure 8 (decoder totals with per-sub-block breakdowns)
and whose summary reproduces the paper's headline comparisons (BCJR is about
twice the size of SOVA, SOVA about twice the size of Viterbi).
"""

from repro.analysis.reporting import Table
from repro.hwmodel.area import AreaModel, DecoderAreaParameters

#: Display names matching the paper's Figure 8 rows.
DISPLAY_NAMES = {
    "bcjr": "BCJR",
    "soft_decision_unit": "Soft Decision Unit",
    "initial_reversal_buffer": "Initial Rev. Buf.",
    "final_reversal_buffer": "Final Rev. Buf.",
    "path_metric_unit": "Path Metric Unit",
    "branch_metric_unit": "Branch Metric Unit",
    "sova": "SOVA",
    "soft_traceback_unit": "Soft TU",
    "soft_path_detect": "Soft Path Detect",
    "viterbi": "Viterbi",
    "traceback_unit": "Traceback Unit",
}


class SynthesisReport:
    """Figure 8-style area report for one parameter set."""

    def __init__(self, model):
        self.model = model
        self.rows = []
        for decoder in ("bcjr", "sova", "viterbi"):
            self.rows.append((DISPLAY_NAMES[decoder], self.model.decoder_total(decoder)))
            for estimate in self.model.decoder_breakdown(decoder):
                self.rows.append(("  " + DISPLAY_NAMES[estimate.name], estimate))

    def totals(self):
        """Mapping of decoder name to its total :class:`AreaEstimate`."""
        return {
            decoder: self.model.decoder_total(decoder)
            for decoder in ("bcjr", "sova", "viterbi")
        }

    @property
    def bcjr_to_sova_ratio(self):
        """BCJR area divided by SOVA area (the paper reports about 2x)."""
        return self.model.area_ratio("bcjr", "sova")

    @property
    def sova_to_viterbi_ratio(self):
        """SOVA area divided by Viterbi area (the paper reports about 2x)."""
        return self.model.area_ratio("sova", "viterbi")

    def table(self):
        """Render the report as a Figure 8-style text table."""
        table = Table(
            ["Module", "LUTs", "Registers"],
            title="Synthesis results (area model, %r)" % (self.model.params,),
        )
        for name, estimate in self.rows:
            table.add_row(name, estimate.luts, estimate.registers)
        return table

    def __repr__(self):
        return "SynthesisReport(bcjr/sova=%.2f, sova/viterbi=%.2f)" % (
            self.bcjr_to_sova_ratio,
            self.sova_to_viterbi_ratio,
        )


def synthesize(params=None):
    """Produce a :class:`SynthesisReport` for ``params`` (paper defaults if omitted)."""
    if params is None:
        params = DecoderAreaParameters()
    return SynthesisReport(AreaModel(params))
