"""Modelled throughput of the baseband pipeline on the paper's platform.

The paper runs its baseband at 35 MHz (with the per-bit BER unit at 60 MHz)
and states that this configuration sustains the fastest 802.11g rate of
54 Mb/s.  The model here captures that head-room calculation: an OFDM symbol
is 80 time samples, the pipeline processes one sample per baseband cycle, so
a symbol takes 80 cycles; the per-bit units must also keep up with the
coded/data bits of each symbol at their own clock.  The sustainable data
rate is the symbol rate allowed by the slowest unit times the data bits per
symbol.
"""

from repro.hwmodel.latency import DECODER_CLOCK_MHZ
from repro.phy.params import CYCLIC_PREFIX, FFT_SIZE, SYMBOL_DURATION_US

#: Time samples per OFDM symbol (FFT plus cyclic prefix).
SAMPLES_PER_SYMBOL = FFT_SIZE + CYCLIC_PREFIX

#: Baseband clock used by the bulk of the paper's pipeline, in MHz.
BASEBAND_CLOCK_MHZ = 35.0


def symbol_rate_hz(baseband_clock_mhz=BASEBAND_CLOCK_MHZ):
    """OFDM symbols per second the sample-rate portion of the pipeline sustains."""
    if baseband_clock_mhz <= 0:
        raise ValueError("clock frequency must be positive")
    return baseband_clock_mhz * 1e6 / SAMPLES_PER_SYMBOL


def bit_unit_symbol_rate_hz(phy_rate, bit_clock_mhz=DECODER_CLOCK_MHZ):
    """Symbols per second sustained by the per-bit units (decoder, BER unit).

    The decoder and BER estimator emit one bit per cycle, so a symbol
    carrying ``data_bits_per_symbol`` bits occupies that many cycles.
    """
    if bit_clock_mhz <= 0:
        raise ValueError("clock frequency must be positive")
    return bit_clock_mhz * 1e6 / phy_rate.data_bits_per_symbol


def sustainable_rate_mbps(
    phy_rate,
    baseband_clock_mhz=BASEBAND_CLOCK_MHZ,
    bit_clock_mhz=DECODER_CLOCK_MHZ,
):
    """Data rate (Mb/s) the modelled pipeline sustains for ``phy_rate``."""
    slowest_symbol_rate = min(
        symbol_rate_hz(baseband_clock_mhz),
        bit_unit_symbol_rate_hz(phy_rate, bit_clock_mhz),
    )
    return slowest_symbol_rate * phy_rate.data_bits_per_symbol / 1e6


def meets_line_rate(phy_rate, **kwargs):
    """Whether the modelled pipeline keeps up with the rate's line rate."""
    return sustainable_rate_mbps(phy_rate, **kwargs) >= phy_rate.data_rate_mbps


def hardware_time_seconds(phy_rate, num_symbols, baseband_clock_mhz=BASEBAND_CLOCK_MHZ):
    """Modelled FPGA time to push ``num_symbols`` OFDM symbols through the pipeline.

    Used by the Figure 2 reproduction to project what the hardware partition
    would cost on the paper's platform instead of on this Python host.
    """
    if num_symbols < 0:
        raise ValueError("symbol count must be non-negative")
    cycles = num_symbols * SAMPLES_PER_SYMBOL
    return cycles / (baseband_clock_mhz * 1e6)


def line_rate_duration_seconds(num_symbols):
    """On-air time of ``num_symbols`` OFDM symbols (4 microseconds each)."""
    return num_symbols * SYMBOL_DURATION_US * 1e-6
