"""Parametric LUT / register area model of the decoder microarchitectures.

The paper's Figure 8 gives synthesised areas for its BCJR, SOVA and Viterbi
decoders (Synplify Pro targeting a Virtex-5 LX330T at 60 MHz, all storage
forced to registers).  Without a synthesis tool we model each reported row
as a *structural* quantity -- how many storage bits or arithmetic cells the
sub-block fundamentally needs given the microarchitecture parameters --
multiplied by a technology coefficient.  The coefficients are calibrated
once, at the paper's configuration (64-state trellis, 8-bit soft inputs,
traceback and block length 64), so that the model reproduces Figure 8
exactly at that point while still responding to parameter changes for the
ablation studies (block length, traceback length, datapath width).

The headline relationships this preserves:

* BCJR is roughly twice the size of SOVA, dominated by its reversal buffers
  and its three path-metric units.
* SOVA is roughly twice the size of Viterbi, dominated by the soft
  traceback storage.
* Growing the BCJR block length or the SOVA traceback length grows area
  roughly linearly (while, per the paper, buying no estimation accuracy
  beyond 64).
"""


class DecoderAreaParameters:
    """Microarchitecture parameters that drive the area model.

    Parameters
    ----------
    num_states:
        Trellis states (64 for the 802.11 K=7 code).
    soft_input_bits:
        Width of the demapper soft values entering the decoder (the paper's
        hardware uses 3-8 bits; 8 is the calibration point).
    metric_bits:
        Path-metric datapath width.
    traceback_length:
        Viterbi / SOVA traceback window length.
    block_length:
        BCJR sliding-window block length.
    llr_bits:
        Width of the emitted SoftPHY hint.
    outputs_per_input:
        Coded bits per trellis step (2 for the rate-1/2 mother code).
    """

    def __init__(
        self,
        num_states=64,
        soft_input_bits=8,
        metric_bits=8,
        traceback_length=64,
        block_length=64,
        llr_bits=8,
        outputs_per_input=2,
    ):
        if min(num_states, soft_input_bits, metric_bits, traceback_length,
               block_length, llr_bits, outputs_per_input) < 1:
            raise ValueError("all area parameters must be positive")
        self.num_states = int(num_states)
        self.soft_input_bits = int(soft_input_bits)
        self.metric_bits = int(metric_bits)
        self.traceback_length = int(traceback_length)
        self.block_length = int(block_length)
        self.llr_bits = int(llr_bits)
        self.outputs_per_input = int(outputs_per_input)

    def __repr__(self):
        return (
            "DecoderAreaParameters(states=%d, soft=%db, metric=%db, "
            "traceback=%d, block=%d)"
            % (
                self.num_states,
                self.soft_input_bits,
                self.metric_bits,
                self.traceback_length,
                self.block_length,
            )
        )


#: The configuration Figure 8 was synthesised at (used for calibration).
PAPER_CONFIGURATION = DecoderAreaParameters()


class AreaEstimate:
    """A LUT / register estimate for one block."""

    def __init__(self, name, luts, registers):
        self.name = name
        self.luts = int(round(luts))
        self.registers = int(round(registers))

    def __add__(self, other):
        return AreaEstimate(
            "%s+%s" % (self.name, other.name),
            self.luts + other.luts,
            self.registers + other.registers,
        )

    def scaled(self, factor, name=None):
        """Return a copy scaled by ``factor`` (e.g. for replicated units)."""
        return AreaEstimate(name or self.name, self.luts * factor, self.registers * factor)

    def __repr__(self):
        return "AreaEstimate(%s: %d LUTs, %d regs)" % (
            self.name,
            self.luts,
            self.registers,
        )


# --------------------------------------------------------------------------- #
# Structural quantities: the "how much stuff" driver for every Figure 8 row.
# --------------------------------------------------------------------------- #
def _structural_quantities(params):
    """Return the structural size driver for every modelled block."""
    p = params
    return {
        # A branch metric is a correlation over the coded bits of one step.
        "branch_metric_unit": p.outputs_per_input * p.soft_input_bits,
        # One add-compare-select per state, metric_bits wide.
        "path_metric_unit": p.num_states * (p.metric_bits + 2),
        # Hard Viterbi traceback: one survivor bit per state per window step.
        "traceback_unit": p.traceback_length * p.num_states,
        # SOVA soft traceback: survivors plus per-step soft decisions and the
        # second (competing-path) traceback.
        "soft_traceback_unit": p.traceback_length * (2 * p.num_states + p.llr_bits),
        "soft_path_detect": p.traceback_length * p.num_states,
        # BCJR combines forward/backward metrics into a per-bit decision.
        "soft_decision_unit": p.num_states * (p.metric_bits + p.llr_bits),
        # Reversal buffers: the initial buffer holds raw soft inputs for one
        # block, the final buffer holds per-state backward metrics.
        "initial_reversal_buffer": p.block_length * p.outputs_per_input * p.soft_input_bits,
        "final_reversal_buffer": p.block_length * p.num_states * p.metric_bits,
        # Totals (hierarchies in the paper's table overlap, so each total has
        # its own driver rather than being a sum of the rows above).
        "viterbi": p.num_states * (p.metric_bits + 2) + p.traceback_length * p.num_states,
        "sova": (
            p.num_states * (p.metric_bits + 2)
            + 2 * p.traceback_length * p.num_states
            + p.traceback_length * p.llr_bits
        ),
        "bcjr": (
            3 * p.num_states * (p.metric_bits + 2)
            + p.block_length * p.num_states * p.metric_bits
            + p.block_length * p.outputs_per_input * p.soft_input_bits
            + p.num_states * (p.metric_bits + p.llr_bits)
        ),
    }


#: Figure 8 rows: (LUTs, registers) reported by the paper at the calibration
#: configuration.
PAPER_FIGURE8 = {
    "bcjr": (32936, 38420),
    "soft_decision_unit": (6561, 822),
    "initial_reversal_buffer": (804, 2608),
    "final_reversal_buffer": (8651, 30048),
    "path_metric_unit": (4672, 0),
    "branch_metric_unit": (63, 41),
    "sova": (15114, 15168),
    "soft_traceback_unit": (13456, 13402),
    "soft_path_detect": (7362, 4706),
    "viterbi": (7569, 4538),
    "traceback_unit": (5144, 3927),
}


def _calibrated_coefficients():
    """LUT and register coefficients fitted at the paper's configuration."""
    reference = _structural_quantities(PAPER_CONFIGURATION)
    coefficients = {}
    for block, (luts, registers) in PAPER_FIGURE8.items():
        size = reference[block]
        coefficients[block] = (luts / size, registers / size)
    return coefficients


_COEFFICIENTS = _calibrated_coefficients()


class AreaModel:
    """Evaluates the calibrated area model for a parameter set.

    Parameters
    ----------
    params:
        :class:`DecoderAreaParameters`; the paper's configuration when
        omitted.
    """

    #: Sub-blocks reported for each decoder, in Figure 8 order.
    DECODER_BLOCKS = {
        "bcjr": (
            "soft_decision_unit",
            "initial_reversal_buffer",
            "final_reversal_buffer",
            "path_metric_unit",
            "branch_metric_unit",
        ),
        "sova": ("soft_traceback_unit", "soft_path_detect"),
        "viterbi": ("traceback_unit",),
    }

    def __init__(self, params=None):
        self.params = params if params is not None else DecoderAreaParameters()

    def estimate(self, block):
        """Area estimate for one named block or decoder total."""
        try:
            lut_coeff, reg_coeff = _COEFFICIENTS[block]
        except KeyError:
            raise KeyError(
                "unknown block %r (known: %s)"
                % (block, ", ".join(sorted(_COEFFICIENTS)))
            ) from None
        size = _structural_quantities(self.params)[block]
        return AreaEstimate(block, lut_coeff * size, reg_coeff * size)

    def decoder_total(self, decoder):
        """Total area of ``"viterbi"``, ``"sova"`` or ``"bcjr"``."""
        if decoder not in self.DECODER_BLOCKS:
            raise KeyError("unknown decoder %r" % decoder)
        return self.estimate(decoder)

    def decoder_breakdown(self, decoder):
        """List of (sub-block estimate) rows for a decoder, Figure 8 style."""
        return [self.estimate(block) for block in self.DECODER_BLOCKS[decoder]]

    def area_ratio(self, numerator, denominator, resource="luts"):
        """Ratio of two decoders' areas (e.g. BCJR / SOVA in LUTs)."""
        top = getattr(self.decoder_total(numerator), resource)
        bottom = getattr(self.decoder_total(denominator), resource)
        return top / bottom

    def transceiver_overhead(self, decoder, transceiver_luts=150000):
        """Fractional LUT increase of adding SoftPHY to a transceiver.

        The paper concludes the addition costs "around 10% increase in the
        size of a transceiver"; the default transceiver size approximates an
        802.11a/g baseband on the paper's Virtex-5 target.
        """
        extra = self.decoder_total(decoder).luts - self.decoder_total("viterbi").luts
        return max(extra, 0) / transceiver_luts

    def __repr__(self):
        return "AreaModel(%r)" % (self.params,)
