"""Analytical hardware-cost models of the decoder microarchitectures.

The paper reports two hardware costs for its SoftPHY implementations:
pipeline latency (Section 4.3: ``l + k + 12`` cycles for SOVA, ``2n + 7``
for BCJR, both comfortably inside the 25 microsecond 802.11 budget at
60 MHz) and synthesised area (Figure 8: LUT / register counts for BCJR,
SOVA and a baseline Viterbi on a Virtex-5).  A Python reproduction has no
synthesis tool, so this subpackage provides *analytical* models:

* :mod:`repro.hwmodel.latency` -- the cycle-count formulas and their
  conversion to microseconds at the paper's clock frequencies.
* :mod:`repro.hwmodel.area` -- a parametric LUT/register model calibrated so
  that the paper's configuration (64-state trellis, traceback and block
  length 64) reproduces the Figure 8 totals, while still scaling with the
  microarchitectural parameters for the ablation studies.
* :mod:`repro.hwmodel.synthesis` -- a "synthesis report" generator that
  emits the Figure 8 table from the area model.
"""

from repro.hwmodel.area import AreaEstimate, AreaModel, DecoderAreaParameters
from repro.hwmodel.latency import (
    LatencyReport,
    bcjr_latency_cycles,
    cycles_to_microseconds,
    meets_latency_bound,
    sova_latency_cycles,
    viterbi_latency_cycles,
)
from repro.hwmodel.synthesis import SynthesisReport, synthesize
from repro.hwmodel.throughput import (
    hardware_time_seconds,
    meets_line_rate,
    sustainable_rate_mbps,
    symbol_rate_hz,
)

__all__ = [
    "hardware_time_seconds",
    "meets_line_rate",
    "sustainable_rate_mbps",
    "symbol_rate_hz",
    "AreaEstimate",
    "AreaModel",
    "DecoderAreaParameters",
    "LatencyReport",
    "SynthesisReport",
    "bcjr_latency_cycles",
    "cycles_to_microseconds",
    "meets_latency_bound",
    "sova_latency_cycles",
    "synthesize",
    "viterbi_latency_cycles",
]
