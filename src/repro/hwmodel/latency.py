"""Decoder and pipeline latency models (Section 4.3 of the paper).

The paper derives closed-form cycle counts for its decoder pipelines:

* SOVA: ``l + k + 12`` cycles, where ``l`` and ``k`` are the lengths of the
  first and second traceback units, one cycle each for the BMU and PMU and
  two cycles for each of the five connecting FIFOs.  With ``l = k = 64``
  this is 140 cycles, or about 2.3 microseconds at 60 MHz.
* BCJR: ``2n + 7`` cycles for block length ``n`` (the two reversal buffers
  dominate), i.e. 135 cycles or about 2.2 microseconds at 60 MHz for
  ``n = 64``.

Both are far below the roughly 25 microsecond turnaround budget of
802.11a/g, which is the paper's headline latency claim.
"""

#: Cycles contributed by the SOVA BMU and PMU (one each).
SOVA_KERNEL_CYCLES = 2

#: Number of two-element FIFOs in the SOVA pipeline (Figure 3).
SOVA_FIFO_COUNT = 5

#: Worst-case cycles added by one two-element FIFO.
CYCLES_PER_FIFO = 2

#: Fixed pipeline overhead of the BCJR datapath beyond the reversal buffers.
BCJR_FIXED_CYCLES = 7

#: The latency budget the paper quotes for 802.11a/g, in microseconds.
IEEE80211_LATENCY_BOUND_US = 25.0

#: Clock frequency of the per-bit units in the paper's configuration (MHz).
DECODER_CLOCK_MHZ = 60.0


def sova_latency_cycles(first_traceback_length=64, second_traceback_length=64):
    """SOVA pipeline latency in cycles: ``l + k + 12``."""
    if first_traceback_length < 1 or second_traceback_length < 1:
        raise ValueError("traceback lengths must be positive")
    return (
        first_traceback_length
        + second_traceback_length
        + SOVA_KERNEL_CYCLES
        + SOVA_FIFO_COUNT * CYCLES_PER_FIFO
    )


def bcjr_latency_cycles(block_length=64):
    """SW-BCJR pipeline latency in cycles: ``2n + 7``."""
    if block_length < 1:
        raise ValueError("block length must be positive")
    return 2 * block_length + BCJR_FIXED_CYCLES


def viterbi_latency_cycles(traceback_length=64):
    """Hard Viterbi latency: one traceback window plus the kernel/FIFO overhead.

    The paper does not quote this number (Viterbi is only its area
    baseline); the model uses the same accounting as SOVA minus the second
    traceback unit.
    """
    if traceback_length < 1:
        raise ValueError("traceback length must be positive")
    return traceback_length + SOVA_KERNEL_CYCLES + 3 * CYCLES_PER_FIFO


def cycles_to_microseconds(cycles, clock_mhz=DECODER_CLOCK_MHZ):
    """Convert a cycle count to microseconds at ``clock_mhz``."""
    if clock_mhz <= 0:
        raise ValueError("clock frequency must be positive")
    return cycles / clock_mhz


def meets_latency_bound(latency_us, bound_us=IEEE80211_LATENCY_BOUND_US):
    """Whether a latency fits the 802.11a/g turnaround budget."""
    return latency_us <= bound_us


class LatencyReport:
    """Latency of one decoder configuration, in cycles and microseconds."""

    def __init__(self, name, cycles, clock_mhz=DECODER_CLOCK_MHZ):
        self.name = name
        self.cycles = int(cycles)
        self.clock_mhz = float(clock_mhz)

    @property
    def microseconds(self):
        return cycles_to_microseconds(self.cycles, self.clock_mhz)

    @property
    def meets_80211_bound(self):
        return meets_latency_bound(self.microseconds)

    def __repr__(self):
        return "LatencyReport(%s: %d cycles, %.2f us @ %.0f MHz)" % (
            self.name,
            self.cycles,
            self.microseconds,
            self.clock_mhz,
        )


def decoder_latency_report(decoder_name, clock_mhz=DECODER_CLOCK_MHZ, **kwargs):
    """Build a :class:`LatencyReport` for ``"viterbi"``, ``"sova"`` or ``"bcjr"``."""
    if decoder_name == "sova":
        cycles = sova_latency_cycles(
            kwargs.get("first_traceback_length", 64),
            kwargs.get("second_traceback_length", 64),
        )
    elif decoder_name == "bcjr":
        cycles = bcjr_latency_cycles(kwargs.get("block_length", 64))
    elif decoder_name == "viterbi":
        cycles = viterbi_latency_cycles(kwargs.get("traceback_length", 64))
    else:
        raise ValueError("unknown decoder %r" % decoder_name)
    return LatencyReport(decoder_name, cycles, clock_mhz)
