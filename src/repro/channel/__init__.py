"""Software channel models.

In the paper the channel lives in the software partition of the
co-simulation: a multi-threaded AWGN generator on the host CPU, plus the
pseudo-random fading model used for the SoftRate study.  This subpackage
provides the same models:

* :class:`~repro.channel.awgn.AwgnChannel` -- additive white Gaussian noise
  at a configurable SNR.
* :class:`~repro.channel.fading.RayleighFadingChannel` -- flat Rayleigh
  fading with a Jakes Doppler spectrum (the 20 Hz channel of Figure 7)
  combined with AWGN.
* :class:`~repro.channel.reproducible.ReproducibleNoise` -- a seeded noise
  source that can replay exactly the same noise for a packet sent at
  different rates, which is how the SoftRate experiment determines the
  *optimal* rate for every packet.
"""

from repro.channel.awgn import AwgnChannel, awgn, noise_variance_for_snr, snr_db_to_linear
from repro.channel.fading import JakesFadingProcess, RayleighFadingChannel
from repro.channel.reproducible import ReproducibleNoise

__all__ = [
    "AwgnChannel",
    "JakesFadingProcess",
    "RayleighFadingChannel",
    "ReproducibleNoise",
    "awgn",
    "noise_variance_for_snr",
    "snr_db_to_linear",
]
