"""Additive white Gaussian noise channel.

The SNR convention matches the paper's (and the demapper's): ``Es/N0`` per
data subcarrier, with the constellations normalised to unit average energy.
Because the OFDM modulator and demodulator use the orthonormal FFT, noise of
variance ``N0`` added to the time-domain samples appears with the same
variance on every subcarrier, so the channel can simply add complex Gaussian
noise of total variance ``N0 = 10**(-snr_db / 10)`` to the time samples.
"""

import numpy as np


def snr_db_to_linear(snr_db):
    """Convert an SNR in dB to a linear power ratio."""
    return 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)


def noise_variance_for_snr(snr_db, signal_power=1.0):
    """Total complex-noise variance ``N0`` for the given SNR and signal power."""
    return signal_power / snr_db_to_linear(snr_db)


def awgn(samples, snr_db, rng=None, signal_power=1.0):
    """Return ``samples`` plus complex white Gaussian noise at ``snr_db``.

    Parameters
    ----------
    samples:
        Complex baseband samples.
    snr_db:
        Es/N0 in decibels.
    rng:
        Optional :class:`numpy.random.Generator` for reproducibility.
    signal_power:
        Average signal power per constellation symbol (1.0 for the
        normalised 802.11 constellations).
    """
    rng = np.random.default_rng() if rng is None else rng
    samples = np.asarray(samples, dtype=np.complex128)
    variance = noise_variance_for_snr(snr_db, signal_power)
    scale = np.sqrt(variance / 2.0)
    noise = rng.normal(scale=scale, size=samples.shape) + 1j * rng.normal(
        scale=scale, size=samples.shape
    )
    return samples + noise


def awgn_batch(samples, snr_db, rng=None, signal_power=1.0, dtype=None):
    """Batched AWGN: noise a ``(packets, samples)`` array in one draw.

    Parameters
    ----------
    samples:
        ``(packets, num_samples)`` complex baseband samples, or a 3-D
        ``(points, packets, num_samples)`` stack of operating points; a
        stack is noised as one fused ``(points * packets)`` batch drawn
        from the single ``rng`` (fusing *per-point* noise streams instead
        requires one call per point, each with its own generator).
    snr_db:
        Es/N0 in decibels -- a scalar shared by every packet, a
        ``(packets,)`` array applying a different SNR per packet, or for a
        stack a ``(points,)`` / ``(points, packets)`` array.
    rng:
        Optional :class:`numpy.random.Generator` for reproducibility.
    signal_power:
        Average signal power per constellation symbol.
    dtype:
        Optional :mod:`repro.phy.dtype` policy (or name).  The default is
        the exact float64 path; under float32 the result is cast to
        complex64 *after* the float64 noise draw and add, so the random
        stream — and therefore the store's seed-derivation contract — is
        invariant to the precision choice.

    Notes
    -----
    The noise is drawn as one ``(packets, num_samples, 2)`` standard-normal
    tensor (real/imaginary interleaved per packet) and scaled by each
    packet's noise amplitude afterwards.  Because numpy's Generator fills
    C-order and draws chunk-invariantly along the leading axis, splitting a
    run into smaller batches consumes an identical random stream -- results
    do not depend on the batch size.
    """
    from repro.phy.dtype import dtype_policy

    policy = dtype_policy(dtype)
    rng = np.random.default_rng() if rng is None else rng
    samples = np.asarray(samples, dtype=policy.complex_dtype)
    stack_shape = None
    if samples.ndim == 3:
        stack_shape = samples.shape[:2]
        samples = samples.reshape(-1, samples.shape[-1])
        snr_db = np.broadcast_to(np.asarray(snr_db, dtype=float),
                                 stack_shape).reshape(-1)
    if samples.ndim != 2:
        raise ValueError("awgn_batch expects a (packets, samples) array")
    variance = noise_variance_for_snr(np.asarray(snr_db, dtype=float), signal_power)
    scale = np.broadcast_to(
        np.atleast_1d(np.sqrt(variance / 2.0)), (samples.shape[0],)
    )
    noise = rng.standard_normal(samples.shape + (2,))
    out = samples + scale[:, np.newaxis] * (noise[..., 0] + 1j * noise[..., 1])
    if not policy.exact:
        out = out.astype(policy.complex_dtype)
    if stack_shape is not None:
        out = out.reshape(stack_shape + (-1,))
    return out


class AwgnChannel:
    """Object form of the AWGN channel, with a persistent random stream.

    Parameters
    ----------
    snr_db:
        Es/N0 in decibels.
    seed:
        Seed for the channel's random generator; passing the same seed (and
        sending the same number of samples) reproduces the same noise.
    """

    def __init__(self, snr_db, seed=None):
        self.snr_db = float(snr_db)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.samples_processed = 0

    @property
    def noise_variance(self):
        """Total complex noise variance ``N0``."""
        return noise_variance_for_snr(self.snr_db)

    def reset(self):
        """Restart the noise stream from the original seed."""
        self._rng = np.random.default_rng(self.seed)
        self.samples_processed = 0

    def __call__(self, samples):
        """Apply the channel to a block of samples."""
        samples = np.asarray(samples, dtype=np.complex128)
        self.samples_processed += samples.size
        return awgn(samples, self.snr_db, rng=self._rng)

    def __repr__(self):
        return "AwgnChannel(snr_db=%.1f)" % self.snr_db
