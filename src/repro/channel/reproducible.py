"""Reproducible pseudo-random noise for rate-comparison experiments.

The SoftRate evaluation needs to know, for every packet, what the *optimal*
rate would have been -- the highest rate at which that packet would have
been received without error.  The paper does this with a pseudo-random noise
model that replays the same noise and fading across rates.  The catch is
that different rates produce frames of different lengths, so "the same
noise" has to mean "the same underlying random stream", not "the same
array": :class:`ReproducibleNoise` hands out a freshly seeded generator for
every (packet index, purpose) pair, so evaluating packet ``i`` at 6 Mb/s and
at 54 Mb/s draws noise from an identically seeded stream while different
packets remain independent.
"""

import zlib

import numpy as np


class ReproducibleNoise:
    """Deterministic per-packet random streams.

    Parameters
    ----------
    seed:
        Master seed.  Two instances with the same seed produce identical
        streams for every (packet, purpose) pair.
    """

    def __init__(self, seed=0):
        self.seed = int(seed)

    def rng_for(self, packet_index, purpose=""):
        """Return a generator seeded deterministically for one packet.

        Parameters
        ----------
        packet_index:
            Index of the packet in the experiment.
        purpose:
            Optional label ("noise", "payload", ...) so that independent
            random quantities for the same packet do not share a stream.
        """
        # zlib.crc32 is stable across processes (unlike the built-in ``hash``,
        # which is randomised per interpreter run).
        purpose_tag = zlib.crc32(purpose.encode("utf-8")) & 0x7FFFFFFF
        seed_seq = np.random.SeedSequence([self.seed, int(packet_index), purpose_tag])
        return np.random.default_rng(seed_seq)

    def payload(self, packet_index, num_bits):
        """Deterministic pseudo-random payload bits for one packet."""
        rng = self.rng_for(packet_index, purpose="payload")
        return rng.integers(0, 2, size=int(num_bits), dtype=np.uint8)

    def __repr__(self):
        return "ReproducibleNoise(seed=%d)" % self.seed
