"""Flat Rayleigh fading with a Jakes Doppler spectrum, plus AWGN.

The SoftRate study in the paper (Figure 7) uses a 20 Hz fading channel with
10 dB AWGN and a pseudo-random noise model so that the same packet can be
replayed at every rate.  :class:`JakesFadingProcess` generates a complex
fading gain as a sum of sinusoids (the classic Jakes/Clarke model); the
:class:`RayleighFadingChannel` samples that process once per packet (flat
fading across the packet, which is a good approximation for 802.11 frame
durations versus a 20 Hz Doppler) and adds AWGN on top.
"""

import numpy as np

from repro.channel.awgn import awgn, noise_variance_for_snr


class JakesFadingProcess:
    """Complex Rayleigh fading gain as a function of time.

    Parameters
    ----------
    doppler_hz:
        Maximum Doppler frequency (20 Hz in the paper's experiment).
    num_oscillators:
        Number of sinusoids summed; more oscillators give a smoother
        Rayleigh envelope.
    seed:
        Seed for the random phases, making the fading trace reproducible.
    mean_power:
        Average power of the fading gain (1.0 keeps the mean SNR equal to
        the AWGN SNR).
    """

    def __init__(self, doppler_hz=20.0, num_oscillators=32, seed=None, mean_power=1.0):
        if doppler_hz <= 0:
            raise ValueError("Doppler frequency must be positive")
        if num_oscillators < 1:
            raise ValueError("at least one oscillator is required")
        self.doppler_hz = float(doppler_hz)
        self.num_oscillators = int(num_oscillators)
        self.mean_power = float(mean_power)
        rng = np.random.default_rng(seed)
        # Arrival angles spread over the circle with random offsets, one set
        # of phases for each of the I and Q rails.
        n = self.num_oscillators
        self._angles = 2.0 * np.pi * (np.arange(n) + rng.random(n)) / n
        self._phases_i = rng.uniform(0.0, 2.0 * np.pi, size=n)
        self._phases_q = rng.uniform(0.0, 2.0 * np.pi, size=n)

    def gain(self, times_s):
        """Complex fading gain at the given times (seconds)."""
        times_s = np.atleast_1d(np.asarray(times_s, dtype=np.float64))
        doppler = 2.0 * np.pi * self.doppler_hz * np.cos(self._angles)
        arguments = np.outer(times_s, doppler)
        in_phase = np.cos(arguments + self._phases_i).sum(axis=1)
        quadrature = np.cos(arguments + self._phases_q).sum(axis=1)
        scale = np.sqrt(self.mean_power / self.num_oscillators)
        gains = scale * (in_phase + 1j * quadrature)
        return gains if gains.size > 1 else gains[0]

    def envelope_db(self, times_s):
        """Instantaneous power of the fading gain, in dB."""
        gain = np.atleast_1d(self.gain(times_s))
        return 10.0 * np.log10(np.abs(gain) ** 2)

    def __repr__(self):
        return "JakesFadingProcess(doppler_hz=%.1f, oscillators=%d)" % (
            self.doppler_hz,
            self.num_oscillators,
        )


class RayleighFadingChannel:
    """Flat Rayleigh fading (constant over a packet) plus AWGN.

    Parameters
    ----------
    snr_db:
        Mean Es/N0 in decibels (the AWGN level; the instantaneous SNR is
        the mean plus the fading envelope).
    doppler_hz:
        Maximum Doppler frequency of the fading process.
    seed:
        Seed shared by the fading process and the noise stream.
    """

    def __init__(self, snr_db, doppler_hz=20.0, seed=None):
        self.snr_db = float(snr_db)
        self.doppler_hz = float(doppler_hz)
        self.seed = seed
        self.fading = JakesFadingProcess(doppler_hz=doppler_hz, seed=seed)
        self._rng = np.random.default_rng(None if seed is None else seed + 1)
        self.current_time_s = 0.0

    @property
    def noise_variance(self):
        """AWGN variance ``N0`` corresponding to the mean SNR."""
        return noise_variance_for_snr(self.snr_db)

    def advance(self, duration_s):
        """Advance the channel clock (e.g. by a packet's on-air time)."""
        if duration_s < 0:
            raise ValueError("cannot advance time backwards")
        self.current_time_s += duration_s

    def gain_now(self):
        """Complex fading gain at the current channel time."""
        return self.fading.gain(self.current_time_s)

    def apply(self, samples, rng=None):
        """Fade and add noise to one packet's samples.

        Returns ``(received_samples, complex_gain)`` so the receiver can
        perform its ideal equalisation and weight its soft values.
        """
        gain = self.gain_now()
        faded = np.asarray(samples, dtype=np.complex128) * gain
        noisy = awgn(faded, self.snr_db, rng=rng if rng is not None else self._rng)
        return noisy, gain

    def instantaneous_snr_db(self):
        """SNR seen by a packet transmitted at the current channel time."""
        gain = self.gain_now()
        return self.snr_db + 10.0 * np.log10(max(np.abs(gain) ** 2, 1e-12))

    def __repr__(self):
        return "RayleighFadingChannel(snr_db=%.1f, doppler_hz=%.1f)" % (
            self.snr_db,
            self.doppler_hz,
        )
